"""Executor selection and shard validation."""

from __future__ import annotations

import pytest

from repro.config import ExecutionConfig, small_config
from repro.engine import (
    ParallelExecutor,
    SerialExecutor,
    VantageShard,
    make_executor,
)
from repro.engine.shard import WEEKLY
from repro.errors import ConfigError, EngineError


class TestExecutionConfig:
    def test_defaults_are_serial(self):
        cfg = ExecutionConfig()
        cfg.validate()
        assert cfg.backend == "serial" and cfg.jobs == 1

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(backend="threads").validate()

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(jobs=0).validate()

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_JOBS", "3")
        cfg = ExecutionConfig.from_env()
        assert cfg.backend == "process" and cfg.jobs == 3

    def test_from_env_rejects_bad_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ConfigError):
            ExecutionConfig.from_env()


class TestMakeExecutor:
    def test_serial_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert isinstance(make_executor(), SerialExecutor)

    def test_process_backend(self):
        executor = make_executor(ExecutionConfig(backend="process", jobs=4))
        assert isinstance(executor, ParallelExecutor)
        assert executor.jobs == 4

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert isinstance(make_executor(), ParallelExecutor)


class TestVantageShard:
    def test_rejects_unknown_kind(self):
        with pytest.raises(EngineError):
            VantageShard(
                config=small_config(seed=3),
                vantage_name="Penn",
                kind="hourly",
                n_rounds=2,
                rng_stream="monitor:Penn",
            )

    def test_rejects_empty_round_count(self):
        with pytest.raises(EngineError):
            VantageShard(
                config=small_config(seed=3),
                vantage_name="Penn",
                kind=WEEKLY,
                n_rounds=0,
                rng_stream="monitor:Penn",
            )

    def test_parallel_executor_rejects_bad_jobs(self):
        with pytest.raises(EngineError):
            ParallelExecutor(jobs=0)
