"""On-disk campaign store semantics."""

from __future__ import annotations

import json

import pytest

from repro.config import small_config
from repro.engine.store import CampaignStore, config_digest
from repro.monitor.aggregate import CentralRepository
from repro.monitor.database import (
    DnsObservation,
    DownloadObservation,
    MeasurementDatabase,
    PathObservation,
)
from repro.monitor.tool import RoundReport
from repro.monitor.vantage import VantageKind, VantagePoint
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def tiny_campaign():
    db = MeasurementDatabase(vantage_name="T")
    db.add_dns(DnsObservation(1, "s1", 0, True, True))
    db.add_dns(DnsObservation(2, "s2", 0, True, False))
    for family in (V4, V6):
        for round_idx in (0, 1):
            db.add_download(
                DownloadObservation(
                    site_id=1,
                    round_idx=round_idx,
                    family=family,
                    n_samples=5,
                    mean_speed=100.0 + round_idx,
                    ci_half_width=1.5,
                    converged=True,
                    page_bytes=1000,
                    timestamp=float(round_idx),
                )
            )
    db.add_path(PathObservation(1, 0, V4, dest_asn=30, as_path=(10, 20, 30)))
    vantage = VantagePoint(
        name="T",
        location="X",
        asn=10,
        start_round=0,
        as_path_available=True,
        white_listed=False,
        kind=VantageKind.ACADEMIC,
    )
    repository = CentralRepository()
    repository.add(vantage, db)
    reports = {
        "T": [RoundReport(0, 2, 2, 1, 1, 12.5), RoundReport(1, 2, 0, 1, 1, 11.0)]
    }
    return repository, reports


class TestConfigDigest:
    def test_stable_across_calls(self):
        cfg = small_config(seed=3)
        assert config_digest(cfg) == config_digest(small_config(seed=3))

    def test_differs_by_seed_and_kind(self):
        cfg = small_config(seed=3)
        assert config_digest(cfg) != config_digest(small_config(seed=4))
        assert config_digest(cfg, kind="weekly") != config_digest(cfg, kind="w6d")


class TestCampaignStore:
    def test_miss_on_empty_store(self, tmp_path):
        store = CampaignStore(tmp_path)
        assert store.load(small_config(seed=3)) is None
        assert not store.has(small_config(seed=3))

    def test_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports)
        assert store.has(cfg)

        stored = store.load(cfg)
        assert stored is not None
        assert stored.repository.content_digest() == repository.content_digest()
        assert stored.reports == reports
        assert stored.world is None  # none was saved

    def test_world_pickle_round_trip(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports, world={"marker": 42})
        stored = store.load(cfg)
        assert stored.world == {"marker": 42}

    def test_kinds_are_separate_entries(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports, kind="weekly")
        assert store.load(cfg, kind="w6d") is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        (entry / "repository.json").write_text("{not json", encoding="utf-8")
        assert store.load(cfg) is None

    def test_meta_records_repository_digest(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        meta = json.loads((entry / "meta.json").read_text(encoding="utf-8"))
        assert meta["repository_digest"] == repository.content_digest()
        assert meta["seed"] == cfg.seed


class TestCorruptedEntryRobustness:
    """Any unreadable cache entry is a miss with a warning — never a crash."""

    @staticmethod
    def _saved_entry(tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        return store, cfg, repository, reports, entry

    def _assert_miss_then_recompute(self, store, cfg, repository, reports):
        assert store.load(cfg) is None
        # "Recompute" in the CLI means re-running and re-saving; the
        # rewritten entry must be fully usable again.
        store.save(cfg, repository, reports)
        stored = store.load(cfg)
        assert stored is not None
        assert stored.repository.content_digest() == repository.content_digest()

    def test_truncated_repository_json(self, tmp_path):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        payload = (entry / "repository.json").read_text(encoding="utf-8")
        (entry / "repository.json").write_text(
            payload[: len(payload) // 2], encoding="utf-8"
        )
        self._assert_miss_then_recompute(store, cfg, repository, reports)

    def test_missing_reports_key(self, tmp_path):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        (entry / "reports.json").write_text("{}", encoding="utf-8")
        self._assert_miss_then_recompute(store, cfg, repository, reports)

    def test_malformed_table_rows(self, tmp_path):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        data = json.loads((entry / "repository.json").read_text(encoding="utf-8"))
        vantage_name = next(iter(data["databases"]))
        data["databases"][vantage_name]["downloads"] = [17]
        (entry / "repository.json").write_text(json.dumps(data), encoding="utf-8")
        self._assert_miss_then_recompute(store, cfg, repository, reports)

    def test_unsupported_database_format(self, tmp_path):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        data = json.loads((entry / "repository.json").read_text(encoding="utf-8"))
        vantage_name = next(iter(data["databases"]))
        data["databases"][vantage_name]["format"] = 99
        (entry / "repository.json").write_text(json.dumps(data), encoding="utf-8")
        self._assert_miss_then_recompute(store, cfg, repository, reports)

    def test_out_of_order_rows_violate_invariant(self, tmp_path):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        data = json.loads((entry / "repository.json").read_text(encoding="utf-8"))
        vantage_name = next(iter(data["databases"]))
        rows = data["databases"][vantage_name]["downloads"]
        rows.reverse()
        (entry / "repository.json").write_text(json.dumps(data), encoding="utf-8")
        self._assert_miss_then_recompute(store, cfg, repository, reports)

    def test_corruption_is_logged_as_warning(self, tmp_path, caplog):
        store, cfg, repository, reports, entry = self._saved_entry(tmp_path)
        (entry / "repository.json").write_text("{not json", encoding="utf-8")
        with caplog.at_level("WARNING", logger="repro.engine.store"):
            assert store.load(cfg) is None
        assert any(
            "unreadable store entry" in record.message
            for record in caplog.records
        )


class TestColumnarArtifact:
    """columnar.json and the no-world load paths."""

    def test_save_writes_columnar_json(self, tmp_path):
        from repro.data.columnar import ColumnarRepository

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        payload = json.loads((entry / "columnar.json").read_text(encoding="utf-8"))
        rebuilt = ColumnarRepository.from_payload(payload).to_repository()
        assert rebuilt.content_digest() == repository.content_digest()

    def test_load_repository_without_world(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports, world={"marker": 42})
        loaded = store.load_repository(cfg)
        assert loaded is not None
        assert loaded.content_digest() == repository.content_digest()
        assert store.load_repository(small_config(seed=4)) is None

    def test_load_columnar_entry(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports)
        digest = config_digest(cfg)
        meta, columnar = store.load_columnar_entry(digest)
        assert meta["digest"] == digest
        assert columnar.to_repository().content_digest() == (
            repository.content_digest()
        )
        assert store.load_columnar_entry("deadbeef") is None

    def test_load_columnar_entry_derives_from_legacy_rows(self, tmp_path):
        # entries written before the columnar layer lack columnar.json
        # and columnar.bin; loading transposes repository.json on the fly
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        (entry / "columnar.json").unlink()
        (entry / "columnar.bin").unlink()
        loaded = store.load_columnar_entry(config_digest(cfg))
        assert loaded is not None
        _, columnar = loaded
        assert columnar.to_repository().content_digest() == (
            repository.content_digest()
        )

    def test_save_writes_binary_artifact(self, tmp_path):
        from repro.data.columnar import BINARY_MAGIC, load_columnar_binary

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        binary_path = entry / "columnar.bin"
        assert binary_path.read_bytes().startswith(BINARY_MAGIC)
        columnar = load_columnar_binary(binary_path)
        assert columnar.to_repository().content_digest() == (
            repository.content_digest()
        )

    def test_binary_preferred_on_load(self, tmp_path):
        from repro.obs import metrics

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        # even with a corrupt columnar.json the binary serves the load
        (entry / "columnar.json").write_text("{not json", encoding="utf-8")
        before = metrics.counter("engine.store.bin_loads").value
        loaded = store.load_columnar_entry(config_digest(cfg))
        assert loaded is not None
        assert metrics.counter("engine.store.bin_loads").value == before + 1
        _, columnar = loaded
        assert columnar.to_repository().content_digest() == (
            repository.content_digest()
        )

    def test_corrupt_binary_falls_back_to_json(self, tmp_path):
        from repro.obs import metrics

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        (entry / "columnar.bin").write_bytes(b"RPRCOL garbage")
        before = metrics.counter("engine.store.bin_fallbacks").value
        loaded = store.load_columnar_entry(config_digest(cfg))
        assert loaded is not None
        assert metrics.counter("engine.store.bin_fallbacks").value == before + 1
        _, columnar = loaded
        assert columnar.to_repository().content_digest() == (
            repository.content_digest()
        )

    def test_prefer_binary_false_forces_json_path(self, tmp_path):
        from repro.obs import metrics

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports)
        before = metrics.counter("engine.store.bin_loads").value
        loaded = store.load_columnar_entry(config_digest(cfg), prefer_binary=False)
        assert loaded is not None
        assert metrics.counter("engine.store.bin_loads").value == before

    def test_corrupt_columnar_artifacts_are_a_miss(self, tmp_path):
        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        entry = store.save(cfg, repository, reports)
        (entry / "columnar.json").write_text("{not json", encoding="utf-8")
        (entry / "columnar.bin").write_bytes(b"\x00")
        (entry / "repository.json").write_text("{not json", encoding="utf-8")
        assert store.load_columnar_entry(config_digest(cfg)) is None


class TestObserverReports:
    def test_round_trip(self, tmp_path):
        from repro.observers import ObserverReport

        store = CampaignStore(tmp_path)
        cfg = small_config(seed=3)
        repository, reports = tiny_campaign()
        store.save(cfg, repository, reports)
        digest = config_digest(cfg)
        assert store.list_observer_reports(digest) == []
        assert store.load_observer_report(digest, "speed_parity") is None
        observer_reports = {
            name: ObserverReport(
                name=name,
                version=1,
                campaign_digest=digest,
                body={"summary": {"x": 1.0}, "series": {}},
            )
            for name in ("speed_parity", "hop_inflation")
        }
        store.save_observer_reports(digest, observer_reports)
        assert store.list_observer_reports(digest) == [
            "hop_inflation", "speed_parity"
        ]
        raw = store.load_observer_report(digest, "speed_parity")
        assert raw == observer_reports["speed_parity"].canonical_bytes()
        restored = ObserverReport.from_payload(json.loads(raw))
        assert restored == observer_reports["speed_parity"]
