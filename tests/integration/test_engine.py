"""Execution-engine integration: backend equivalence and the disk cache.

The engine's hard invariant is that the serial and process backends
produce bit-identical measurement repositories for the same scenario
config; these tests pin it with
:meth:`~repro.monitor.aggregate.CentralRepository.content_digest`.
"""

from __future__ import annotations

import pytest

from repro.config import ExecutionConfig, small_config
from repro.core.campaign import run_campaign, run_world_ipv6_day
from repro.core.world import build_world
from repro.engine.store import config_digest
from repro.experiments import scenario
from repro.obs import metrics

#: tiny but non-degenerate scenario for cross-backend runs.
TINY = small_config(seed=7, scale=0.5)
TINY_ROUNDS = 4


@pytest.fixture(scope="module")
def tiny_serial():
    world = build_world(TINY)
    weekly = run_campaign(
        world, n_rounds=TINY_ROUNDS, execution=ExecutionConfig(backend="serial")
    )
    w6d = run_world_ipv6_day(
        world, n_rounds=6, execution=ExecutionConfig(backend="serial")
    )
    return weekly, w6d


@pytest.fixture(scope="module")
def tiny_process():
    world = build_world(TINY)
    weekly = run_campaign(
        world,
        n_rounds=TINY_ROUNDS,
        execution=ExecutionConfig(backend="process", jobs=2),
    )
    w6d = run_world_ipv6_day(
        world, n_rounds=6, execution=ExecutionConfig(backend="process", jobs=2)
    )
    return weekly, w6d


class TestBackendEquivalence:
    def test_weekly_repositories_bit_identical(self, tiny_serial, tiny_process):
        serial, _ = tiny_serial
        process, _ = tiny_process
        assert (
            serial.repository.content_digest()
            == process.repository.content_digest()
        )

    def test_weekly_reports_identical(self, tiny_serial, tiny_process):
        assert tiny_serial[0].reports == tiny_process[0].reports

    def test_w6d_repositories_bit_identical(self, tiny_serial, tiny_process):
        _, serial = tiny_serial
        _, process = tiny_process
        assert (
            serial.repository.content_digest()
            == process.repository.content_digest()
        )

    def test_engine_counters_recorded(self, tiny_serial):
        assert metrics.counter("engine.shards_dispatched").value > 0
        assert metrics.histogram("engine.shard_seconds").count > 0


class TestScenarioDiskCache:
    def test_second_build_hits_the_disk_tier(self, tmp_path):
        saved_store = scenario._store()
        scenario.configure_cache(tmp_path)
        try:
            scenario.clear_caches()
            misses_before = metrics.counter("scenario.cache_misses").value
            first = scenario.get_experiment_data(TINY)
            assert (
                metrics.counter("scenario.cache_misses").value
                == misses_before + 1
            )
            entry = tmp_path / "campaigns" / config_digest(TINY, "weekly")
            assert (entry / "meta.json").exists()
            assert (entry / "world.pkl").exists()  # world pickled alongside

            # drop the memory tier; the disk tier must carry the reload
            scenario.clear_caches()
            hits_before = metrics.counter("scenario.cache_hits").value
            store_hits_before = metrics.counter("engine.store.hits").value
            second = scenario.get_experiment_data(TINY)
            assert metrics.counter("scenario.cache_hits").value == hits_before + 1
            assert (
                metrics.counter("engine.store.hits").value
                == store_hits_before + 1
            )
            assert (
                second.repository.content_digest()
                == first.repository.content_digest()
            )
            assert second.world is not None
            # analysis layers rebuilt from restored data match
            assert set(second.contexts) == set(first.contexts)
        finally:
            scenario.clear_caches()
            if saved_store is not None:
                scenario.configure_cache(saved_store.root)
            else:
                scenario.configure_cache(None)

    def test_disabled_cache_writes_nothing(self, tmp_path):
        saved_store = scenario._store()
        scenario.configure_cache(None)
        try:
            scenario.clear_caches()
            scenario.get_experiment_data(TINY)
            assert not (tmp_path / "campaigns").exists()
        finally:
            scenario.clear_caches()
            if saved_store is not None:
                scenario.configure_cache(saved_store.root)
            else:
                scenario.configure_cache(None)
