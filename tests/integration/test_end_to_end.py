"""End-to-end integration: world -> campaign -> analysis -> findings.

These tests assert the paper's two headline findings hold in the small
scenario, plus consistency properties that cut across subsystems.
"""

from __future__ import annotations

import pytest

from repro.analysis.classify import SiteCategory
from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.net.addresses import AddressFamily
from repro.net.tunnels import TunnelKind

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

ANALYSIS_VANTAGES = ("Penn", "Comcast", "LU", "UPCB")


class TestHeadlineFindings:
    def test_h1_sp_ases_mostly_explained(self, small_data):
        """H1: on shared paths, v6 is comparable (or explained by servers)."""
        for name in ANALYSIS_VANTAGES:
            evaluations = small_data.context(name).sp_evaluations
            assert evaluations, f"{name} has no SP ASes"
            fractions = verdict_fractions(evaluations.values())
            explained = (
                fractions[ASVerdict.COMPARABLE]
                + fractions[ASVerdict.ZERO_MODE]
                + fractions[ASVerdict.SMALL_N]
            )
            assert explained >= 0.8, f"{name}: explained={explained:.2f}"

    def test_h2_dp_ases_mostly_worse(self, small_data):
        """H2: on differing paths, v6 is usually worse (pooled).

        Per-vantage DP populations are tiny in the miniature world, so
        the assertion pools destination ASes across vantage points; the
        per-vantage version runs at experiment scale in benchmarks/.
        """
        comparable = total = 0
        for name in ANALYSIS_VANTAGES:
            for evaluation in small_data.context(name).dp_evaluations.values():
                total += 1
                comparable += evaluation.verdict is ASVerdict.COMPARABLE
        assert total > 0
        assert comparable / total <= 0.5

    def test_h2_gap_between_sp_and_dp(self, small_data):
        sp_comparable = sp_total = dp_comparable = dp_total = 0
        for name in ANALYSIS_VANTAGES:
            for e in small_data.context(name).sp_evaluations.values():
                sp_total += 1
                sp_comparable += e.verdict is ASVerdict.COMPARABLE
            for e in small_data.context(name).dp_evaluations.values():
                dp_total += 1
                dp_comparable += e.verdict is ASVerdict.COMPARABLE
        assert sp_total > 0 and dp_total > 0
        assert sp_comparable / sp_total - dp_comparable / dp_total >= 0.25


class TestGroundTruthAgreement:
    """The analysis, which only sees measurements, recovers world truth."""

    def test_dl_classification_matches_catalog(self, small_data):
        world = small_data.world
        context = small_data.context("Penn")
        for sid in context.sites_in(SiteCategory.DL):
            site = world.catalog.site(sid)
            truth_dl = site.is_dl() or (
                world.dualstack.tunnel_of(site.v6_origin_asn) is not None
                and world.dualstack.tunnel_of(site.v6_origin_asn).kind
                is TunnelKind.SIX_TO_FOUR
            )
            assert truth_dl, f"site {sid} classified DL but is not"

    def test_sp_sites_have_equal_paths_in_db(self, small_data):
        context = small_data.context("Penn")
        for sid in context.sites_in(SiteCategory.SP)[:50]:
            c = context.classifications[sid]
            assert c.path_v4 == c.path_v6

    def test_zero_mode_sites_have_healthy_servers(self, small_data):
        world = small_data.world
        context = small_data.context("Penn")
        for evaluation in context.sp_evaluations.values():
            if evaluation.verdict is not ASVerdict.ZERO_MODE:
                continue
            for sid in evaluation.zero_mode_site_ids:
                assert not world.catalog.site(sid).server.v6_impaired

    def test_impaired_servers_measure_slower_v6(self, small_data):
        from repro.analysis.metrics import site_relative_difference

        world = small_data.world
        context = small_data.context("Penn")
        checked = 0
        for sid in context.sites_in(SiteCategory.SP):
            site = world.catalog.site(sid)
            if not site.server.v6_impaired:
                continue
            diff = site_relative_difference(context.db, sid)
            if diff is None:
                continue
            checked += 1
            assert diff < -0.05, f"impaired site {sid} measured diff {diff:.2f}"
        if checked == 0:
            pytest.skip("no impaired SP sites in this draw")

    def test_adoption_rounds_respected_by_monitor(self, small_data):
        """No v6 measurement exists before a site's adoption round."""
        world = small_data.world
        db = small_data.context("Penn").db
        for (sid, family), rows in list(db.downloads.items())[:300]:
            if family is not V6:
                continue
            site = world.catalog.site(sid)
            first_round = rows[0].round_idx
            earliest = site.adoption_round
            if earliest is None:
                earliest = site.w6d_event_round
            assert earliest is not None and first_round >= earliest


class TestCrossVantageConsistency:
    def test_xchecks_mostly_positive(self, small_data):
        from repro.analysis.crosscheck import cross_check

        result = cross_check(
            {
                name: small_data.context(name).sp_evaluations
                for name in ANALYSIS_VANTAGES
            }
        )
        if result.checkable_ases == 0:
            pytest.skip("no cross-checkable ASes in this draw")
        assert result.positive >= result.negative

    def test_reachability_similar_across_vantages(self, small_data, small_cfg):
        last = small_cfg.campaign.n_rounds - 1
        values = [
            small_data.campaign.repository.database(name).v6_reachability(last)
            for name in ANALYSIS_VANTAGES
        ]
        assert max(values) - min(values) < 0.05
