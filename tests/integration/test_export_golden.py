"""Golden-fixture test for the faults-on export format.

The exported CSV tree (including ``faults.csv`` and the manifest) is the
public face of a campaign; downstream users parse it without this
package.  This test pins the exporter's byte-level output for a small
hand-built faults-on repository against files checked in under
``tests/fixtures/golden_faults_export/`` — any format drift shows up as
a fixture diff in review, not as a silent change.

To regenerate after an *intentional* format change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_export_golden.py
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.monitor.aggregate import CentralRepository
from repro.monitor.database import (
    DnsObservation,
    DownloadObservation,
    FaultObservation,
    MeasurementDatabase,
    PageCheck,
    PathObservation,
)
from repro.monitor.export import export_repository
from repro.monitor.vantage import VantageKind, VantagePoint
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

FIXTURE_DIR = pathlib.Path(__file__).parent.parent / "fixtures" / "golden_faults_export"


def _golden_repository() -> CentralRepository:
    """A small, fully deterministic faults-on repository.

    Hand-built rather than campaign-derived so the fixture only changes
    when the *export format* changes, never when simulation behaviour
    does.  Every table is populated and every fault kind appears.
    """
    db = MeasurementDatabase(vantage_name="G1")
    db.add_dns(DnsObservation(1, "site-1", 0, True, True))
    db.add_dns(DnsObservation(2, "site-2", 0, True, False))
    db.add_dns(DnsObservation(1, "site-1", 1, True, True))
    db.add_page_check(PageCheck(1, 0, 2048, 2048, True))
    db.add_page_check(PageCheck(1, 1, 2048, 1024, False))
    for round_idx in (0, 1):
        for family, speed in ((V4, 220.5), (V6, 180.25)):
            db.add_download(
                DownloadObservation(
                    site_id=1,
                    round_idx=round_idx,
                    family=family,
                    n_samples=10 + round_idx,
                    mean_speed=speed + round_idx,
                    ci_half_width=4.125,
                    converged=True,
                    page_bytes=2048,
                    timestamp=3600.0 * round_idx,
                )
            )
        db.add_path(
            PathObservation(1, round_idx, V4, dest_asn=30, as_path=(10, 20, 30))
        )
        db.add_path(
            PathObservation(1, round_idx, V6, dest_asn=30, as_path=(10, 40, 30))
        )
    db.add_fault(FaultObservation(1, 0, V6, "timeout"))
    db.add_fault(FaultObservation(1, 0, V6, "timeout"))
    db.add_fault(FaultObservation(2, 0, V4, "reset"))
    db.add_fault(FaultObservation(1, 1, V6, "dns_timeout"))
    db.add_fault(FaultObservation(2, 1, V4, "dns_exhausted"))
    db.add_fault(FaultObservation(2, 1, V6, "exhausted"))

    vantage = VantagePoint(
        name="G1",
        location="Testland",
        asn=10,
        start_round=0,
        as_path_available=True,
        white_listed=False,
        kind=VantageKind.ACADEMIC,
    )
    repository = CentralRepository()
    repository.add(vantage, db)
    return repository


def _tree_files(root: pathlib.Path) -> dict[str, bytes]:
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*"))
        if path.is_file()
    }


def test_faults_on_export_matches_golden_fixture(tmp_path):
    export_repository(_golden_repository(), tmp_path)
    exported = _tree_files(tmp_path)

    if os.environ.get("REPRO_REGEN_GOLDEN"):
        for rel, payload in exported.items():
            target = FIXTURE_DIR / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_bytes(payload)
        pytest.skip("golden fixture regenerated")

    assert FIXTURE_DIR.is_dir(), (
        "missing golden fixture; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    golden = _tree_files(FIXTURE_DIR)
    assert sorted(exported) == sorted(golden)
    for rel in sorted(golden):
        assert exported[rel] == golden[rel], f"export drift in {rel}"


def test_golden_fixture_includes_fault_table():
    # Guards against the fixture being regenerated from a faults-off
    # repository by mistake.
    faults_csv = FIXTURE_DIR / "G1" / "faults.csv"
    if not faults_csv.exists():
        pytest.skip("fixture not generated yet")
    lines = faults_csv.read_text(encoding="utf-8").strip().splitlines()
    assert lines[0] == "round,family,kind,count"
    assert len(lines) > 1
