"""Fault injection end to end: determinism, digests, graceful degradation.

Three invariants pinned here:

* faults **off** leaves the repository digest bit-identical to the
  pre-fault-injection baseline (hard acceptance criterion);
* faults **on** is exactly as reproducible as faults off — a seed sweep
  shows serial and process backends agreeing on digests *and* failure
  counters;
* a worker that dies mid-campaign degrades gracefully: the campaign
  completes, the affected vantage matches the serial run, and the
  degradation counter records the event.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import ExecutionConfig, small_config
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.faults import FaultPlan, fault_preset
from repro.net.addresses import AddressFamily
from repro.obs import metrics

#: digest of the seed-7 scale-0.5 4-round campaign BEFORE repro.faults
#: existed; fault injection disabled must never change it.
TINY4_BASELINE_DIGEST = (
    "0b8ff155b4e3529f28129df4cd4190967f5c33168905152b1f09f648550bb4d9"
)
#: same pin for the session-scoped seed-11 full campaign fixture.
SMALL11_BASELINE_DIGEST = (
    "6507ce08857e6e2107fcaf945d19a74925df278e46d16966ab7d619037e8e5d5"
)

TINY = small_config(seed=7, scale=0.5)
TINY_FAULTY = dataclasses.replace(TINY, faults=fault_preset("mild"))
TINY_ROUNDS = 4

SWEEP_SEEDS = range(100, 110)
SWEEP_ROUNDS = 3


def _faulty_config(seed: int):
    return dataclasses.replace(
        small_config(seed=seed, scale=0.4), faults=fault_preset("mild")
    )


def _fault_counters(repository):
    return {
        name: repository.database(name).fault_counts()
        for name in repository.vantage_names
    }


class TestFaultsOffDigestUnchanged:
    def test_tiny_campaign_matches_pre_faults_baseline(self):
        result = run_campaign(build_world(TINY), n_rounds=TINY_ROUNDS)
        assert result.repository.content_digest() == TINY4_BASELINE_DIGEST

    def test_small_campaign_matches_pre_faults_baseline(self, small_campaign):
        assert (
            small_campaign.repository.content_digest()
            == SMALL11_BASELINE_DIGEST
        )

    def test_no_faults_recorded_without_a_plan(self, small_campaign):
        repo = small_campaign.repository
        for name in repo.vantage_names:
            assert repo.database(name).faults == []


class TestSeedSweepDeterminism:
    """Serial and process backends agree for every seed, faults enabled."""

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_backends_identical_under_faults(self, seed):
        cfg = _faulty_config(seed)
        serial = run_campaign(
            build_world(cfg),
            n_rounds=SWEEP_ROUNDS,
            execution=ExecutionConfig(backend="serial"),
        )
        process = run_campaign(
            build_world(cfg),
            n_rounds=SWEEP_ROUNDS,
            execution=ExecutionConfig(backend="process", jobs=2),
        )
        assert (
            serial.repository.content_digest()
            == process.repository.content_digest()
        )
        serial_counters = _fault_counters(serial.repository)
        assert serial_counters == _fault_counters(process.repository)
        # The sweep is pointless if faults never fire.
        assert any(counts for counts in serial_counters.values())
        assert serial.reports == process.reports

    def test_failure_counters_surface_in_reports(self):
        result = run_campaign(build_world(TINY_FAULTY), n_rounds=TINY_ROUNDS)
        total_report_failures = sum(
            report.n_failures
            for reports in result.reports.values()
            for report in reports
        )
        total_db_faults = sum(
            len(result.repository.database(name).faults)
            for name in result.repository.vantage_names
        )
        assert total_report_failures == total_db_faults > 0


class TestFaultPlanIsVantageIndependent:
    def test_same_question_same_answer_across_plans(self):
        config = fault_preset("heavy")
        a = FaultPlan(config, master_seed=99)
        b = FaultPlan(config, master_seed=99)
        for site in (1, 7, 42):
            for rnd in (0, 3):
                for fam in (AddressFamily.IPV4, AddressFamily.IPV6):
                    assert a.dns_failure("x", fam, rnd, 0) == b.dns_failure(
                        "x", fam, rnd, 0
                    )
                    assert a.server_fault(
                        site, fam, rnd, "probe:0"
                    ) == b.server_fault(site, fam, rnd, "probe:0")
        assert a.tunnel_broken(64496, 2) == b.tunnel_broken(64496, 2)
        assert a.link_degradation(64496, 2) == b.link_degradation(64496, 2)


class TestGracefulDegradation:
    """A worker crash never aborts the campaign (acceptance criterion)."""

    def test_killed_worker_degrades_and_matches_serial(self, monkeypatch):
        serial = run_campaign(build_world(TINY_FAULTY), n_rounds=TINY_ROUNDS)
        victim = serial.repository.vantage_names[0]

        monkeypatch.setenv("REPRO_TEST_KILL_SHARD", victim)
        degraded_before = metrics.counter("engine.shards_degraded").value
        process = run_campaign(
            build_world(TINY_FAULTY),
            n_rounds=TINY_ROUNDS,
            execution=ExecutionConfig(backend="process", jobs=2),
        )
        assert (
            metrics.counter("engine.shards_degraded").value
            == degraded_before + 1
        )
        # The campaign finished and the affected vantage matches serial.
        assert victim in process.repository.vantage_names
        assert (
            process.repository.database(victim).to_dict()
            == serial.repository.database(victim).to_dict()
        )
        assert (
            process.repository.content_digest()
            == serial.repository.content_digest()
        )

    def test_hard_worker_exit_breaks_pool_but_campaign_completes(
        self, monkeypatch
    ):
        serial = run_campaign(build_world(TINY_FAULTY), n_rounds=TINY_ROUNDS)
        victim = serial.repository.vantage_names[0]

        # ":exit" hard-kills the worker process (os._exit), exercising the
        # BrokenProcessPool recovery path; the break can take innocent
        # in-flight shards down with it, so the degradation counter is
        # >= 1 rather than exactly 1 here.
        monkeypatch.setenv("REPRO_TEST_KILL_SHARD", f"{victim}:exit")
        degraded_before = metrics.counter("engine.shards_degraded").value
        process = run_campaign(
            build_world(TINY_FAULTY),
            n_rounds=TINY_ROUNDS,
            execution=ExecutionConfig(backend="process", jobs=2),
        )
        assert metrics.counter("engine.shards_degraded").value > degraded_before
        assert (
            process.repository.content_digest()
            == serial.repository.content_digest()
        )
