"""Observability must not perturb seeded results.

The whole instrumentation layer (spans, metrics, logging) reads wall
clocks and bumps counters but never touches a seeded RNG stream, so a
campaign's measured values are bit-identical with tracing enabled or
disabled.  This test runs the session fixture's exact scenario a second
time with full observability on and compares the H1/H2 verdicts.
"""

from __future__ import annotations

import logging

import pytest

from repro import obs
from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.experiments.scenario import build_contexts


@pytest.fixture()
def obs_enabled():
    """Enable tracing + verbose logging for one test, then restore."""
    obs.enable()
    root = logging.getLogger("repro")
    saved_level = root.level
    root.setLevel(logging.DEBUG)
    yield
    obs.disable()
    obs.get_tracer().reset()
    root.setLevel(saved_level)


def _verdicts(contexts) -> dict:
    out = {}
    for name, context in contexts.items():
        out[name] = (
            verdict_fractions(context.sp_evaluations.values()),
            verdict_fractions(context.dp_evaluations.values()),
        )
    return out


class TestObservabilityDeterminism:
    def test_traced_campaign_matches_untraced_fixture(
        self, small_cfg, small_campaign, small_data, obs_enabled
    ):
        # The session fixtures ran with tracing disabled; rebuild the same
        # seeded scenario with tracing + debug logging enabled.
        world = build_world(small_cfg)
        traced = run_campaign(world)
        contexts = build_contexts(small_cfg, traced)

        assert traced.total_measurements() == small_campaign.total_measurements()
        for name in small_campaign.repository.vantage_names:
            untraced_db = small_campaign.repository.database(name)
            traced_db = traced.repository.database(name)
            assert len(traced_db) == len(untraced_db)

        baseline = _verdicts(small_data.contexts)
        assert _verdicts(contexts) == baseline
        assert any(
            fractions[0].get(ASVerdict.COMPARABLE, 0) > 0
            for fractions in baseline.values()
        ), "fixture produced no comparable SP verdicts; test is vacuous"

    def test_tracer_saw_the_pipeline(
        self, small_cfg, obs_enabled
    ):
        tracer = obs.get_tracer()
        tracer.reset()
        world = build_world(small_cfg)
        run_campaign(world)
        names = {span.name for span in tracer.spans}
        assert "world.build" in names
        assert "campaign.round" in names
        assert "bgp.compute" in names
        registry = obs.get_registry()
        assert registry.counter("monitor.sites_monitored").value > 0
        assert registry.counter("dns.cache_misses").value > 0
        assert registry.gauge("monitor.slot_occupancy").max_value >= 1
