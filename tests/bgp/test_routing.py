"""Valley-free routing: hand-built scenarios plus whole-graph invariants."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DualStackConfig, TopologyConfig
from repro.bgp.routing import PathOracle, Route, RouteClass, compute_routes_to
from repro.errors import RoutingError
from repro.net.addresses import AddressFamily
from repro.topology.asys import ASType, AutonomousSystem
from repro.topology.dualstack import DualStackTopology, deploy_ipv6
from repro.topology.generator import Topology, generate_topology
from repro.topology.relationships import Link

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def make_dualstack(topo: Topology) -> DualStackTopology:
    """Wrap a hand-built topology with a fully mirrored v6 overlay."""
    return deploy_ipv6(
        topo,
        DualStackConfig(
            v6_enable_prob_tier1=1.0,
            v6_enable_prob_transit=1.0,
            v6_enable_prob_stub=1.0,
            v6_enable_prob_content=1.0,
            v6_enable_prob_cdn=1.0,
            c2p_parity=1.0,
            peering_parity=1.0,
        ),
        random.Random(0),
    )


def diamond() -> Topology:
    """Two tier-1s (1, 2), two transits (3, 4), two stubs (5, 6).

    5 -> 3 -> 1 -- 2 <- 4 <- 6, plus 3--4 peering.
    """
    topo = Topology()
    for asn, typ in [
        (1, ASType.TIER1),
        (2, ASType.TIER1),
        (3, ASType.TRANSIT),
        (4, ASType.TRANSIT),
        (5, ASType.STUB),
        (6, ASType.STUB),
    ]:
        topo.add_as(AutonomousSystem(asn=asn, type=typ, region=0))
    topo.add_link(Link.peering(1, 2))
    topo.add_link(Link.customer_provider(3, 1))
    topo.add_link(Link.customer_provider(4, 2))
    topo.add_link(Link.peering(3, 4))
    topo.add_link(Link.customer_provider(5, 3))
    topo.add_link(Link.customer_provider(6, 4))
    return topo


class TestRoute:
    def test_hop_count(self):
        r = Route(path=(1, 2, 3), route_class=RouteClass.CUSTOMER)
        assert r.hop_count == 2
        assert r.source == 1 and r.destination == 3

    def test_loop_rejected(self):
        with pytest.raises(RoutingError):
            Route(path=(1, 2, 1), route_class=RouteClass.CUSTOMER)


class TestDiamondRouting:
    @pytest.fixture(scope="class")
    def oracle(self):
        return PathOracle(make_dualstack(diamond()), sources=[5, 6, 3])

    def test_prefers_peering_shortcut(self, oracle):
        # 5 -> 3 -(peer)- 4 -> 6 beats 5 -> 3 -> 1 -> 2 -> 4 -> 6.
        assert oracle.as_path(5, 6, V4) == (5, 3, 4, 6)

    def test_direct_provider_route(self, oracle):
        assert oracle.as_path(5, 3, V4) == (5, 3)

    def test_customer_route_preferred_over_peer(self, oracle):
        # From 3 to 5: 5 is 3's customer.
        route = oracle.route(3, 5, V4)
        assert route.path == (3, 5)
        assert route.route_class is RouteClass.CUSTOMER

    def test_route_to_self(self, oracle):
        assert oracle.as_path(5, 5, V4) == (5,)

    def test_unknown_source_rejected(self, oracle):
        with pytest.raises(RoutingError):
            oracle.route(99, 5, V4)

    def test_v6_mirrors_v4_under_full_parity(self, oracle):
        assert oracle.as_path(5, 6, V6) == oracle.as_path(5, 6, V4)


class TestMissingPeeringDetour:
    def test_dropped_peering_forces_transit_detour(self):
        topo = diamond()
        ds = deploy_ipv6(
            topo,
            DualStackConfig(
                v6_enable_prob_tier1=1.0,
                v6_enable_prob_transit=1.0,
                v6_enable_prob_stub=1.0,
                v6_enable_prob_content=1.0,
                c2p_parity=1.0,
                peering_parity=0.0,  # the 3--4 shortcut disappears in v6
                tunnel_prob=0.0,
            ),
            random.Random(0),
        )
        oracle = PathOracle(ds, sources=[5])
        assert oracle.as_path(5, 6, V4) == (5, 3, 4, 6)
        assert oracle.as_path(5, 6, V6) == (5, 3, 1, 2, 4, 6)


class TestAlternateAndDetourRoutes:
    @pytest.fixture(scope="class")
    def multihomed(self):
        topo = diamond()
        # Multihome stub 5 to transit 4 as well.
        topo.add_link(Link.customer_provider(5, 4))
        return PathOracle(make_dualstack(topo), sources=[5])

    def test_alternate_uses_other_first_hop(self, multihomed):
        primary = multihomed.route(5, 6, V4)
        alternate = multihomed.alternate_route(5, 6, V4)
        assert primary.path == (5, 4, 6)
        assert alternate is not None
        assert alternate.path[1] != primary.path[1]
        assert alternate.path[-1] == 6

    def test_single_homed_source_has_no_alternate(self):
        oracle = PathOracle(make_dualstack(diamond()), sources=[6])
        assert oracle.alternate_route(6, 5, V4) is None

    def test_detour_route_enters_via_other_provider(self):
        topo = diamond()
        topo.add_link(Link.customer_provider(6, 3))  # 6 multihomes to 3
        oracle = PathOracle(make_dualstack(topo), sources=[5])
        primary = oracle.route(5, 6, V4)
        detour = oracle.detour_route(5, 6, V4)
        assert detour is not None
        assert detour.path[-1] == 6
        assert detour.path[-2] != primary.path[-2]

    def test_detour_none_for_single_homed_destination(self):
        oracle = PathOracle(make_dualstack(diamond()), sources=[5])
        assert oracle.detour_route(5, 6, V4) is None


def _is_valley_free(ds: DualStackTopology, path: tuple[int, ...], family) -> bool:
    """Check the up* peer? down* shape of an AS path."""
    # Phases: 0 = climbing, 1 = after peer/plateau, 2 = descending.
    phase = 0
    for a, b in zip(path, path[1:]):
        if b in ds.providers_of(a, family):
            if phase != 0:
                return False
        elif b in ds.peers_of(a, family):
            if phase == 2:
                return False
            phase = max(phase, 1)
            if phase == 1:
                phase = 2  # at most one peering edge
        elif b in ds.customers_of(a, family):
            phase = 2
        else:
            return False  # not even an adjacency
    return True


class TestWholeGraphInvariants:
    @pytest.fixture(scope="class")
    def generated(self):
        config = TopologyConfig(
            n_tier1=3, n_transit=15, n_stub=40, n_content=20, n_cdn=2
        )
        topo = generate_topology(config, random.Random(21))
        ds = deploy_ipv6(topo, DualStackConfig(), random.Random(22))
        sources = sorted(ds.v6_enabled)[:3]
        return ds, PathOracle(ds, sources=sources)

    def test_all_v4_paths_exist_and_are_valley_free(self, generated):
        ds, oracle = generated
        for src in oracle.sources:
            for dest in ds.asn_list:
                path = oracle.as_path(src, dest, V4)
                assert path is not None, f"no v4 path {src}->{dest}"
                assert path[0] == src and path[-1] == dest
                assert len(set(path)) == len(path)
                assert _is_valley_free(ds, path, V4)

    def test_v6_paths_valley_free_where_present(self, generated):
        ds, oracle = generated
        src = oracle.sources[0]
        reached = 0
        for dest in sorted(ds.v6_enabled):
            path = oracle.as_path(src, dest, V6)
            if path is None:
                continue
            reached += 1
            assert _is_valley_free(ds, path, V6)
        assert reached > 0

    def test_unreachable_family_returns_none(self, generated):
        ds, oracle = generated
        v4_only = [a for a in ds.asn_list if a not in ds.v6_enabled]
        if not v4_only:
            pytest.skip("every AS enabled v6 in this draw")
        assert oracle.route(oracle.sources[0], v4_only[0], V6) is None

    def test_compute_routes_to_rejects_unreachable_dest(self, generated):
        ds, _ = generated
        v4_only = [a for a in ds.asn_list if a not in ds.v6_enabled]
        if not v4_only:
            pytest.skip("every AS enabled v6 in this draw")
        with pytest.raises(RoutingError):
            compute_routes_to(ds, v4_only[0], V6)


@st.composite
def random_hierarchy(draw):
    """A small random Gao-Rexford-consistent topology."""
    n_transit = draw(st.integers(min_value=1, max_value=5))
    n_stub = draw(st.integers(min_value=1, max_value=8))
    topo = Topology()
    topo.add_as(AutonomousSystem(asn=1, type=ASType.TIER1, region=0))
    topo.add_as(AutonomousSystem(asn=2, type=ASType.TIER1, region=0))
    topo.add_link(Link.peering(1, 2))
    transits = []
    for i in range(n_transit):
        asn = 10 + i
        topo.add_as(AutonomousSystem(asn=asn, type=ASType.TRANSIT, region=0))
        provider = draw(st.sampled_from([1, 2] + transits))
        topo.add_link(Link.customer_provider(asn, provider))
        transits.append(asn)
    for i in range(n_stub):
        asn = 100 + i
        topo.add_as(AutonomousSystem(asn=asn, type=ASType.STUB, region=0))
        provider = draw(st.sampled_from([1, 2] + transits))
        topo.add_link(Link.customer_provider(asn, provider))
    return topo


class TestPropertyBased:
    @given(random_hierarchy())
    @settings(max_examples=40, deadline=None)
    def test_every_pair_routes_valley_free(self, topo):
        ds = make_dualstack(topo)
        sources = sorted(topo.ases)[:4]
        oracle = PathOracle(ds, sources=sources)
        for src in sources:
            for dest in sorted(topo.ases):
                path = oracle.as_path(src, dest, V4)
                assert path is not None
                assert path[0] == src and path[-1] == dest
                assert len(set(path)) == len(path)
                assert _is_valley_free(ds, path, V4)
