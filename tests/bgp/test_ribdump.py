"""RIB dump serialisation, parsing, and diffing."""

from __future__ import annotations

import pytest

from repro.bgp.ribdump import (
    RouteChangeKind,
    changed_origins,
    diff_tables,
    dump_table,
    parse_dump,
)
from repro.bgp.table import RouteEntry, RoutingTable
from repro.errors import RoutingError
from repro.net.addresses import AddressFamily, Prefix

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def table_with(entries, vantage=1, family=V4) -> RoutingTable:
    table = RoutingTable(vantage_asn=vantage, family=family)
    for prefix_text, origin, path in entries:
        table.insert(
            RouteEntry(
                prefix=Prefix.parse(prefix_text),
                origin_asn=origin,
                as_path=tuple(path),
            )
        )
    return table


@pytest.fixture()
def table() -> RoutingTable:
    return table_with(
        [
            ("20.0.0.0/16", 3, (1, 2, 3)),
            ("20.1.0.0/16", 4, (1, 2, 4)),
        ]
    )


class TestDumpAndParse:
    def test_roundtrip(self, table):
        parsed = parse_dump(dump_table(table))
        assert parsed.vantage_asn == table.vantage_asn
        assert parsed.family is table.family
        assert parsed.entries.keys() == table.entries.keys()
        for prefix, entry in table.entries.items():
            assert parsed.entries[prefix].as_path == entry.as_path

    def test_dump_is_sorted_and_stable(self, table):
        assert dump_table(table) == dump_table(table)
        lines = dump_table(table).splitlines()
        assert lines[2].startswith("20.0.0.0/16")

    def test_v6_roundtrip(self):
        table = table_with(
            [("2001:db8::/48", 7, (1, 5, 7))], family=V6
        )
        parsed = parse_dump(dump_table(table))
        assert parsed.family is V6

    def test_bad_header_rejected(self):
        with pytest.raises(RoutingError):
            parse_dump("not a dump\n")

    def test_malformed_line_rejected(self, table):
        text = dump_table(table) + "20.9.0.0/16\n"
        with pytest.raises(RoutingError):
            parse_dump(text)

    def test_entry_count_mismatch_rejected(self, table):
        text = dump_table(table).replace("entries=2", "entries=5")
        with pytest.raises(RoutingError):
            parse_dump(text)


class TestDiff:
    def test_no_changes(self, table):
        assert diff_tables(table, table) == []

    def test_announced_and_withdrawn(self, table):
        newer = table_with(
            [
                ("20.0.0.0/16", 3, (1, 2, 3)),
                ("20.2.0.0/16", 9, (1, 2, 9)),
            ]
        )
        changes = {c.kind: c for c in diff_tables(table, newer)}
        assert changes[RouteChangeKind.ANNOUNCED].new_path == (1, 2, 9)
        assert changes[RouteChangeKind.WITHDRAWN].old_path == (1, 2, 4)

    def test_path_change(self, table):
        newer = table_with(
            [
                ("20.0.0.0/16", 3, (1, 5, 3)),
                ("20.1.0.0/16", 4, (1, 2, 4)),
            ]
        )
        changes = diff_tables(table, newer)
        assert len(changes) == 1
        change = changes[0]
        assert change.kind is RouteChangeKind.PATH_CHANGED
        assert change.old_path == (1, 2, 3)
        assert change.new_path == (1, 5, 3)

    def test_changed_origins(self, table):
        newer = table_with(
            [
                ("20.0.0.0/16", 3, (1, 5, 3)),
                ("20.1.0.0/16", 4, (1, 2, 4)),
            ]
        )
        assert changed_origins(diff_tables(table, newer)) == {3}

    def test_family_and_vantage_guards(self, table):
        with pytest.raises(RoutingError):
            diff_tables(table, table_with([], family=V6))
        with pytest.raises(RoutingError):
            diff_tables(table, table_with([], vantage=2))


class TestAgainstBuiltTables:
    def test_world_table_roundtrips(self, small_world):
        from repro.bgp.table import build_routing_table

        vantage = small_world.vantages[0]
        table = build_routing_table(
            small_world.dualstack,
            small_world.oracle,
            vantage.asn,
            V4,
            destinations=small_world.dualstack.asn_list[:40],
        )
        parsed = parse_dump(dump_table(table))
        assert len(parsed) == len(table)
