"""Cross-validate route selection against brute-force enumeration.

On tiny random topologies (with peering links, the hard part), enumerate
*every* simple valley-free path and pick the best by Gao-Rexford policy
(route class, then length).  The oracle's selected route must match that
optimum in (class, length) — the strongest correctness guarantee we can
give the control plane.
"""

from __future__ import annotations

import random
from itertools import count

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.routing import PathOracle, RouteClass
from repro.config import DualStackConfig
from repro.net.addresses import AddressFamily
from repro.topology.asys import ASType, AutonomousSystem
from repro.topology.dualstack import DualStackTopology, deploy_ipv6
from repro.topology.generator import Topology
from repro.topology.relationships import Link

V4 = AddressFamily.IPV4


def full_overlay(topo: Topology) -> DualStackTopology:
    return deploy_ipv6(
        topo,
        DualStackConfig(
            v6_enable_prob_tier1=1.0,
            v6_enable_prob_transit=1.0,
            v6_enable_prob_stub=1.0,
            v6_enable_prob_content=1.0,
            v6_enable_prob_cdn=1.0,
            c2p_parity=1.0,
            peering_parity=1.0,
        ),
        random.Random(0),
    )


def enumerate_valley_free(
    topo: Topology, src: int, dest: int
) -> list[tuple[RouteClass, int]]:
    """All (class, length) of simple valley-free paths src -> dest.

    A path's route class at the source is determined by its first edge:
    down (customer route), peer (peer route), or up (provider route).
    Valley-free shape: up* peer? down*.
    """
    results: list[tuple[RouteClass, int]] = []

    def extend(node: int, visited: set[int], phase: int, first_edge: str | None):
        # phase 0 = may still climb; 1 = after the peer edge; 2 = descending.
        if node == dest:
            if first_edge is not None:
                route_class = {
                    "down": RouteClass.CUSTOMER,
                    "peer": RouteClass.PEER,
                    "up": RouteClass.PROVIDER,
                }[first_edge]
                results.append((route_class, len(visited) - 1))
            return
        if phase == 0:
            for provider in topo.providers_of(node):
                if provider not in visited:
                    extend(
                        provider, visited | {provider}, 0, first_edge or "up"
                    )
            for peer in topo.peers_of(node):
                if peer not in visited:
                    extend(peer, visited | {peer}, 2, first_edge or "peer")
        if phase in (0, 2):
            for customer in topo.customers_of(node):
                if customer not in visited:
                    extend(
                        customer, visited | {customer}, 2, first_edge or "down"
                    )

    extend(src, {src}, 0, None)
    return results


@st.composite
def tiny_topology(draw) -> Topology:
    """A random <=10-AS hierarchy with extra peering links."""
    topo = Topology()
    asn_counter = count(1)
    tier1 = [next(asn_counter) for _ in range(2)]
    for asn in tier1:
        topo.add_as(AutonomousSystem(asn=asn, type=ASType.TIER1, region=0))
    topo.add_link(Link.peering(*tier1))
    others: list[int] = []
    n_others = draw(st.integers(min_value=2, max_value=7))
    for i in range(n_others):
        asn = next(asn_counter)
        kind = ASType.TRANSIT if i < n_others // 2 else ASType.STUB
        topo.add_as(AutonomousSystem(asn=asn, type=kind, region=0))
        provider = draw(st.sampled_from(tier1 + others)) if others else tier1[0]
        topo.add_link(Link.customer_provider(asn, provider))
        others.append(asn)
    # Sprinkle peering links between non-tier1 ASes.
    n_peerings = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_peerings):
        if len(others) < 2:
            break
        x = draw(st.sampled_from(others))
        y = draw(st.sampled_from(others))
        if x != y and not topo.has_link(x, y):
            topo.add_link(Link.peering(x, y))
    return topo


class TestBruteForceAgreement:
    @given(tiny_topology())
    @settings(max_examples=60, deadline=None)
    def test_selected_route_is_policy_optimal(self, topo):
        """Selected routes agree with exhaustive valley-free enumeration.

        Exact agreement is asserted per route class where BGP guarantees
        it: the selected class always matches the best available class,
        and customer/peer routes are shortest within their class.  For
        provider routes the selected path may legitimately be *longer*
        than the graph's shortest valley-free path: an intermediate
        provider prefers (and therefore exports) its customer route even
        when a shorter provider route exists, so the source inherits the
        longer path - that is BGP, not a bug.
        """
        ds = full_overlay(topo)
        nodes = sorted(topo.ases)
        sources = nodes[: min(4, len(nodes))]
        oracle = PathOracle(ds, sources=sources)
        for src in sources:
            for dest in nodes:
                if src == dest:
                    continue
                candidates = enumerate_valley_free(topo, src, dest)
                selected = oracle.route(src, dest, V4)
                if not candidates:
                    assert selected is None
                    continue
                best_class, best_len = min(candidates)
                assert selected is not None, (
                    f"{src}->{dest}: oracle found nothing, "
                    f"brute force found {(best_class, best_len)}"
                )
                assert selected.route_class == best_class, (
                    f"{src}->{dest}: oracle class {selected.route_class}, "
                    f"optimum class {best_class}"
                )
                if best_class in (RouteClass.CUSTOMER, RouteClass.PEER):
                    assert selected.hop_count == best_len, (
                        f"{src}->{dest}: oracle chose length "
                        f"{selected.hop_count}, optimum is {best_len}"
                    )
                else:
                    assert selected.hop_count >= best_len

    @given(tiny_topology())
    @settings(max_examples=30, deadline=None)
    def test_alternate_route_is_valid_and_distinct(self, topo):
        ds = full_overlay(topo)
        nodes = sorted(topo.ases)
        oracle = PathOracle(ds, sources=nodes[:3])
        for src in nodes[:3]:
            for dest in nodes:
                if src == dest:
                    continue
                primary = oracle.route(src, dest, V4)
                alternate = oracle.alternate_route(src, dest, V4)
                if alternate is None:
                    continue
                assert primary is not None
                assert alternate.path[0] == src
                assert alternate.path[-1] == dest
                assert alternate.path[1] != primary.path[1]
                # The alternate is at best as good as the primary.
                assert (alternate.route_class, alternate.hop_count) >= (
                    primary.route_class,
                    primary.hop_count,
                )
