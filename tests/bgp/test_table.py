"""Routing tables: LPM lookup and construction from the oracle."""

from __future__ import annotations

import random

import pytest

from repro.bgp.routing import PathOracle
from repro.bgp.table import RouteEntry, RoutingTable, build_routing_table
from repro.config import DualStackConfig, TopologyConfig
from repro.errors import RoutingError
from repro.net.addresses import AddressFamily, IPv4Address, Prefix
from repro.topology.dualstack import deploy_ipv6
from repro.topology.generator import generate_topology

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


class TestRouteEntry:
    def test_path_must_end_at_origin(self):
        with pytest.raises(RoutingError):
            RouteEntry(
                prefix=Prefix.parse("10.0.0.0/16"), origin_asn=5, as_path=(1, 2)
            )

    def test_empty_path_rejected(self):
        with pytest.raises(RoutingError):
            RouteEntry(prefix=Prefix.parse("10.0.0.0/16"), origin_asn=5, as_path=())


class TestRoutingTable:
    @pytest.fixture()
    def table(self) -> RoutingTable:
        t = RoutingTable(vantage_asn=1, family=V4)
        t.insert(
            RouteEntry(
                prefix=Prefix.parse("20.0.0.0/8"), origin_asn=2, as_path=(1, 2)
            )
        )
        t.insert(
            RouteEntry(
                prefix=Prefix.parse("20.1.0.0/16"), origin_asn=3, as_path=(1, 2, 3)
            )
        )
        return t

    def test_longest_prefix_wins(self, table):
        entry = table.lookup(IPv4Address.parse("20.1.2.3"))
        assert entry is not None and entry.origin_asn == 3

    def test_shorter_prefix_covers_rest(self, table):
        entry = table.lookup(IPv4Address.parse("20.9.2.3"))
        assert entry is not None and entry.origin_asn == 2

    def test_miss_returns_none(self, table):
        assert table.lookup(IPv4Address.parse("99.0.0.1")) is None
        assert table.as_path_to(IPv4Address.parse("99.0.0.1")) is None

    def test_family_mismatch_rejected(self, table):
        from repro.net.addresses import IPv6Address

        with pytest.raises(RoutingError):
            table.lookup(IPv6Address.parse("::1"))
        with pytest.raises(RoutingError):
            table.insert(
                RouteEntry(
                    prefix=Prefix.parse("2001:db8::/48"),
                    origin_asn=9,
                    as_path=(1, 9),
                )
            )

    def test_len(self, table):
        assert len(table) == 2


class TestBuildRoutingTable:
    @pytest.fixture(scope="class")
    def built(self):
        config = TopologyConfig(n_tier1=3, n_transit=10, n_stub=25, n_content=12, n_cdn=1)
        topo = generate_topology(config, random.Random(31))
        ds = deploy_ipv6(topo, DualStackConfig(), random.Random(32))
        vantage = sorted(ds.v6_enabled)[0]
        oracle = PathOracle(ds, sources=[vantage])
        v4_table = build_routing_table(ds, oracle, vantage, V4)
        v6_table = build_routing_table(ds, oracle, vantage, V6)
        return ds, vantage, v4_table, v6_table

    def test_v4_covers_every_as(self, built):
        ds, vantage, v4_table, _ = built
        assert len(v4_table) == len(ds.asn_list)

    def test_v6_covers_only_v6_world(self, built):
        ds, _, _, v6_table = built
        assert 0 < len(v6_table) <= len(ds.v6_enabled)

    def test_paths_start_at_vantage(self, built):
        _, vantage, v4_table, _ = built
        for entry in v4_table.entries.values():
            assert entry.as_path[0] == vantage
            assert entry.as_path[-1] == entry.origin_asn

    def test_lookup_address_in_origin_block(self, built):
        ds, _, v4_table, _ = built
        origin = ds.asn_list[len(ds.asn_list) // 2]
        prefix = ds.allocator.prefix_of(origin, V4)
        entry = v4_table.lookup(prefix.address(7))
        assert entry is not None and entry.origin_asn == origin

    def test_destination_subset(self, built):
        ds, vantage, _, _ = built
        oracle = PathOracle(ds, sources=[vantage])
        subset = ds.asn_list[:5]
        table = build_routing_table(ds, oracle, vantage, V4, destinations=subset)
        assert len(table) == len(subset)
