"""Origin servers."""

from __future__ import annotations

import pytest

from repro.net.addresses import AddressFamily
from repro.web.server import OriginServer


class TestOriginServer:
    def test_family_blind_by_default(self):
        server = OriginServer(asn=1, base_speed=100.0)
        assert server.speed(AddressFamily.IPV4) == server.speed(AddressFamily.IPV6)
        assert not server.v6_impaired

    def test_impaired_v6(self):
        server = OriginServer(asn=1, base_speed=100.0, v6_efficiency=0.5)
        assert server.speed(AddressFamily.IPV6) == 50.0
        assert server.v6_impaired

    def test_borderline_efficiency_not_flagged(self):
        server = OriginServer(asn=1, base_speed=100.0, v6_efficiency=0.95)
        assert not server.v6_impaired

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OriginServer(asn=1, base_speed=0)
        with pytest.raises(ValueError):
            OriginServer(asn=1, base_speed=10, v6_efficiency=0)
        with pytest.raises(ValueError):
            OriginServer(asn=1, base_speed=10, v4_efficiency=3.0)
