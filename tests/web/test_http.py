"""The simulated HTTP client against hand-built dependencies."""

from __future__ import annotations

import random

import pytest

from repro.config import PerformanceConfig
from repro.dataplane.path import ForwardingPath
from repro.dataplane.performance import ThroughputModel
from repro.errors import DownloadError, UnreachableError
from repro.net.addresses import AddressFamily, IPv4Address, IPv6Address
from repro.rng import RngStreams
from repro.web.http import ContentEndpoint, HttpClient

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def make_client(path=None):
    model = ThroughputModel(PerformanceConfig(), RngStreams(5))
    if path is None:
        path = ForwardingPath(
            family=V4, as_path=(1, 2, 3), quality=1.0, tunnels=(), tunnel_quality=0.8
        )

    def content_lookup(name, family, round_idx):
        return ContentEndpoint(
            site_id=7, server_asn=3, server_speed=100.0, page_bytes=50_000
        )

    def path_provider(owner, site_id, family, round_idx):
        return path

    return HttpClient(
        model=model,
        content_lookup=content_lookup,
        path_provider=path_provider,
        owner_lookup=lambda address: 3,
    ), model


class TestGet:
    def test_successful_download(self):
        client, model = make_client()
        result = client.get("site.example", IPv4Address(1), V4, 0, random.Random(1))
        assert result.page_bytes == 50_000
        assert result.as_path == (1, 2, 3)
        assert result.server_asn == 3
        assert result.speed_kbytes_per_sec > 0
        assert result.seconds == pytest.approx(
            model.download_seconds(50_000, result.speed_kbytes_per_sec)
        )

    def test_speed_scales_with_path_factor(self):
        short = ForwardingPath(
            family=V4, as_path=(1, 3), quality=1.0, tunnels=(), tunnel_quality=0.8
        )
        long = ForwardingPath(
            family=V4,
            as_path=(1, 2, 4, 5, 6, 3),
            quality=1.0,
            tunnels=(),
            tunnel_quality=0.8,
        )
        fast_client, _ = make_client(short)
        slow_client, _ = make_client(long)
        fast = fast_client.get("s", IPv4Address(1), V4, 0, random.Random(1))
        slow = slow_client.get("s", IPv4Address(1), V4, 0, random.Random(1))
        assert fast.speed_kbytes_per_sec > slow.speed_kbytes_per_sec

    def test_unreachable_destination(self):
        client, _ = make_client()
        client_unreachable = HttpClient(
            model=client._model,
            content_lookup=client._content_lookup,
            path_provider=lambda *args: None,
            owner_lookup=lambda address: 3,
        )
        with pytest.raises(UnreachableError):
            client_unreachable.get(
                "site.example", IPv4Address(1), V4, 0, random.Random(1)
            )

    def test_family_mismatch_rejected(self):
        client, _ = make_client()
        with pytest.raises(DownloadError):
            client.get("site.example", IPv6Address(1), V4, 0, random.Random(1))


class TestContentEndpoint:
    def test_validation(self):
        with pytest.raises(DownloadError):
            ContentEndpoint(site_id=1, server_asn=2, server_speed=0, page_bytes=10)
        with pytest.raises(DownloadError):
            ContentEndpoint(site_id=1, server_asn=2, server_speed=10, page_bytes=0)
