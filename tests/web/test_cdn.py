"""CDN providers and deployments."""

from __future__ import annotations

import pytest

from repro.net.addresses import AddressFamily
from repro.web.cdn import CdnDeployment, CDNProvider


class TestCDNProvider:
    def test_v4_only_by_default(self):
        cdn = CDNProvider(name="cdn1", asn=9)
        assert cdn.serves(AddressFamily.IPV4)
        assert not cdn.serves(AddressFamily.IPV6)

    def test_dual_stack_option(self):
        cdn = CDNProvider(name="cdn1", asn=9, dual_stack=True)
        assert cdn.serves(AddressFamily.IPV6)

    def test_edge_hostname(self):
        cdn = CDNProvider(name="cdn1", asn=9)
        assert cdn.edge_hostname("www.site.example") == "www.site.example.cdn1.net"

    def test_edge_server_lives_in_cdn_as(self):
        cdn = CDNProvider(name="cdn1", asn=9)
        edge = cdn.edge_server()
        assert edge.asn == 9
        assert edge.base_speed == cdn.edge_speed

    def test_validation(self):
        with pytest.raises(ValueError):
            CDNProvider(name="", asn=9)
        with pytest.raises(ValueError):
            CDNProvider(name="UPPER", asn=9)
        with pytest.raises(ValueError):
            CDNProvider(name="cdn1", asn=9, edge_speed=0)


class TestCdnDeployment:
    def test_v4_only_fronting(self):
        deployment = CdnDeployment(provider=CDNProvider(name="cdn1", asn=9))
        assert deployment.fronted_families() == (AddressFamily.IPV4,)

    def test_dual_stack_fronting(self):
        deployment = CdnDeployment(
            provider=CDNProvider(name="cdn1", asn=9, dual_stack=True)
        )
        assert set(deployment.fronted_families()) == {
            AddressFamily.IPV4,
            AddressFamily.IPV6,
        }
