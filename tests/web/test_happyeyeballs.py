"""Happy Eyeballs connection racing (RFC 6555)."""

from __future__ import annotations

import random

import pytest

from repro.dataplane.latency import LatencyConfig, LatencyModel
from repro.dataplane.path import ForwardingPath
from repro.errors import ConfigError
from repro.net.addresses import AddressFamily
from repro.rng import RngStreams
from repro.web.happyeyeballs import (
    HappyEyeballsClient,
    summarise_races,
)

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def path_of(hops: int, family) -> ForwardingPath:
    return ForwardingPath(
        family=family,
        as_path=tuple(range(1, hops + 2)),
        quality=1.0,
        tunnels=(),
        tunnel_quality=0.8,
    )


@pytest.fixture()
def client() -> HappyEyeballsClient:
    model = LatencyModel(LatencyConfig(jitter_sigma=0.0), RngStreams(1))
    return HappyEyeballsClient(model)


class TestRace:
    def test_equal_paths_prefer_v6(self, client):
        outcome = client.race(path_of(3, V4), path_of(3, V6), random.Random(1))
        assert outcome.v6_used
        assert outcome.fallback_penalty_ms >= 0

    def test_moderately_slower_v6_still_wins(self, client):
        # The preference delay shields IPv6 up to 300 ms of handicap.
        outcome = client.race(path_of(2, V4), path_of(6, V6), random.Random(1))
        assert outcome.v6_used

    def test_pathologically_slow_v6_loses(self):
        model = LatencyModel(
            LatencyConfig(per_hop_ms=60.0, jitter_sigma=0.0), RngStreams(1)
        )
        client = HappyEyeballsClient(model)
        outcome = client.race(path_of(1, V4), path_of(6, V6), random.Random(1))
        assert not outcome.v6_used
        # The user paid the preference delay as a fallback penalty.
        assert outcome.fallback_penalty_ms == pytest.approx(
            client.preference_delay_ms
        )

    def test_v4_only_destination(self, client):
        outcome = client.race(path_of(3, V4), None, random.Random(1))
        assert not outcome.v6_used
        assert outcome.v6_rtt_ms is None
        assert outcome.fallback_penalty_ms == 0.0

    def test_zero_preference_delay_is_pure_race(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0), RngStreams(1))
        client = HappyEyeballsClient(model, preference_delay_ms=0.0)
        outcome = client.race(path_of(2, V4), path_of(4, V6), random.Random(1))
        assert not outcome.v6_used  # shorter v4 wins a fair race

    def test_negative_delay_rejected(self):
        model = LatencyModel(LatencyConfig(), RngStreams(1))
        with pytest.raises(ConfigError):
            HappyEyeballsClient(model, preference_delay_ms=-1.0)


class TestComposition:
    """race_environment over a real world's resolver and paths."""

    def test_race_over_translated_destination(self):
        from dataclasses import replace

        from repro.config import small_config
        from repro.core.world import build_world
        from repro.net.nat64 import is_nat64_mapped
        from repro.web.happyeyeballs import race_environment

        config = small_config(seed=5, scale=0.05)
        config = replace(config, dns64=replace(config.dns64, enabled=True))
        world = build_world(config)
        world.advance_to_round(0)
        env = world.environment_for(world.vantages[0])
        he = HappyEyeballsClient(
            LatencyModel(LatencyConfig(jitter_sigma=0.0), RngStreams(1))
        )

        v4_only = next(
            site
            for site in world.catalog.sites
            if not site.v6_accessible_at(0)
        )
        now = env.clock.time_of_round(0)
        res6 = env.resolver.resolve_quiet(v4_only.name, V6, now)
        # DNS64 synthesized the AAAA: a 64:ff9b::/96-mapped address.
        assert res6 is not None and is_nat64_mapped(res6.addresses[0])

        outcome = race_environment(he, env, v4_only.name, 0, random.Random(7))
        assert outcome is not None
        # The translated leg actually raced instead of forfeiting.
        assert outcome.v6_rtt_ms is not None

        native = next(
            site for site in world.catalog.sites if site.v6_accessible_at(0)
        )
        outcome = race_environment(he, env, native.name, 0, random.Random(7))
        assert outcome is not None and outcome.v6_rtt_ms is not None


class TestStatistics:
    def test_summary(self, client):
        outcomes = [
            client.race(path_of(3, V4), path_of(3, V6), random.Random(i))
            for i in range(20)
        ]
        stats = summarise_races(outcomes)
        assert stats.n_races == 20
        assert stats.v6_share == pytest.approx(1.0)
        assert stats.mean_connect_ms > 0

    def test_empty_summary(self):
        stats = summarise_races([])
        assert stats.n_races == 0
        assert stats.v6_share == 0.0
