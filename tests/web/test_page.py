"""Web pages and the 6% identity check."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import AddressFamily
from repro.web.page import WebPage


class TestWebPage:
    def test_same_content(self):
        page = WebPage.same_content(1000)
        assert page.size(AddressFamily.IPV4) == page.size(AddressFamily.IPV6) == 1000
        assert page.identical_within(0.06)
        assert page.relative_size_difference() == 0.0

    def test_identity_threshold_boundary(self):
        page = WebPage(v4_bytes=1000, v6_bytes=940)
        assert page.relative_size_difference() == pytest.approx(0.06)
        assert page.identical_within(0.06)
        assert not WebPage(v4_bytes=1000, v6_bytes=930).identical_within(0.06)

    def test_difference_relative_to_larger(self):
        # Symmetric regardless of which side is bigger.
        a = WebPage(v4_bytes=1000, v6_bytes=900)
        b = WebPage(v4_bytes=900, v6_bytes=1000)
        assert a.relative_size_difference() == b.relative_size_difference()

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            WebPage(v4_bytes=0, v6_bytes=100)

    @given(st.integers(1, 10**7), st.integers(1, 10**7))
    def test_difference_in_unit_range(self, v4, v6):
        diff = WebPage(v4_bytes=v4, v6_bytes=v6).relative_size_difference()
        assert 0.0 <= diff < 1.0
