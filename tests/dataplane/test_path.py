"""Forwarding paths: apparent vs effective hops, tunnel accounting."""

from __future__ import annotations

import random

import pytest

from repro.config import DualStackConfig, TopologyConfig
from repro.dataplane.path import ForwardingPath
from repro.errors import RoutingError
from repro.net.addresses import AddressFamily
from repro.net.tunnels import Tunnel, TunnelKind
from repro.topology.dualstack import deploy_ipv6
from repro.topology.generator import generate_topology

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def plain_path(n_hops: int) -> ForwardingPath:
    return ForwardingPath(
        family=V4,
        as_path=tuple(range(1, n_hops + 2)),
        quality=1.0,
        tunnels=(),
        tunnel_quality=0.8,
    )


class TestHopAccounting:
    def test_apparent_hops(self):
        assert plain_path(3).apparent_hops == 3

    def test_no_tunnels_no_hidden_hops(self):
        path = plain_path(3)
        assert path.hidden_hops == 0
        assert path.effective_hops == 3
        assert path.total_quality == 1.0

    def test_tunnel_adds_hidden_hops_and_penalty(self):
        tunnel = Tunnel(client_asn=4, relay_asn=2, kind=TunnelKind.BROKER, hidden_hops=4)
        path = ForwardingPath(
            family=V6,
            as_path=(1, 2, 4),
            quality=1.0,
            tunnels=(tunnel,),
            tunnel_quality=0.8,
        )
        assert path.apparent_hops == 2
        assert path.hidden_hops == 3
        assert path.effective_hops == 5
        assert path.total_quality == pytest.approx(0.8)

    def test_destination(self):
        assert plain_path(2).destination == 3


class TestFromAsPath:
    @pytest.fixture(scope="class")
    def ds(self):
        config = TopologyConfig(n_tier1=3, n_transit=10, n_stub=20, n_content=10, n_cdn=1)
        topo = generate_topology(config, random.Random(8))
        return deploy_ipv6(topo, DualStackConfig(), random.Random(9))

    def test_quality_multiplies_crossed_ases(self, ds):
        asns = ds.asn_list[:4]
        path = ForwardingPath.from_as_path(ds, tuple(asns), V4)
        expected = 1.0
        for asn in asns[1:]:
            expected *= ds.base.ases[asn].quality(V4)
        assert path.quality == pytest.approx(expected)

    def test_tunneled_adjacency_detected(self, ds):
        if not ds.tunnels:
            pytest.skip("this draw produced no tunnels")
        tunnel = next(iter(ds.tunnels.values()))
        path = ForwardingPath.from_as_path(
            ds, (tunnel.relay_asn, tunnel.client_asn), V6
        )
        assert path.tunnels == (tunnel,)
        assert path.effective_hops == 1 + tunnel.extra_hops

    def test_v4_never_reports_tunnels(self, ds):
        if not ds.tunnels:
            pytest.skip("this draw produced no tunnels")
        tunnel = next(iter(ds.tunnels.values()))
        path = ForwardingPath.from_as_path(
            ds, (tunnel.relay_asn, tunnel.client_asn), V4
        )
        assert path.tunnels == ()

    def test_unknown_as_rejected(self, ds):
        with pytest.raises(RoutingError):
            ForwardingPath.from_as_path(ds, (1, 999999), V4)

    def test_empty_path_rejected(self, ds):
        with pytest.raises(RoutingError):
            ForwardingPath.from_as_path(ds, (), V4)

    def test_describe_mentions_tunnel(self, ds):
        if not ds.tunnels:
            pytest.skip("this draw produced no tunnels")
        tunnel = next(iter(ds.tunnels.values()))
        path = ForwardingPath.from_as_path(
            ds, (tunnel.relay_asn, tunnel.client_asn), V6
        )
        assert "tunneled" in path.describe()
