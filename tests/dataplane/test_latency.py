"""The RTT model."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.dataplane.latency import LatencyConfig, LatencyModel
from repro.dataplane.path import ForwardingPath
from repro.errors import ConfigError
from repro.net.addresses import AddressFamily
from repro.net.tunnels import Tunnel, TunnelKind
from repro.rng import RngStreams

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def path_of(hops: int, family=V4, tunnels=()) -> ForwardingPath:
    return ForwardingPath(
        family=family,
        as_path=tuple(range(1, hops + 2)),
        quality=1.0,
        tunnels=tunnels,
        tunnel_quality=0.8,
    )


@pytest.fixture()
def model() -> LatencyModel:
    return LatencyModel(LatencyConfig(), RngStreams(3))


class TestBaseRtt:
    def test_grows_with_hops(self, model):
        rtts = [model.base_rtt_ms(path_of(h)) for h in (1, 3, 6)]
        assert rtts == sorted(rtts)

    def test_rtt_is_twice_one_way(self, model):
        cfg = model.config
        expected = 2.0 * (cfg.access_ms + cfg.per_hop_ms * 3)
        assert model.base_rtt_ms(path_of(3)) == pytest.approx(expected)

    def test_tunnel_adds_overhead_and_hidden_hops(self, model):
        tunnel = Tunnel(client_asn=4, relay_asn=2, kind=TunnelKind.BROKER, hidden_hops=3)
        tunneled = ForwardingPath(
            family=V6, as_path=(1, 2, 4), quality=1.0,
            tunnels=(tunnel,), tunnel_quality=0.8,
        )
        plain = path_of(2, V6)
        assert model.base_rtt_ms(tunneled) > model.base_rtt_ms(plain)

    def test_family_blind(self, model):
        assert model.base_rtt_ms(path_of(4, V4)) == model.base_rtt_ms(
            path_of(4, V6)
        )


class TestSampling:
    def test_jitter_unbiased(self, model):
        rng = random.Random(5)
        base = model.base_rtt_ms(path_of(3))
        samples = [model.sample_rtt_ms(path_of(3), rng) for _ in range(3000)]
        assert statistics.mean(samples) == pytest.approx(base, rel=0.03)

    def test_zero_jitter_is_deterministic(self):
        model = LatencyModel(LatencyConfig(jitter_sigma=0.0), RngStreams(3))
        rng = random.Random(5)
        assert model.sample_rtt_ms(path_of(3), rng) == model.base_rtt_ms(path_of(3))


class TestValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ConfigError):
            LatencyConfig(per_hop_ms=0).validate()
        with pytest.raises(ConfigError):
            LatencyConfig(access_ms=-1).validate()
        with pytest.raises(ConfigError):
            LatencyConfig(jitter_sigma=-0.1).validate()
