"""The throughput model: determinism, monotonicity, noise structure."""

from __future__ import annotations

import math
import random
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PerformanceConfig
from repro.dataplane.path import ForwardingPath
from repro.dataplane.performance import ThroughputModel
from repro.net.addresses import AddressFamily
from repro.rng import RngStreams

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def path_of(hops: int, quality: float = 1.0, family=V4) -> ForwardingPath:
    return ForwardingPath(
        family=family,
        as_path=tuple(range(1, hops + 2)),
        quality=quality,
        tunnels=(),
        tunnel_quality=0.8,
    )


@pytest.fixture()
def model() -> ThroughputModel:
    return ThroughputModel(PerformanceConfig(), RngStreams(77))


class TestPathFactor:
    def test_one_hop_is_unit(self, model):
        assert model.path_factor(path_of(1)) == pytest.approx(1.0)

    def test_monotone_decreasing_in_hops(self, model):
        factors = [model.path_factor(path_of(h)) for h in range(1, 7)]
        assert factors == sorted(factors, reverse=True)

    def test_saturates(self, model):
        sat = model.config.hop_saturation
        assert model.path_factor(path_of(sat)) == pytest.approx(
            model.path_factor(path_of(sat + 3))
        )

    def test_quality_scales_linearly(self, model):
        assert model.path_factor(path_of(3, quality=0.5)) == pytest.approx(
            0.5 * model.path_factor(path_of(3, quality=1.0))
        )

    def test_family_blind(self, model):
        """H1 by construction: the model treats v4 and v6 packets alike."""
        assert model.path_factor(path_of(4, family=V4)) == pytest.approx(
            model.path_factor(path_of(4, family=V6))
        )


class TestRoundFactor:
    def test_deterministic_per_key(self, model):
        a = model.round_factor(5, V4, 3)
        b = model.round_factor(5, V4, 3)
        assert a == b

    def test_varies_across_rounds(self, model):
        values = {model.round_factor(5, V4, r) for r in range(20)}
        assert len(values) > 10

    def test_shared_across_model_instances(self):
        m1 = ThroughputModel(PerformanceConfig(), RngStreams(77))
        m2 = ThroughputModel(PerformanceConfig(), RngStreams(77))
        assert m1.round_factor(5, V4, 3) == m2.round_factor(5, V4, 3)

    def test_zero_sigma_disables_noise(self):
        config = PerformanceConfig(round_noise_sigma=0.0)
        model = ThroughputModel(config, RngStreams(77))
        assert model.round_factor(5, V4, 3) == 1.0


class TestSampling:
    def test_round_mean_speed_composition(self, model):
        path = path_of(3)
        speed = model.round_mean_speed(100.0, path, site_id=5, round_idx=2)
        expected = 100.0 * model.path_factor(path) * model.round_factor(5, V4, 2)
        assert speed == pytest.approx(expected)

    def test_nonpositive_server_speed_rejected(self, model):
        with pytest.raises(ValueError):
            model.round_mean_speed(0.0, path_of(2), 1, 1)

    def test_download_noise_is_unbiased(self, model):
        rng = random.Random(4)
        samples = [model.sample_download_speed(50.0, rng) for _ in range(4000)]
        # Lognormal with small sigma: mean within ~2% of the round mean.
        assert statistics.mean(samples) == pytest.approx(50.0, rel=0.02)

    def test_download_seconds(self, model):
        assert model.download_seconds(50_000, 100.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            model.download_seconds(50_000, 0.0)

    def test_server_base_speed_mean_matches_config(self, model):
        rng = random.Random(9)
        samples = [model.sample_server_base_speed(rng) for _ in range(6000)]
        assert statistics.mean(samples) == pytest.approx(
            model.config.server_base_speed_mean, rel=0.05
        )

    @given(st.integers(1, 12), st.floats(0.5, 1.5))
    @settings(max_examples=30, deadline=None)
    def test_speed_always_positive(self, hops, quality):
        model = ThroughputModel(PerformanceConfig(), RngStreams(1))
        speed = model.round_mean_speed(80.0, path_of(hops, quality), 1, 1)
        assert speed > 0
