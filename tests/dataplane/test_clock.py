"""Simulation clock."""

from __future__ import annotations

import pytest

from repro.dataplane.clock import (
    HALF_HOUR_SECONDS,
    WEEK_SECONDS,
    SimulationClock,
)
from repro.errors import ConfigError


class TestSimulationClock:
    def test_weekly_rounds(self):
        clock = SimulationClock.weekly()
        assert clock.time_of_round(0) == 0.0
        assert clock.time_of_round(3) == 3 * WEEK_SECONDS

    def test_w6d_rounds(self):
        clock = SimulationClock.world_ipv6_day(origin=100.0)
        assert clock.time_of_round(2) == 100.0 + 2 * HALF_HOUR_SECONDS

    def test_round_of_time_inverts(self):
        clock = SimulationClock.weekly()
        for round_idx in (0, 1, 7):
            assert clock.round_of_time(clock.time_of_round(round_idx)) == round_idx
            assert (
                clock.round_of_time(clock.time_of_round(round_idx) + 1.0) == round_idx
            )

    def test_time_before_origin_clamps(self):
        clock = SimulationClock(round_interval=10.0, origin=50.0)
        assert clock.round_of_time(0.0) == 0

    def test_negative_round_rejected(self):
        with pytest.raises(ConfigError):
            SimulationClock.weekly().time_of_round(-1)

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ConfigError):
            SimulationClock(round_interval=0.0)
