"""Vantage points."""

from __future__ import annotations

import pytest

from repro.monitor.vantage import VantageKind, VantagePoint


def make(name="X", **kwargs):
    defaults = dict(
        name=name,
        location="Loc",
        asn=7,
        start_round=3,
        as_path_available=True,
        white_listed=False,
        kind=VantageKind.ACADEMIC,
    )
    defaults.update(kwargs)
    return VantagePoint(**defaults)


class TestVantagePoint:
    def test_active_at(self):
        vp = make(start_round=3)
        assert not vp.active_at(2)
        assert vp.active_at(3)
        assert vp.active_at(10)

    def test_table1_row(self):
        vp = make(white_listed=True, kind=VantageKind.COMMERCIAL)
        row = vp.table1_row()
        assert row == ("X (Loc)", "round 3", "Y", "Y", "Comml.")

    def test_validation(self):
        with pytest.raises(ValueError):
            make(name="")
        with pytest.raises(ValueError):
            make(start_round=-1)
        with pytest.raises(ValueError):
            make(asn=0)
