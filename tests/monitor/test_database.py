"""Measurement database semantics."""

from __future__ import annotations

import pytest

from repro.errors import MonitorError
from repro.monitor.database import (
    DnsObservation,
    DownloadObservation,
    MeasurementDatabase,
    PathObservation,
)
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def download(site_id, round_idx, family, speed, converged=True):
    return DownloadObservation(
        site_id=site_id,
        round_idx=round_idx,
        family=family,
        n_samples=5,
        mean_speed=speed,
        ci_half_width=1.0,
        converged=converged,
        page_bytes=1000,
        timestamp=0.0,
    )


def path(site_id, round_idx, family, as_path):
    return PathObservation(
        site_id=site_id,
        round_idx=round_idx,
        family=family,
        dest_asn=as_path[-1],
        as_path=as_path,
    )


@pytest.fixture()
def db() -> MeasurementDatabase:
    return MeasurementDatabase(vantage_name="T")


class TestDns:
    def test_counters_accumulate(self, db):
        for sid, v6 in ((1, True), (2, False), (3, True)):
            db.add_dns(DnsObservation(sid, f"s{sid}", 0, True, v6))
        assert db.dns_counts[0] == (3, 3, 2)
        assert db.v6_reachability(0) == pytest.approx(2 / 3)

    def test_only_dual_stack_rows_are_retained(self, db):
        db.add_dns(DnsObservation(1, "s1", 0, True, True))
        db.add_dns(DnsObservation(2, "s2", 0, True, False))
        assert 1 in db.dns and 2 not in db.dns

    def test_unlisted_queries_do_not_count_for_reachability(self, db):
        db.add_dns(DnsObservation(1, "s1", 0, True, True, listed=False))
        assert db.v6_reachability(0) == 0.0
        assert 1 in db.dns  # still retained as a dual-stack observation

    def test_no_data_reachability_is_zero(self, db):
        assert db.v6_reachability(5) == 0.0


class TestDownloads:
    def test_speeds_in_round_order(self, db):
        db.add_download(download(1, 0, V4, 10.0))
        db.add_download(download(1, 2, V4, 12.0))
        assert db.speeds(1, V4) == [10.0, 12.0]
        assert db.download_rounds(1, V4) == [0, 2]
        assert db.sample_count(1, V4) == 2

    def test_unconverged_rounds_excluded(self, db):
        db.add_download(download(1, 0, V4, 10.0))
        db.add_download(download(1, 1, V4, 99.0, converged=False))
        assert db.speeds(1, V4) == [10.0]

    def test_out_of_order_insert_rejected(self, db):
        db.add_download(download(1, 3, V4, 10.0))
        with pytest.raises(MonitorError):
            db.add_download(download(1, 3, V4, 10.0))
        with pytest.raises(MonitorError):
            db.add_download(download(1, 1, V4, 10.0))

    def test_dual_stack_sites(self, db):
        db.add_download(download(1, 0, V4, 10.0))
        db.add_download(download(1, 0, V6, 10.0))
        db.add_download(download(2, 0, V4, 10.0))
        assert db.dual_stack_sites() == [1]

    def test_len_counts_downloads(self, db):
        db.add_download(download(1, 0, V4, 10.0))
        db.add_download(download(1, 0, V6, 10.0))
        assert len(db) == 2


class TestPaths:
    def test_modal_path_wins(self, db):
        db.add_path(path(1, 0, V6, (1, 2, 3)))
        db.add_path(path(1, 1, V6, (1, 4, 3)))
        db.add_path(path(1, 2, V6, (1, 2, 3)))
        assert db.as_path(1, V6) == (1, 2, 3)

    def test_tie_prefers_latest(self, db):
        db.add_path(path(1, 0, V6, (1, 2, 3)))
        db.add_path(path(1, 1, V6, (1, 4, 3)))
        assert db.as_path(1, V6) == (1, 4, 3)

    def test_path_change_rounds(self, db):
        db.add_path(path(1, 0, V6, (1, 2, 3)))
        db.add_path(path(1, 1, V6, (1, 2, 3)))
        db.add_path(path(1, 2, V6, (1, 4, 3)))
        assert db.path_change_rounds(1, V6) == [2]
        assert db.had_path_change(1)

    def test_no_path_change(self, db):
        db.add_path(path(1, 0, V6, (1, 2, 3)))
        db.add_path(path(1, 1, V6, (1, 2, 3)))
        assert not db.had_path_change(1)

    def test_dest_asn_uses_latest(self, db):
        db.add_path(path(1, 0, V6, (1, 2, 3)))
        db.add_path(path(1, 1, V6, (1, 4, 9)))
        assert db.dest_asn(1, V6) == 9

    def test_missing_site(self, db):
        assert db.as_path(99, V6) is None
        assert db.dest_asn(99, V6) is None


class TestPopulationQueries:
    def test_destination_ases(self, db):
        db.add_path(path(1, 0, V4, (1, 2, 3)))
        db.add_path(path(2, 0, V4, (1, 2, 5)))
        assert db.destination_ases(V4) == {3, 5}

    def test_ases_crossed_excludes_vantage(self, db):
        db.add_path(path(1, 0, V4, (1, 2, 3)))
        db.add_path(path(2, 0, V4, (1, 4, 5)))
        assert db.ases_crossed(V4) == {2, 3, 4, 5}


class TestSerialization:
    def full_db(self):
        from repro.monitor.database import DnsObservation, PageCheck

        db = MeasurementDatabase(vantage_name="T")
        db.add_dns(DnsObservation(1, "s1", 0, True, True))
        db.add_dns(DnsObservation(2, "s2", 0, True, False))
        db.add_dns(DnsObservation(1, "s1", 1, True, True, listed=False))
        db.add_page_check(PageCheck(1, 0, 1000, 1000, True))
        for family in (V4, V6):
            for round_idx in (0, 1, 2):
                db.add_download(download(1, round_idx, family, 100.0 + round_idx))
        db.add_path(path(1, 0, V4, (10, 20, 30)))
        db.add_path(path(1, 1, V4, (10, 25, 30)))
        db.add_path(path(1, 0, V6, (10, 40, 30)))
        return db

    def test_round_trip_equality(self):
        db = self.full_db()
        rebuilt = MeasurementDatabase.from_dict(db.to_dict())
        assert rebuilt == db
        assert rebuilt.to_dict() == db.to_dict()

    def test_round_trip_is_json_safe(self):
        import json

        db = self.full_db()
        over_the_wire = json.loads(json.dumps(db.to_dict()))
        assert MeasurementDatabase.from_dict(over_the_wire) == db

    def test_unsupported_format_rejected(self):
        data = self.full_db().to_dict()
        data["format"] = 999
        with pytest.raises(MonitorError):
            MeasurementDatabase.from_dict(data)

    def test_out_of_order_insert_still_rejected_after_load(self):
        rebuilt = MeasurementDatabase.from_dict(self.full_db().to_dict())
        with pytest.raises(MonitorError):
            rebuilt.add_download(download(1, 1, V4, 50.0))

    def test_dns_counts_survive_verbatim(self):
        db = self.full_db()
        rebuilt = MeasurementDatabase.from_dict(db.to_dict())
        assert rebuilt.dns_counts == db.dns_counts
        assert rebuilt.v6_reachability(0) == db.v6_reachability(0)


class TestDualStackMemoization:
    def test_cache_is_invalidated_by_writes(self, db):
        db.add_download(download(1, 0, V4, 100.0))
        db.add_download(download(1, 0, V6, 90.0))
        assert db.dual_stack_sites() == [1]
        # memoized result must not leak staleness past a new write
        db.add_download(download(2, 0, V4, 100.0))
        db.add_download(download(2, 0, V6, 90.0))
        assert db.dual_stack_sites() == [1, 2]

    def test_repeated_queries_reuse_cache(self, db):
        db.add_download(download(1, 0, V4, 100.0))
        db.add_download(download(1, 0, V6, 90.0))
        first = db.dual_stack_sites()
        assert db._dual_stack_cache is not None
        second = db.dual_stack_sites()
        assert first == second
        # callers get copies, not the cache itself
        first.append(999)
        assert db.dual_stack_sites() == [1]
