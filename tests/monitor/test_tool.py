"""The Fig 2 monitoring pipeline over the hand-built mini environment."""

from __future__ import annotations

import pytest

from repro.errors import MonitorError
from repro.monitor.tool import MonitoringTool
from repro.net.addresses import AddressFamily

from .conftest import SITES

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


@pytest.fixture()
def tool(mini_vantage, mini_env, monitor_config, mini_rng) -> MonitoringTool:
    return MonitoringTool(mini_vantage, mini_env, monitor_config, mini_rng)


class TestRoundFlow:
    def test_round_report_counts(self, tool):
        report = tool.run_round(0)
        assert report.n_monitored == len(SITES)
        assert report.n_new == len(SITES)
        assert report.n_dual_stack == 3  # all but v4only
        assert report.n_measured == 2  # healthy + slowv6 (diffpages fails identity)
        assert report.makespan_seconds > 0

    def test_rounds_must_increase(self, tool):
        tool.run_round(0)
        with pytest.raises(MonitorError):
            tool.run_round(0)

    def test_inactive_before_start_round(self, mini_vantage, mini_env, monitor_config, mini_rng):
        from dataclasses import replace

        late = replace(mini_vantage, start_round=5)
        tool = MonitoringTool(late, mini_env, monitor_config, mini_rng)
        report = tool.run_round(0)
        assert report.n_monitored == 0
        assert len(tool.database.dns_counts) == 0

    def test_monitored_set_persists(self, tool):
        tool.run_round(0)
        tool.run_round(1)
        assert tool.run_round(2).n_new == 0
        assert set(tool.monitored_sites) == set(SITES)


class TestRecordedData:
    def test_dns_counters(self, tool):
        tool.run_round(0)
        queried, v4, v6 = tool.database.dns_counts[0]
        assert queried == 4
        assert v4 == 4
        assert v6 == 3
        assert tool.database.v6_reachability(0) == pytest.approx(3 / 4)

    def test_page_check_blocks_different_content(self, tool):
        tool.run_round(0)
        sid = SITES["diffpages.example"]
        checks = tool.database.page_checks[sid]
        assert len(checks) == 1
        assert not checks[0].identical
        assert (sid, V4) not in tool.database.downloads

    def test_download_observations(self, tool):
        tool.run_round(0)
        sid = SITES["healthy.example"]
        for family in (V4, V6):
            rows = tool.database.downloads[(sid, family)]
            assert len(rows) == 1
            obs = rows[0]
            assert obs.converged
            assert obs.n_samples >= 5
            assert obs.mean_speed > 0
            assert obs.page_bytes == 40_000

    def test_path_observations(self, tool):
        tool.run_round(0)
        sid = SITES["slowv6.example"]
        assert tool.database.as_path(sid, V4) == (1, 2)
        assert tool.database.as_path(sid, V6) == (1, 3, 4, 5, 6, 2)
        assert tool.database.dest_asn(sid, V6) == 2

    def test_slow_v6_is_measurably_slower(self, tool):
        for round_idx in range(3):
            tool.run_round(round_idx)
        db = tool.database
        sid = SITES["slowv6.example"]
        v4_mean = sum(db.speeds(sid, V4)) / 3
        v6_mean = sum(db.speeds(sid, V6)) / 3
        assert v6_mean < 0.7 * v4_mean

    def test_healthy_site_is_comparable(self, tool):
        for round_idx in range(3):
            tool.run_round(round_idx)
        db = tool.database
        sid = SITES["healthy.example"]
        v4_mean = sum(db.speeds(sid, V4)) / 3
        v6_mean = sum(db.speeds(sid, V6)) / 3
        assert abs(v6_mean - v4_mean) / v4_mean < 0.1


class TestCap:
    def test_max_sites_per_round(self, mini_vantage, mini_env, monitor_config, mini_rng):
        tool = MonitoringTool(
            mini_vantage, mini_env, monitor_config, mini_rng, max_sites_per_round=2
        )
        report = tool.run_round(0)
        assert report.n_monitored == 2

    def test_negative_cap_rejected(self, mini_vantage, mini_env, monitor_config, mini_rng):
        with pytest.raises(MonitorError):
            MonitoringTool(
                mini_vantage, mini_env, monitor_config, mini_rng, max_sites_per_round=-1
            )
