"""The repeated-download loop's stopping rule."""

from __future__ import annotations

import random

import pytest

from repro.config import MonitorConfig, PerformanceConfig
from repro.dataplane.path import ForwardingPath
from repro.dataplane.performance import ThroughputModel
from repro.faults.plan import ServerFault
from repro.monitor.download import RepeatedDownloader
from repro.net.addresses import AddressFamily, IPv4Address
from repro.rng import RngStreams
from repro.web.http import ContentEndpoint, HttpClient

V4 = AddressFamily.IPV4


def make_downloader(
    noise_sigma: float,
    config: MonitorConfig | None = None,
    fault_hook=None,
):
    model = ThroughputModel(
        PerformanceConfig(
            measurement_noise_sigma=noise_sigma, round_noise_sigma=0.0
        ),
        RngStreams(1),
    )
    path = ForwardingPath(
        family=V4, as_path=(1, 2), quality=1.0, tunnels=(), tunnel_quality=0.8
    )
    client = HttpClient(
        model=model,
        content_lookup=lambda name, family, r: ContentEndpoint(
            site_id=1, server_asn=2, server_speed=80.0, page_bytes=30_000
        ),
        path_provider=lambda *a: path,
        owner_lookup=lambda a: 2,
        fault_hook=fault_hook,
    )
    return RepeatedDownloader(client, config or MonitorConfig())


class TestStoppingRule:
    def test_low_noise_converges_at_min_downloads(self):
        downloader = make_downloader(noise_sigma=0.01)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert outcome.converged
        assert outcome.n_samples == MonitorConfig().min_downloads

    def test_zero_noise_has_zero_width(self):
        downloader = make_downloader(noise_sigma=0.0)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert outcome.converged
        assert outcome.ci_half_width == 0.0

    def test_moderate_noise_takes_more_samples(self):
        downloader = make_downloader(noise_sigma=0.25)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert outcome.n_samples > MonitorConfig().min_downloads

    def test_extreme_noise_hits_cap_unconverged(self):
        config = MonitorConfig(max_downloads=8)
        downloader = make_downloader(noise_sigma=1.2, config=config)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert outcome.n_samples == 8
        assert not outcome.converged

    def test_outcome_carries_page_and_timing(self):
        downloader = make_downloader(noise_sigma=0.05)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert outcome.page_bytes == 30_000
        assert outcome.total_seconds > 0
        assert outcome.first_result.as_path == (1, 2)

    def test_mean_speed_near_latent_speed(self):
        downloader = make_downloader(noise_sigma=0.05)
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        # latent = 80 (server) since path factor is 1 for a 1-hop path.
        assert outcome.mean_speed == pytest.approx(80.0, rel=0.1)


class TestGiveUp:
    """The abandoned-loop edge: max_retries consecutive failures."""

    def test_all_failing_loop_gives_up_with_exact_timing(self):
        fault = ServerFault(kind="timeout", seconds=3.5)
        downloader = make_downloader(
            noise_sigma=0.0, fault_hook=lambda site, fam, r, key: fault
        )
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        cfg = MonitorConfig()
        assert outcome.gave_up
        assert not outcome.converged
        assert outcome.n_samples == 0
        assert outcome.first_result is None
        assert outcome.page_bytes == 0
        assert outcome.mean_speed == 0.0
        assert outcome.n_failed == cfg.max_retries + 1
        assert outcome.n_timeouts == cfg.max_retries + 1
        assert outcome.n_resets == 0
        # Every attempt burns the fault's seconds; backoff is charged
        # after each failure *except* the last one (the loop gives up
        # instead of waiting again).
        expected = (cfg.max_retries + 1) * fault.seconds + sum(
            cfg.retry_initial_seconds * cfg.retry_backoff**k
            for k in range(cfg.max_retries)
        )
        assert outcome.total_seconds == pytest.approx(expected)

    def test_transient_fault_recovers_without_giving_up(self):
        fails = {"loop:0", "loop:1"}
        downloader = make_downloader(
            noise_sigma=0.0,
            fault_hook=lambda site, fam, r, key: (
                ServerFault(kind="reset", seconds=1.0) if key in fails else None
            ),
        )
        outcome = downloader.run("s", IPv4Address(1), V4, 0, random.Random(2))
        assert not outcome.gave_up
        assert outcome.converged
        assert outcome.n_failed == 2
        assert outcome.n_resets == 2
        assert outcome.n_samples == MonitorConfig().min_downloads
