"""Hand-built monitoring environment for the monitor unit tests.

A miniature, world-free setup: four sites with controlled properties —
a healthy dual-stack site, a v4-only site, a dual-stack site serving
different page sizes per family, and a dual-stack site whose IPv6 is
slowed by a longer path.
"""

from __future__ import annotations

import random

import pytest

from repro.config import MonitorConfig, PerformanceConfig
from repro.dataplane.clock import SimulationClock
from repro.dataplane.path import ForwardingPath
from repro.dataplane.performance import ThroughputModel
from repro.dns.records import RecordType, ResourceRecord
from repro.dns.resolver import Resolver
from repro.dns.zone import ZoneStore
from repro.monitor.tool import VantageEnvironment
from repro.monitor.vantage import VantageKind, VantagePoint
from repro.net.addresses import AddressFamily, IPv4Address, IPv6Address
from repro.rng import RngStreams
from repro.web.http import ContentEndpoint, HttpClient

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

#: site-id assignments for the mini population.
SITES = {
    "healthy.example": 0,
    "v4only.example": 1,
    "diffpages.example": 2,
    "slowv6.example": 3,
}
PAGE_BYTES = {
    ("healthy.example", V4): 40_000,
    ("healthy.example", V6): 40_000,
    ("diffpages.example", V4): 40_000,
    ("diffpages.example", V6): 80_000,  # fails the 6% identity check
    ("slowv6.example", V4): 40_000,
    ("slowv6.example", V6): 40_000,
    ("v4only.example", V4): 40_000,
}


def short_path(family) -> ForwardingPath:
    return ForwardingPath(
        family=family, as_path=(1, 2), quality=1.0, tunnels=(), tunnel_quality=0.8
    )


def long_path(family) -> ForwardingPath:
    return ForwardingPath(
        family=family,
        as_path=(1, 3, 4, 5, 6, 2),
        quality=1.0,
        tunnels=(),
        tunnel_quality=0.8,
    )


@pytest.fixture()
def mini_env() -> VantageEnvironment:
    store = ZoneStore()
    zone = store.zone_for("example.")
    for name, sid in SITES.items():
        zone.add(ResourceRecord(name, RecordType.A, IPv4Address(100 + sid)))
        if name != "v4only.example":
            zone.add(ResourceRecord(name, RecordType.AAAA, IPv6Address(100 + sid)))

    model = ThroughputModel(
        PerformanceConfig(round_noise_sigma=0.0), RngStreams(3)
    )

    def content_lookup(name, family, round_idx):
        return ContentEndpoint(
            site_id=SITES[name],
            server_asn=2,
            server_speed=100.0,
            page_bytes=PAGE_BYTES[(name, family)],
        )

    def path_provider(owner, site_id, family, round_idx):
        if site_id == SITES["slowv6.example"] and family is V6:
            return long_path(family)
        return short_path(family)

    client = HttpClient(
        model=model,
        content_lookup=content_lookup,
        path_provider=path_provider,
        owner_lookup=lambda address: 2,
    )
    return VantageEnvironment(
        resolver=Resolver(store=store),
        client=client,
        clock=SimulationClock.weekly(),
        site_list=lambda round_idx: sorted(SITES),
        external_inputs=lambda round_idx: [],
        site_id_of=lambda name: SITES[name],
    )


@pytest.fixture()
def mini_vantage() -> VantagePoint:
    return VantagePoint(
        name="Mini",
        location="Testville",
        asn=1,
        start_round=0,
        as_path_available=True,
        white_listed=False,
        kind=VantageKind.ACADEMIC,
    )


@pytest.fixture()
def monitor_config() -> MonitorConfig:
    return MonitorConfig(min_rounds=3)


@pytest.fixture()
def mini_rng() -> random.Random:
    return random.Random(17)
