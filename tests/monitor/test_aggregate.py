"""The central repository."""

from __future__ import annotations

import pytest

from repro.errors import MonitorError
from repro.monitor.aggregate import CentralRepository
from repro.monitor.database import DownloadObservation, MeasurementDatabase
from repro.monitor.vantage import VantageKind, VantagePoint
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def vantage(name: str, as_path=True) -> VantagePoint:
    return VantagePoint(
        name=name,
        location="L",
        asn=5,
        start_round=0,
        as_path_available=as_path,
        white_listed=False,
        kind=VantageKind.ACADEMIC,
    )


def db_with_site(name: str, site_id: int) -> MeasurementDatabase:
    db = MeasurementDatabase(vantage_name=name)
    for family in (V4, V6):
        db.add_download(
            DownloadObservation(
                site_id=site_id,
                round_idx=0,
                family=family,
                n_samples=5,
                mean_speed=10.0,
                ci_half_width=0.5,
                converged=True,
                page_bytes=100,
                timestamp=0.0,
            )
        )
    return db


class TestCentralRepository:
    def test_add_and_query(self):
        repo = CentralRepository()
        vp = vantage("A")
        repo.add(vp, db_with_site("A", 1))
        assert repo.vantage("A") is vp
        assert repo.database("A").vantage_name == "A"
        assert len(repo) == 1

    def test_duplicate_vantage_rejected(self):
        repo = CentralRepository()
        repo.add(vantage("A"), db_with_site("A", 1))
        with pytest.raises(MonitorError):
            repo.add(vantage("A"), db_with_site("A", 2))

    def test_mismatched_database_rejected(self):
        repo = CentralRepository()
        with pytest.raises(MonitorError):
            repo.add(vantage("A"), db_with_site("B", 1))

    def test_unknown_vantage_rejected(self):
        repo = CentralRepository()
        with pytest.raises(MonitorError):
            repo.vantage("ghost")
        with pytest.raises(MonitorError):
            repo.database("ghost")

    def test_analysis_vantages_filter(self):
        repo = CentralRepository()
        repo.add(vantage("A", as_path=True), db_with_site("A", 1))
        repo.add(vantage("B", as_path=False), db_with_site("B", 1))
        assert [v.name for v in repo.analysis_vantages()] == ["A"]
        assert [v.name for v, _ in repo.analysis_items()] == ["A"]

    def test_common_dual_stack_sites(self):
        repo = CentralRepository()
        db_a = db_with_site("A", 1)
        db_a.add_download(
            DownloadObservation(2, 0, V4, 5, 1.0, 0.1, True, 10, 0.0)
        )
        db_a.add_download(
            DownloadObservation(2, 0, V6, 5, 1.0, 0.1, True, 10, 0.0)
        )
        repo.add(vantage("A"), db_a)
        repo.add(vantage("B"), db_with_site("B", 1))
        assert repo.common_dual_stack_sites() == {1}

    def test_common_sites_empty_repo(self):
        assert CentralRepository().common_dual_stack_sites() == set()
