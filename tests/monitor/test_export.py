"""CSV/JSON export of measurement data."""

from __future__ import annotations

import csv
import json

import pytest

from repro.errors import MonitorError
from repro.monitor.aggregate import CentralRepository
from repro.monitor.database import (
    DnsObservation,
    DownloadObservation,
    MeasurementDatabase,
    PageCheck,
    PathObservation,
)
from repro.monitor.export import (
    export_database,
    export_repository,
    load_downloads_csv,
)
from repro.monitor.vantage import VantageKind, VantagePoint
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


@pytest.fixture()
def db() -> MeasurementDatabase:
    db = MeasurementDatabase(vantage_name="X")
    for round_idx in range(3):
        db.add_dns(DnsObservation(1, "s1", round_idx, True, True))
        db.add_download(
            DownloadObservation(1, round_idx, V4, 5, 10.5, 0.4, True, 900, 1.0)
        )
        db.add_download(
            DownloadObservation(1, round_idx, V6, 5, 9.5, 0.3, True, 900, 1.0)
        )
        db.add_path(PathObservation(1, round_idx, V4, 3, (1, 2, 3)))
    db.add_page_check(PageCheck(1, 0, 900, 900, True))
    return db


class TestExportDatabase:
    def test_all_tables_written(self, db, tmp_path):
        counts = export_database(db, tmp_path / "X")
        assert counts == {
            "downloads": 6,
            "paths": 3,
            "dns": 3,
            "page_checks": 1,
        }
        for name in ("downloads", "paths", "dns", "page_checks"):
            assert (tmp_path / "X" / f"{name}.csv").exists()

    def test_paths_csv_format(self, db, tmp_path):
        export_database(db, tmp_path / "X")
        with (tmp_path / "X" / "paths.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["as_path"] == "1 2 3"
        assert rows[0]["dest_asn"] == "3"

    def test_downloads_roundtrip(self, db, tmp_path):
        export_database(db, tmp_path / "X")
        loaded = load_downloads_csv(tmp_path / "X" / "downloads.csv")
        assert loaded.speeds(1, V4) == db.speeds(1, V4)
        assert loaded.speeds(1, V6) == db.speeds(1, V6)
        assert loaded.dual_stack_sites() == db.dual_stack_sites()


class TestExportRepository:
    def test_manifest_and_tree(self, db, tmp_path):
        repo = CentralRepository()
        repo.add(
            VantagePoint(
                name="X",
                location="L",
                asn=9,
                start_round=0,
                as_path_available=True,
                white_listed=False,
                kind=VantageKind.ACADEMIC,
            ),
            db,
        )
        manifest_path = export_repository(repo, tmp_path / "out")
        manifest = json.loads(manifest_path.read_text())
        assert manifest["format_version"] == 1
        assert manifest["vantage_points"]["X"]["asn"] == 9
        assert manifest["vantage_points"]["X"]["tables"]["downloads"] == 6
        assert (tmp_path / "out" / "X" / "downloads.csv").exists()

    def test_empty_repository_rejected(self, tmp_path):
        with pytest.raises(MonitorError):
            export_repository(CentralRepository(), tmp_path / "out")


class TestEndToEndExport:
    def test_small_campaign_exports(self, small_campaign, tmp_path):
        manifest_path = export_repository(
            small_campaign.repository, tmp_path / "data"
        )
        manifest = json.loads(manifest_path.read_text())
        assert len(manifest["vantage_points"]) == 6
        penn_downloads = tmp_path / "data" / "Penn" / "downloads.csv"
        with penn_downloads.open() as handle:
            n_rows = sum(1 for _ in handle) - 1
        assert n_rows == len(small_campaign.repository.database("Penn"))
