"""The bounded worker pool."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MonitorError
from repro.monitor.scheduler import SlotScheduler


class TestSlotScheduler:
    def test_serial_with_one_slot(self):
        jobs = SlotScheduler(1).schedule([2.0, 3.0, 1.0])
        assert [j.start for j in jobs] == [0.0, 2.0, 5.0]
        assert SlotScheduler(1).makespan([2.0, 3.0, 1.0]) == 6.0

    def test_parallel_with_enough_slots(self):
        jobs = SlotScheduler(3).schedule([2.0, 3.0, 1.0])
        assert all(j.start == 0.0 for j in jobs)
        assert SlotScheduler(3).makespan([2.0, 3.0, 1.0]) == 3.0

    def test_earliest_free_slot_wins(self):
        jobs = SlotScheduler(2).schedule([4.0, 1.0, 1.0])
        # Slot 1 frees at t=1 and t=2; the long job holds slot 0.
        assert jobs[1].slot == 1
        assert jobs[2].start == 1.0 and jobs[2].slot == 1

    def test_origin_offsets_everything(self):
        jobs = SlotScheduler(1).schedule([1.0], origin=100.0)
        assert jobs[0].start == 100.0 and jobs[0].finish == 101.0

    def test_empty_jobs(self):
        assert SlotScheduler(4).schedule([]) == []
        assert SlotScheduler(4).makespan([]) == 0.0

    def test_validation(self):
        with pytest.raises(MonitorError):
            SlotScheduler(0)
        with pytest.raises(MonitorError):
            SlotScheduler(1).schedule([-1.0])

    @given(
        st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=40),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_pool_invariants(self, durations, n_slots):
        jobs = SlotScheduler(n_slots).schedule(durations)
        # No slot ever runs two jobs at once.
        by_slot: dict[int, list] = {}
        for job in jobs:
            by_slot.setdefault(job.slot, []).append(job)
        for slot_jobs in by_slot.values():
            slot_jobs.sort(key=lambda j: j.start)
            for a, b in zip(slot_jobs, slot_jobs[1:]):
                assert b.start >= a.finish
        # At most n_slots jobs overlap any job's start instant.
        for job in jobs:
            overlapping = sum(
                1 for other in jobs if other.start <= job.start < other.finish
            )
            assert overlapping <= n_slots
        # Makespan is bounded by serial time and at least max duration.
        if durations:
            makespan = max(j.finish for j in jobs)
            assert makespan <= sum(durations) + 1e-9
            assert makespan >= max(durations) - 1e-9
