"""World assembly invariants (on the session-scoped small world)."""

from __future__ import annotations

import pytest

from repro.core.world import VANTAGE_TEMPLATES, build_world
from repro.dns.records import RecordType
from repro.errors import NoRecord
from repro.net.addresses import AddressFamily
from repro.net.tunnels import TunnelKind

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


class TestBuildWorld:
    def test_vantage_roster_matches_templates(self, small_world):
        names = {v.name for v in small_world.vantages}
        assert names == {t[0] for t in VANTAGE_TEMPLATES}

    def test_vantage_ases_are_v6_enabled(self, small_world):
        for vantage in small_world.vantages:
            assert vantage.asn in small_world.dualstack.v6_enabled

    def test_penn_starts_first_with_external_inputs(self, small_world):
        penn = next(v for v in small_world.vantages if v.name == "Penn")
        assert penn.start_round == 0
        assert penn.external_inputs
        others = [v for v in small_world.vantages if v.name != "Penn"]
        assert all(v.start_round > 0 for v in others)

    def test_deterministic_given_config(self, small_cfg, small_world):
        again = build_world(small_cfg)
        assert [v.asn for v in again.vantages] == [
            v.asn for v in small_world.vantages
        ]
        assert len(again.catalog) == len(small_world.catalog)


class TestAddressing:
    def test_addresses_unique_per_family(self, small_world):
        seen = set()
        for site in small_world.catalog.sites[:500]:
            addr = small_world.address_of(site, V4)
            assert addr not in seen
            seen.add(addr)

    def test_v4_address_owned_by_dest_as(self, small_world):
        site = small_world.catalog.sites[0]
        addr = small_world.address_of(site, V4)
        assert small_world.owner_of_address(addr) == site.dest_asn(V4)

    def test_v6_address_owned_by_v6_dest_as(self, small_world):
        site = next(
            s for s in small_world.catalog.sites if s.adoption_round is not None
        )
        addr = small_world.address_of(site, V6)
        assert small_world.owner_of_address(addr) == site.dest_asn(V6)


class TestZoneLifecycle:
    def test_aaaa_appears_at_adoption_round(self, small_cfg):
        world = build_world(small_cfg)
        site = next(
            s for s in world.catalog.sites
            if s.adoption_round is not None and s.adoption_round >= 2
            and s.w6d_event_round is None
        )
        world.advance_to_round(site.adoption_round - 1)
        env = world.environment_for(world.vantages[0])
        with pytest.raises(NoRecord):
            env.resolver.resolve(site.name, V6)
        world.advance_to_round(site.adoption_round)
        env.resolver.flush()
        assert env.resolver.resolve(site.name, V6)

    def test_event_only_participant_aaaa_is_transient(self, small_cfg):
        world = build_world(small_cfg)
        candidates = [
            s for s in world.catalog.sites
            if s.w6d_event_round is not None and s.adoption_round is None
        ]
        if not candidates:
            pytest.skip("no event-only participants in this draw")
        site = candidates[0]
        event = site.w6d_event_round
        world.advance_to_round(event)
        zone = world.zones.zone_for("example.")
        assert zone.lookup(site.name, RecordType.AAAA)
        world.advance_to_round(event + 1)
        assert not zone.lookup(site.name, RecordType.AAAA)

    def test_zone_snapshot_reflects_past_round(self, small_cfg, small_campaign):
        world = small_campaign.world  # already advanced to the end
        w6d_round = small_cfg.adoption.world_ipv6_day_round
        snapshot = world.zone_snapshot(w6d_round)
        zone = snapshot.zone_for("example.")
        for site in world.catalog.w6d_participants()[:10]:
            assert zone.lookup(site.name, RecordType.AAAA), site.name


class TestForwardingPaths:
    def test_paths_start_and_end_correctly(self, small_world):
        vantage = small_world.vantages[0]
        site = small_world.catalog.sites[0]
        path = small_world.forwarding_path(
            vantage.asn, site.dest_asn(V4), V4, alternate=False
        )
        assert path is not None
        assert path.as_path[0] == vantage.asn

    def test_6to4_destination_observed_behind_relay(self, small_world):
        ds = small_world.dualstack
        six_to_four = [
            asn for asn, t in ds.tunnels.items()
            if t.kind is TunnelKind.SIX_TO_FOUR
        ]
        if not six_to_four:
            pytest.skip("no 6to4 clients in this draw")
        client = six_to_four[0]
        tunnel = ds.tunnels[client]
        vantage = small_world.vantages[0]
        path = small_world.forwarding_path(vantage.asn, client, V6, alternate=False)
        if path is None:
            pytest.skip("relay unreachable from this vantage")
        assert path.as_path[-1] == tunnel.relay_asn
        assert tunnel in path.tunnels

    def test_alternate_path_differs_when_available(self, small_world):
        vantage = small_world.vantages[0]
        for site in small_world.catalog.sites[:200]:
            dest = site.dest_asn(V4)
            primary = small_world.forwarding_path(vantage.asn, dest, V4, False)
            alternate = small_world.forwarding_path(vantage.asn, dest, V4, True)
            if alternate is not None and alternate.as_path != primary.as_path:
                return  # found at least one genuine alternate
        pytest.skip("no multihomed destination among the first 200 sites")


class TestNat64:
    def test_default_world_has_no_gateways(self, small_world):
        assert small_world.nat64_gateways == ()
        vantage = small_world.vantages[0]
        assert small_world.nat64_gateway_for(vantage.asn) is None

    def test_dns64_world_deploys_gateways(self, dns64_cfg, dns64_campaign):
        world = dns64_campaign.world
        assert len(world.nat64_gateways) == dns64_cfg.dns64.n_gateways
        for gateway in world.nat64_gateways:
            assert (
                gateway.translation_quality
                == dns64_cfg.dns64.translation_quality
            )
            assert gateway.gateway_asn in world.dualstack.v6_enabled

    def test_translated_path_shape(self, dns64_campaign):
        world = dns64_campaign.world
        vantage = world.vantages[0]
        gateway = world.nat64_gateway_for(vantage.asn)
        assert gateway is not None
        site = next(
            s for s in world.catalog.sites if not s.v6_accessible_at(0)
        )
        owner = site.dest_asn(V4)
        path = world.translated_path(vantage.asn, owner)
        assert path is not None
        assert path.translated
        assert path.transition_kind == "translated"
        assert path.family is V6
        # apparent v6 leg ends at the gateway announcing 64:ff9b::/96
        assert path.as_path[-1] == gateway.gateway_asn
        # the hidden IPv4 leg adds RTT the BGP view does not show
        assert path.translation_hidden_hops >= 1
        assert path.effective_hops > len(path.as_path) - 1

    def test_translated_path_is_cached(self, dns64_campaign):
        world = dns64_campaign.world
        vantage = world.vantages[0]
        site = next(
            s for s in world.catalog.sites if not s.v6_accessible_at(0)
        )
        owner = site.dest_asn(V4)
        assert world.translated_path(vantage.asn, owner) is (
            world.translated_path(vantage.asn, owner)
        )

    def test_campaign_records_transitions(self, dns64_campaign):
        repo = dns64_campaign.repository
        total = sum(
            len(repo.database(name).transitions)
            for name in repo.vantage_names
        )
        assert total > 0
        kinds = {
            obs.kind
            for name in repo.vantage_names
            for obs in repo.database(name).transitions
        }
        assert "translated" in kinds

    def test_plain_campaign_records_none(self, small_campaign):
        repo = small_campaign.repository
        assert all(
            not repo.database(name).transitions
            for name in repo.vantage_names
        )
