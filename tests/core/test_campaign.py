"""Campaign drivers over the session-scoped small world."""

from __future__ import annotations

import pytest

from repro.core.campaign import run_world_ipv6_day
from repro.errors import ConfigError
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


class TestRunCampaign:
    def test_all_vantages_registered(self, small_campaign, small_world):
        repo = small_campaign.repository
        assert set(repo.vantage_names) == {v.name for v in small_world.vantages}

    def test_reports_cover_every_round(self, small_campaign, small_cfg):
        for name, reports in small_campaign.reports.items():
            assert len(reports) == small_cfg.campaign.n_rounds

    def test_vantages_idle_before_start(self, small_campaign, small_world):
        for vantage in small_world.vantages:
            reports = small_campaign.reports[vantage.name]
            for report in reports[: vantage.start_round]:
                assert report.n_monitored == 0
            if vantage.start_round < len(reports):
                assert reports[vantage.start_round].n_monitored > 0

    def test_dual_stack_sites_measured_everywhere(self, small_campaign):
        repo = small_campaign.repository
        for name in repo.vantage_names:
            assert len(repo.database(name).dual_stack_sites()) > 0

    def test_total_measurements_positive(self, small_campaign):
        assert small_campaign.total_measurements() > 0

    def test_reachability_growth_over_campaign(self, small_campaign, small_cfg):
        db = small_campaign.repository.database("Penn")
        early = db.v6_reachability(0)
        late = db.v6_reachability(small_cfg.campaign.n_rounds - 1)
        assert late > early

    def test_w6d_jump_visible(self, small_campaign, small_cfg):
        db = small_campaign.repository.database("Penn")
        w6d = small_cfg.adoption.world_ipv6_day_round
        before = db.v6_reachability(w6d - 1)
        during = db.v6_reachability(w6d)
        assert during > before


class TestMeasuredPerformanceStructure:
    def test_measured_speeds_positive_and_sane(self, small_campaign):
        db = small_campaign.repository.database("Penn")
        for (sid, family), rows in list(db.downloads.items())[:200]:
            for obs in rows:
                assert 0 < obs.mean_speed < 10_000

    def test_dest_ases_match_recorded_paths(self, small_campaign):
        db = small_campaign.repository.database("Penn")
        for (sid, family), rows in list(db.paths.items())[:200]:
            for obs in rows:
                assert obs.as_path[-1] == obs.dest_asn


class TestWorldIpv6Day:
    def test_participant_roster_is_monitored(self, small_w6d, small_world):
        participants = {s.site_id for s in small_world.catalog.w6d_participants()}
        if not participants:
            pytest.skip("no participants in this draw")
        db = small_w6d.campaign.repository.database("Penn")
        measured = set(db.dual_stack_sites())
        assert measured <= participants
        assert measured  # most participants are measurable during the event

    def test_default_vantages_exclude_comcast(self, small_w6d):
        assert "Comcast" not in small_w6d.campaign.repository.vantage_names

    def test_rounds_run_to_completion(self, small_w6d):
        for reports in small_w6d.campaign.reports.values():
            assert len(reports) == 24

    def test_custom_vantage_subset(self, small_campaign):
        result = run_world_ipv6_day(
            small_campaign.world, vantage_names=("LU",), n_rounds=4
        )
        assert result.repository.vantage_names == ["LU"]

    def test_unknown_vantage_name_is_rejected(self, small_world):
        with pytest.raises(ConfigError, match="Atlantis"):
            run_world_ipv6_day(
                small_world, vantage_names=("LU", "Atlantis"), n_rounds=1
            )
