"""Unit tests for the seeded fault plan and its presets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import FaultConfig
from repro.errors import ConfigError
from repro.faults import (
    FAULT_PRESETS,
    FaultPlan,
    ServerFault,
    fault_preset,
    resolve_faults,
)
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

ALWAYS = FaultConfig(
    a_failure_rate=1.0,
    aaaa_failure_rate=1.0,
    server_timeout_rate=1.0,
    tunnel_breakage_rate=1.0,
    link_degradation_rate=1.0,
    link_degradation_factor=0.25,
)
NEVER = FaultConfig()


class TestDeterminism:
    def test_identical_plans_answer_identically(self):
        a = FaultPlan(fault_preset("mild"), master_seed=5)
        b = FaultPlan(fault_preset("mild"), master_seed=5)
        questions = [
            (name, fam, rnd, att)
            for name in ("alpha", "beta")
            for fam in (V4, V6)
            for rnd in range(4)
            for att in range(3)
        ]
        assert [a.dns_failure(*q) for q in questions] == [
            b.dns_failure(*q) for q in questions
        ]

    def test_query_order_does_not_matter(self):
        a = FaultPlan(fault_preset("heavy"), master_seed=5)
        b = FaultPlan(fault_preset("heavy"), master_seed=5)
        keys = [(sid, rnd) for sid in (1, 2, 3) for rnd in (0, 1)]
        forward = {k: a.server_fault(k[0], V6, k[1], "probe:0") for k in keys}
        backward = {
            k: b.server_fault(k[0], V6, k[1], "probe:0") for k in reversed(keys)
        }
        assert forward == backward

    def test_different_seeds_differ(self):
        a = FaultPlan(fault_preset("heavy"), master_seed=1)
        b = FaultPlan(fault_preset("heavy"), master_seed=2)
        answers_a = [a.dns_failure("x", V6, r, 0) for r in range(200)]
        answers_b = [b.dns_failure("x", V6, r, 0) for r in range(200)]
        assert answers_a != answers_b

    def test_attempts_are_independent_draws(self):
        plan = FaultPlan(fault_preset("heavy"), master_seed=3)
        answers = {
            plan.dns_failure("site", V6, 0, attempt) for attempt in range(200)
        }
        assert answers == {True, False}


class TestRates:
    def test_zero_rates_never_fire(self):
        plan = FaultPlan(NEVER, master_seed=1)
        assert not plan.dns_failure("x", V6, 0, 0)
        assert plan.server_fault(1, V6, 0, "probe:0") is None
        assert not plan.tunnel_broken(64496, 0)
        assert plan.link_degradation(64496, 0) == 1.0
        assert plan.path_degradation((1, 2, 3), 0) == 1.0

    def test_rate_one_always_fires(self):
        plan = FaultPlan(ALWAYS, master_seed=1)
        assert plan.dns_failure("x", V4, 0, 0)
        assert plan.dns_failure("x", V6, 0, 0)
        fault = plan.server_fault(1, V4, 0, "probe:0")
        assert fault == ServerFault("timeout", ALWAYS.timeout_seconds)
        assert plan.tunnel_broken(64496, 0)
        assert plan.link_degradation(64496, 0) == 0.25

    def test_path_degradation_compounds_per_as(self):
        plan = FaultPlan(ALWAYS, master_seed=1)
        assert plan.path_degradation((1, 2), 0) == pytest.approx(0.25**2)

    def test_v6_multiplier_scales_failure_rate(self):
        cfg = FaultConfig(server_timeout_rate=0.05, v6_fault_multiplier=3.0)
        plan = FaultPlan(cfg, master_seed=9)
        n = 2000
        v4_faults = sum(
            plan.server_fault(s, V4, 0, "probe:0") is not None for s in range(n)
        )
        v6_faults = sum(
            plan.server_fault(s, V6, 0, "probe:0") is not None for s in range(n)
        )
        assert v4_faults == pytest.approx(n * 0.05, rel=0.4)
        assert v6_faults == pytest.approx(n * 0.15, rel=0.4)

    def test_reset_rate_capped_by_timeout_rate(self):
        # The v6 multiplier pushes the timeout rate to the whole unit
        # interval; the reset band is squeezed out rather than overlapping.
        cfg = FaultConfig(
            server_timeout_rate=0.5,
            server_reset_rate=0.5,
            v6_fault_multiplier=2.0,
        )
        plan = FaultPlan(cfg, master_seed=1)
        for site in range(50):
            fault = plan.server_fault(site, V6, 0, "probe:0")
            assert fault is not None and fault.kind == "timeout"

    def test_tunnel_and_link_decisions_are_memoised(self):
        plan = FaultPlan(fault_preset("heavy"), master_seed=4)
        assert plan.tunnel_broken(64496, 1) is plan.tunnel_broken(64496, 1)
        assert plan.link_degradation(20, 1) == plan.link_degradation(20, 1)


class TestPresets:
    def test_none_preset_is_inactive(self):
        assert not FAULT_PRESETS["none"].active

    @pytest.mark.parametrize("name", ["mild", "heavy"])
    def test_named_presets_are_active_and_valid(self, name):
        preset = fault_preset(name)
        assert preset.active
        preset.validate()

    def test_unknown_preset_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown fault preset"):
            fault_preset("catastrophic")


class TestResolveFaults:
    def test_none_defaults_to_no_faults(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert resolve_faults(None) == FaultConfig()

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "mild")
        assert resolve_faults(None) == FAULT_PRESETS["mild"]

    def test_empty_environment_means_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "")
        assert resolve_faults(None) == FaultConfig()

    def test_explicit_name_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "heavy")
        assert resolve_faults("mild") == FAULT_PRESETS["mild"]

    def test_config_passes_through_validated(self):
        cfg = FaultConfig(aaaa_failure_rate=0.1)
        assert resolve_faults(cfg) is cfg
        with pytest.raises(ConfigError):
            resolve_faults(dataclasses.replace(cfg, aaaa_failure_rate=-0.1))

    def test_bad_environment_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "nope")
        with pytest.raises(ConfigError, match="unknown fault preset"):
            resolve_faults(None)


class TestPlanRejectsInvalidConfig:
    def test_constructor_validates(self):
        bad = dataclasses.replace(NEVER, tunnel_breakage_rate=1.5)
        with pytest.raises(ConfigError, match="tunnel_breakage_rate"):
            FaultPlan(bad, master_seed=1)


class TestNat64Outage:
    def test_zero_rate_never_fires(self):
        plan = FaultPlan(NEVER, master_seed=3)
        assert not any(
            plan.nat64_outage(asn, r) for asn in (5, 9) for r in range(20)
        )

    def test_rate_one_always_fires(self):
        plan = FaultPlan(
            FaultConfig(nat64_outage_rate=1.0), master_seed=3
        )
        assert all(
            plan.nat64_outage(asn, r) for asn in (5, 9) for r in range(20)
        )

    def test_decisions_are_deterministic_and_memoised(self):
        config = FaultConfig(nat64_outage_rate=0.5)
        a = FaultPlan(config, master_seed=17)
        b = FaultPlan(config, master_seed=17)
        coords = [(asn, r) for asn in (5, 9, 12) for r in range(10)]
        first = [a.nat64_outage(*c) for c in coords]
        assert first == [b.nat64_outage(*c) for c in coords]
        # repeated queries answer from the memo, identically
        assert first == [a.nat64_outage(*c) for c in coords]

    def test_presets_schedule_outages(self):
        assert fault_preset("none").nat64_outage_rate == 0.0
        assert fault_preset("mild").nat64_outage_rate > 0.0
        assert (
            fault_preset("heavy").nat64_outage_rate
            > fault_preset("mild").nat64_outage_rate
        )
