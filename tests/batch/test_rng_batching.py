"""Property tests: bulk draws are element-identical to sequential draws.

The batched execution plane's whole bit-identity argument rests on these
primitives: ``RngStreams.uniforms`` / ``uniform_block`` must consume a
shared stream exactly as sequential ``random()`` calls would,
``gauss_block`` must replicate CPython's Box-Muller partner caching, and
``derive_uniform_block`` must hash coordinates to the same uniforms the
scalar fault plan draws.
"""

from __future__ import annotations

import random
import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.sampling import gauss_block, uniform_block
from repro.rng import RngStreams, derive_uniform, derive_uniform_block

SEEDS = st.integers(min_value=0, max_value=2**64 - 1)
NAMES = st.text(
    alphabet=string.ascii_letters + string.digits + ":._-",
    min_size=1,
    max_size=24,
)
SIGMAS = st.floats(min_value=1e-3, max_value=8.0, allow_nan=False)
MUS = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


class TestUniformBlocks:
    @given(seed=SEEDS, name=NAMES, n=st.integers(0, 200))
    @settings(max_examples=60)
    def test_uniforms_match_sequential_stream_draws(self, seed, name, n):
        bulk = RngStreams(seed)
        scalar = RngStreams(seed)
        assert bulk.uniforms(name, n) == [
            scalar.stream(name).random() for _ in range(n)
        ]
        # The stream advanced identically: the next draws still agree.
        assert bulk.stream(name).random() == scalar.stream(name).random()

    @given(seed=SEEDS, n=st.integers(0, 100))
    @settings(max_examples=40)
    def test_uniform_block_matches_sequential(self, seed, n):
        bulk = random.Random(seed)
        scalar = random.Random(seed)
        assert uniform_block(bulk, n) == [scalar.random() for _ in range(n)]
        assert bulk.random() == scalar.random()

    @given(seed=SEEDS, name=NAMES, n=st.integers(1, 50), child=NAMES)
    @settings(max_examples=40)
    def test_spawn_children_unaffected_by_parent_bulk_draws(
        self, seed, name, n, child
    ):
        drained = RngStreams(seed)
        pristine = RngStreams(seed)
        drained.uniforms(name, n)  # bulk-consume on one parent only
        assert (
            drained.spawn(child).master_seed
            == pristine.spawn(child).master_seed
        )
        assert drained.spawn(child).uniforms(name, 8) == pristine.spawn(
            child
        ).uniforms(name, 8)

    @given(seed=SEEDS, names=st.lists(NAMES, max_size=40))
    @settings(max_examples=60)
    def test_derive_uniform_block_matches_scalar(self, seed, names):
        assert derive_uniform_block(seed, names) == [
            derive_uniform(seed, name) for name in names
        ]


class TestGaussBlocks:
    @given(
        seed=SEEDS,
        n=st.integers(0, 65),
        warmup=st.integers(0, 3),
        mu=MUS,
        sigma=SIGMAS,
    )
    @settings(max_examples=80)
    def test_gauss_block_matches_sequential(self, seed, n, warmup, mu, sigma):
        bulk = random.Random(seed)
        scalar = random.Random(seed)
        # A few scalar draws first, so blocks start both with and without
        # a cached Box-Muller partner.
        for _ in range(warmup):
            assert bulk.gauss(mu, sigma) == scalar.gauss(mu, sigma)
        assert gauss_block(bulk, n, mu, sigma) == [
            scalar.gauss(mu, sigma) for _ in range(n)
        ]
        # Partner cache and underlying stream both carry over exactly.
        assert bulk.gauss(mu, sigma) == scalar.gauss(mu, sigma)
        assert bulk.random() == scalar.random()

    @given(seed=SEEDS, blocks=st.lists(st.integers(0, 9), max_size=6))
    @settings(max_examples=40)
    def test_chained_blocks_match_one_sequential_run(self, seed, blocks):
        bulk = random.Random(seed)
        scalar = random.Random(seed)
        out = []
        for size in blocks:
            out.extend(gauss_block(bulk, size, 0.0, 1.5))
        assert out == [scalar.gauss(0.0, 1.5) for _ in range(sum(blocks))]
