"""Transition-enabled campaigns are backend- and plane-independent.

The NAT64/DNS64 axis threads new rows (the transitions table), new DNS
answers (synthesized AAAAs), and new forwarding paths (the translated
leg) through both execution planes and both backends.  This module pins
the combinations three ways:

* a 10-seed golden fixture generated from the scalar reference path
  (``REPRO_REGEN_GOLDEN=1`` regenerates with batching forced off) that
  the batched plane must keep matching byte-for-byte,
* a live batched-vs-scalar comparison on repository content digests, and
* serial-vs-process byte parity of a full transition-enabled export
  tree (every CSV including ``transitions.csv``, plus the manifest).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib

import pytest

from repro.batch import batching_enabled
from repro.config import ExecutionConfig, small_config
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.monitor.export import export_repository

FIXTURE_DIR = (
    pathlib.Path(__file__).parent.parent / "fixtures" / "golden_transitions_batch"
)
FIXTURE = FIXTURE_DIR / "transition_sweep.json"

SWEEP_SEEDS = tuple(range(100, 110))
SWEEP_ROUNDS = 3


def _transition_config(seed: int):
    cfg = small_config(seed=seed, scale=0.4)
    return dataclasses.replace(
        cfg, dns64=dataclasses.replace(cfg.dns64, enabled=True)
    )


def _canonical_summary(result) -> dict:
    """Transitions tables row-for-row plus the repository digest.

    Serialization order is part of the contract: any reordering of
    transition rows — not just a changed classification — breaks it.
    """
    repo = result.repository
    transitions = {
        name: [
            [obs.site_id, obs.round_idx, obs.kind]
            for obs in repo.database(name).transitions
        ]
        for name in repo.vantage_names
    }
    return {
        "transitions": transitions,
        "repository_digest": repo.content_digest(),
    }


def _digest(summary: dict) -> str:
    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_sweep() -> dict[str, str]:
    return {
        str(seed): _digest(
            _canonical_summary(
                run_campaign(
                    build_world(_transition_config(seed)),
                    n_rounds=SWEEP_ROUNDS,
                )
            )
        )
        for seed in SWEEP_SEEDS
    }


class TestGoldenTransitionSweep:
    def test_batched_sweep_matches_scalar_golden(self, monkeypatch):
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            # Regenerate from the scalar reference path so the fixture
            # always encodes pre-batching behaviour.
            os.environ["REPRO_BATCH"] = "0"
            try:
                FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
                FIXTURE.write_text(
                    json.dumps(_run_sweep(), indent=2, sort_keys=True) + "\n"
                )
            finally:
                os.environ.pop("REPRO_BATCH", None)
            pytest.skip("golden fixture regenerated")
        assert FIXTURE.exists(), (
            "missing golden fixture; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert batching_enabled(), "sweep must exercise the batched path"
        assert _run_sweep() == json.loads(FIXTURE.read_text())


class TestLiveScalarParity:
    """Direct batched-vs-scalar comparison, fixture-free, for a subset."""

    @pytest.mark.parametrize("seed", [100, 104, 109])
    def test_transition_tables_identical(self, seed, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        batched = run_campaign(
            build_world(_transition_config(seed)), n_rounds=SWEEP_ROUNDS
        )
        monkeypatch.setenv("REPRO_BATCH", "0")
        scalar = run_campaign(
            build_world(_transition_config(seed)), n_rounds=SWEEP_ROUNDS
        )
        assert _canonical_summary(batched) == _canonical_summary(scalar)

    def test_sweep_actually_translates(self):
        result = run_campaign(
            build_world(_transition_config(100)), n_rounds=SWEEP_ROUNDS
        )
        repo = result.repository
        kinds = {
            obs.kind
            for name in repo.vantage_names
            for obs in repo.database(name).transitions
        }
        assert "translated" in kinds


class TestBackendExportParity:
    """Serial and process backends export byte-identical trees."""

    def _export_tree(self, backend: str, directory: pathlib.Path) -> dict:
        execution = (
            ExecutionConfig(backend="process", jobs=2)
            if backend == "process"
            else ExecutionConfig(backend="serial")
        )
        result = run_campaign(
            build_world(_transition_config(101)),
            n_rounds=SWEEP_ROUNDS,
            execution=execution,
        )
        export_repository(result.repository, directory)
        return {
            path.relative_to(directory).as_posix(): path.read_bytes()
            for path in sorted(directory.rglob("*"))
            if path.is_file()
        }

    def test_export_trees_byte_identical(self, tmp_path):
        serial = self._export_tree("serial", tmp_path / "serial")
        process = self._export_tree("process", tmp_path / "process")
        assert sorted(serial) == sorted(process)
        for name, blob in serial.items():
            assert process[name] == blob, f"{name} differs across backends"
        # the transition axis actually reached the export layer
        assert any(name.endswith("transitions.csv") for name in serial)
