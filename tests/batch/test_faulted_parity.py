"""Batched faulted rounds reproduce the scalar path byte-for-byte.

The fault-free fast path is covered by the pinned repository digests; the
faulted walk is the subtler half of the refactor — fault *rows* are
order-sensitive (DNS failures interleave with download retries within a
site) and the batched path prefetches server-fault decisions in blocks.
This module pins it two ways:

* a 10-seed golden fixture, generated from the pre-refactor scalar path
  (``REPRO_REGEN_GOLDEN=1`` regenerates with batching forced off), that
  the batched path must keep matching byte-for-byte, and
* a live scalar-vs-batched comparison plus unit parity checks for the
  batched fault-plan lookups.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib

import pytest

from repro.batch import batching_enabled
from repro.config import small_config
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.faults import FaultPlan, fault_preset
from repro.net.addresses import AddressFamily

FIXTURE_DIR = pathlib.Path(__file__).parent.parent / "fixtures" / "golden_faults_batch"
FIXTURE = FIXTURE_DIR / "faulted_sweep.json"

SWEEP_SEEDS = tuple(range(100, 110))
SWEEP_ROUNDS = 3


def _faulted_config(seed: int):
    return dataclasses.replace(
        small_config(seed=seed, scale=0.4), faults=fault_preset("mild")
    )


def _canonical_summary(result) -> dict:
    """Everything satellite 4 pins, in a stable JSON-ready shape.

    The faults tables are serialized row-for-row in observation order, so
    any reordering — not just a changed decision — breaks the digest.
    """
    repo = result.repository
    faults = {
        name: [
            [obs.site_id, obs.round_idx, obs.family.value, obs.kind]
            for obs in repo.database(name).faults
        ]
        for name in repo.vantage_names
    }
    n_failures = {
        name: [report.n_failures for report in reports]
        for name, reports in sorted(result.reports.items())
    }
    return {"faults": faults, "n_failures": n_failures}


def _digest(summary: dict) -> str:
    blob = json.dumps(summary, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _run_sweep() -> dict[str, str]:
    return {
        str(seed): _digest(
            _canonical_summary(
                run_campaign(
                    build_world(_faulted_config(seed)), n_rounds=SWEEP_ROUNDS
                )
            )
        )
        for seed in SWEEP_SEEDS
    }


class TestGoldenFaultedSweep:
    def test_batched_sweep_matches_scalar_golden(self, monkeypatch):
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            # Regenerate from the scalar reference path so the fixture
            # always encodes pre-refactor behaviour.
            os.environ["REPRO_BATCH"] = "0"
            try:
                FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
                FIXTURE.write_text(
                    json.dumps(_run_sweep(), indent=2, sort_keys=True) + "\n"
                )
            finally:
                os.environ.pop("REPRO_BATCH", None)
            pytest.skip("golden fixture regenerated")
        assert FIXTURE.exists(), (
            "missing golden fixture; regenerate with REPRO_REGEN_GOLDEN=1"
        )
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert batching_enabled(), "sweep must exercise the batched path"
        assert _run_sweep() == json.loads(FIXTURE.read_text())


class TestLiveScalarParity:
    """Direct batched-vs-scalar comparison, fixture-free, for a subset."""

    @pytest.mark.parametrize("seed", [100, 104, 109])
    def test_faulted_tables_identical(self, seed, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH", "1")
        batched = run_campaign(
            build_world(_faulted_config(seed)), n_rounds=SWEEP_ROUNDS
        )
        monkeypatch.setenv("REPRO_BATCH", "0")
        scalar = run_campaign(
            build_world(_faulted_config(seed)), n_rounds=SWEEP_ROUNDS
        )
        assert _canonical_summary(batched) == _canonical_summary(scalar)
        assert (
            batched.repository.content_digest()
            == scalar.repository.content_digest()
        )

    def test_sweep_actually_faults(self):
        result = run_campaign(
            build_world(_faulted_config(100)), n_rounds=SWEEP_ROUNDS
        )
        repo = result.repository
        assert (
            sum(len(repo.database(n).faults) for n in repo.vantage_names) > 0
        )


class TestFaultPlanBatches:
    """The batched per-coordinate lookups match scalar loops exactly."""

    def test_dns_failure_batch_matches_scalar(self):
        plan = FaultPlan(fault_preset("mild"), master_seed=5)
        attempts = range(6)
        for family in AddressFamily:
            for round_idx in range(3):
                assert plan.dns_failure_batch(
                    "site-3.example", family, round_idx, attempts
                ) == [
                    plan.dns_failure("site-3.example", family, round_idx, a)
                    for a in attempts
                ]

    def test_server_fault_batch_matches_scalar(self):
        plan = FaultPlan(fault_preset("mild"), master_seed=5)
        keys = [f"probe:{i}" for i in range(4)] + [
            f"loop:{i}" for i in range(12)
        ]
        for family in AddressFamily:
            for multiplier in (1.0, 2.5):
                batch = plan.server_fault_batch(
                    17, family, 1, keys, rate_multiplier=multiplier
                )
                assert batch == [
                    plan.server_fault(
                        17, family, 1, key, rate_multiplier=multiplier
                    )
                    for key in keys
                ]
