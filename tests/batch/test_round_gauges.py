"""Batched rounds report live phase-occupancy, not a frozen legacy value.

Under batching the old per-site schedule gauge would never move past the
value the last scalar round left behind; the batched execute phase must
instead publish per-phase batch widths and keep the slot-occupancy
high-water mark alive.
"""

from __future__ import annotations

from repro.config import small_config
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.obs import metrics

CFG = small_config(seed=7, scale=0.5)


def test_batched_round_sets_phase_width_gauges(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "1")
    metrics.get_registry().reset()
    run_campaign(build_world(CFG), n_rounds=2)
    dns = metrics.gauge("monitor.batch.dns_width")
    identity = metrics.gauge("monitor.batch.identity_width")
    download = metrics.gauge("monitor.batch.download_width")
    occupancy = metrics.gauge("monitor.slot_occupancy")
    # Every dispatched site passes the DNS phase; only dual-stack sites
    # reach identity; only identical pairs reach the download loops.
    assert dns.value >= identity.value >= download.value >= 1
    assert occupancy.max_value >= 1


def test_scalar_fallback_leaves_batch_gauges_untouched(monkeypatch):
    monkeypatch.setenv("REPRO_BATCH", "0")
    metrics.get_registry().reset()
    run_campaign(build_world(CFG), n_rounds=1)
    assert metrics.gauge("monitor.batch.dns_width").value == 0.0
    assert metrics.gauge("monitor.slot_occupancy").max_value >= 1
