"""Tests for the batched round execution plane (repro.batch)."""
