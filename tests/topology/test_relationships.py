"""Link and relationship invariants."""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.topology.relationships import Link, Relationship


class TestLink:
    def test_peering_is_canonicalised(self):
        link = Link.peering(9, 3)
        assert (link.a, link.b) == (3, 9)
        assert link.relationship is Relationship.PEER

    def test_customer_provider_direction(self):
        link = Link.customer_provider(customer=9, provider=3)
        assert link.a == 9 and link.b == 3

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            Link.peering(4, 4)

    def test_non_canonical_peering_rejected(self):
        with pytest.raises(TopologyError):
            Link(5, 3, Relationship.PEER)

    def test_peer_of(self):
        link = Link.peering(3, 9)
        assert link.peer_of(3) == 9
        assert link.peer_of(9) == 3
        with pytest.raises(TopologyError):
            link.peer_of(7)

    def test_involves(self):
        link = Link.customer_provider(1, 2)
        assert link.involves(1) and link.involves(2)
        assert not link.involves(3)

    def test_endpoints(self):
        assert Link.customer_provider(1, 2).endpoints == (1, 2)
