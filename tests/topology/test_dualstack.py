"""IPv6 overlay invariants: enablement, parity, tunnels, addressing."""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.config import DualStackConfig, TopologyConfig
from repro.net.addresses import AddressFamily
from repro.net.tunnels import TunnelKind
from repro.topology.asys import ASType
from repro.topology.dualstack import (
    DualStackTopology,
    deploy_ipv6,
    valley_free_distances,
)
from repro.topology.generator import generate_topology
from repro.topology.relationships import Relationship


@pytest.fixture(scope="module")
def world():
    topo_config = TopologyConfig(
        n_tier1=4, n_transit=20, n_stub=60, n_content=30, n_cdn=2, n_regions=3
    )
    topo = generate_topology(topo_config, random.Random(13))
    ds = deploy_ipv6(topo, DualStackConfig(), random.Random(14))
    return topo, ds


class TestEnablement:
    def test_v6_core_exists(self, world):
        topo, ds = world
        tier1 = {a.asn for a in topo.ases_of_type(ASType.TIER1)}
        assert tier1 & set(ds.v6_enabled)

    def test_cdns_are_v4_only_by_default(self, world):
        topo, ds = world
        for cdn in topo.ases_of_type(ASType.CDN):
            assert cdn.asn not in ds.v6_enabled

    def test_every_enabled_as_has_uplink_or_is_tier1(self, world):
        topo, ds = world
        for asn in ds.v6_enabled:
            if topo.ases[asn].type is ASType.TIER1:
                continue
            assert ds.providers_of(asn, AddressFamily.IPV6), (
                f"AS{asn} is v6-enabled but has no v6 uplink"
            )


class TestLinks:
    def test_v6_links_subset_of_v4_links_plus_tunnels(self, world):
        topo, ds = world
        v4_pairs = {(min(l.a, l.b), max(l.a, l.b)) for l in topo.links}
        for link in ds.v6_links:
            pair = (min(link.a, link.b), max(link.a, link.b))
            assert pair in v4_pairs

    def test_v6_links_connect_enabled_ases(self, world):
        _, ds = world
        for link in ds.v6_links:
            assert link.a in ds.v6_enabled and link.b in ds.v6_enabled

    def test_v6_sparser_than_v4(self, world):
        topo, ds = world
        assert len(ds.v6_links) < len(topo.links)

    def test_v4_adjacency_passthrough(self, world):
        topo, ds = world
        some_asn = next(iter(topo.ases))
        assert ds.providers_of(some_asn, AddressFamily.IPV4) == topo.providers_of(
            some_asn
        )


class TestTunnels:
    def test_tunnel_clients_are_enabled(self, world):
        _, ds = world
        for asn, tunnel in ds.tunnels.items():
            assert tunnel.client_asn == asn
            assert asn in ds.v6_enabled

    def test_tunnel_relays_are_core_ases(self, world):
        topo, ds = world
        for tunnel in ds.tunnels.values():
            relay_type = topo.ases[tunnel.relay_asn].type
            assert relay_type in (ASType.TIER1, ASType.TRANSIT)

    def test_tunnel_hidden_hops_match_valley_free_distance(self, world):
        topo, ds = world
        for tunnel in ds.tunnels.values():
            distances = valley_free_distances(topo, tunnel.client_asn)
            assert tunnel.hidden_hops == max(1, distances[tunnel.relay_asn])

    def test_tunnel_on_edge(self, world):
        _, ds = world
        for tunnel in ds.tunnels.values():
            found = ds.tunnel_on_edge(tunnel.client_asn, tunnel.relay_asn)
            assert found is tunnel
            found = ds.tunnel_on_edge(tunnel.relay_asn, tunnel.client_asn)
            assert found is tunnel

    def test_no_tunnels_when_disabled(self, world):
        topo, _ = world
        ds = deploy_ipv6(
            topo, DualStackConfig(tunnel_prob=0.0), random.Random(14)
        )
        assert not ds.tunnels


class TestAddressing:
    def test_enabled_ases_have_v6_prefix(self, world):
        _, ds = world
        for asn in ds.v6_enabled:
            assert ds.allocator.has_prefix(asn, AddressFamily.IPV6)

    def test_all_ases_have_v4_prefix(self, world):
        topo, ds = world
        for asn in topo.ases:
            assert ds.allocator.has_prefix(asn, AddressFamily.IPV4)

    def test_6to4_clients_have_6to4_prefix(self, world):
        from repro.net.tunnels import is_6to4

        _, ds = world
        for asn, tunnel in ds.tunnels.items():
            prefix = ds.allocator.prefix_of(asn, AddressFamily.IPV6)
            if tunnel.kind is TunnelKind.SIX_TO_FOUR:
                assert is_6to4(prefix)
            else:
                assert not is_6to4(prefix)


class TestParityKnob:
    def test_zero_peering_parity_drops_non_tier1_peering(self, world):
        topo, _ = world
        ds = deploy_ipv6(
            topo, DualStackConfig(peering_parity=0.0), random.Random(3)
        )
        tier1 = {a.asn for a in topo.ases_of_type(ASType.TIER1)}
        for link in ds.v6_links:
            if link.relationship is Relationship.PEER:
                assert link.a in tier1 and link.b in tier1

    def test_full_parity_mirrors_all_enabled_links(self, world):
        topo, _ = world
        config = DualStackConfig(c2p_parity=1.0, peering_parity=1.0)
        ds = deploy_ipv6(topo, config, random.Random(3))
        enabled = set(ds.v6_enabled)
        mirrored = {(min(l.a, l.b), max(l.a, l.b)) for l in ds.v6_links}
        for link in topo.links:
            if link.a in enabled and link.b in enabled:
                assert (min(link.a, link.b), max(link.a, link.b)) in mirrored

    def test_summary_keys(self, world):
        _, ds = world
        summary = ds.summary()
        assert set(summary) == {"ases", "v6_enabled", "v4_links", "v6_links", "tunnels"}
        assert summary["v6_enabled"] <= summary["ases"]


class TestValleyFreeDistances:
    def test_distance_to_self_is_zero(self, world):
        topo, _ = world
        some = next(iter(topo.ases))
        assert valley_free_distances(topo, some)[some] == 0

    def test_distances_at_least_undirected(self, world):
        """Valley-free paths can never beat unconstrained shortest paths."""
        topo, _ = world
        dest = next(iter(topo.ases))
        undirected = topo.undirected_hop_distance(dest)
        valley = valley_free_distances(topo, dest)
        for asn, dist in valley.items():
            assert dist >= undirected[asn]

    def test_neighbors_at_distance_one(self, world):
        topo, _ = world
        dest = next(a.asn for a in topo.ases_of_type(ASType.STUB))
        valley = valley_free_distances(topo, dest)
        for provider in topo.providers_of(dest):
            assert valley[provider] == 1


class TestNat64GatewaySelection:
    def test_gateways_come_from_the_v6_untunneled_core(self, world):
        from repro.topology.dualstack import select_nat64_gateways

        topo, ds = world
        picks = select_nat64_gateways(ds, 3, random.Random(5))
        assert picks == tuple(sorted(picks))
        for asn in picks:
            assert asn in ds.v6_enabled
            assert topo.ases[asn].type in (ASType.TIER1, ASType.TRANSIT)
            assert ds.tunnel_of(asn) is None

    def test_selection_is_seed_deterministic(self, world):
        from repro.topology.dualstack import select_nat64_gateways

        _, ds = world
        assert select_nat64_gateways(ds, 2, random.Random(5)) == (
            select_nat64_gateways(ds, 2, random.Random(5))
        )

    def test_count_clamped_to_pool(self, world):
        from repro.topology.dualstack import select_nat64_gateways

        _, ds = world
        picks = select_nat64_gateways(ds, 10_000, random.Random(5))
        assert len(picks) == len(set(picks))
        assert len(picks) <= len(ds.v6_enabled)
