"""Topology generation invariants."""

from __future__ import annotations

import random

import pytest

from repro.config import TopologyConfig
from repro.errors import TopologyError
from repro.topology.asys import ASType, AutonomousSystem
from repro.topology.generator import Topology, generate_topology
from repro.topology.relationships import Link, Relationship


@pytest.fixture(scope="module")
def topo() -> Topology:
    config = TopologyConfig(
        n_tier1=4, n_transit=20, n_stub=60, n_content=30, n_cdn=2, n_regions=3
    )
    return generate_topology(config, random.Random(99))


class TestTopologyContainer:
    def test_duplicate_as_rejected(self):
        t = Topology()
        t.add_as(AutonomousSystem(asn=1, type=ASType.STUB, region=0))
        with pytest.raises(TopologyError):
            t.add_as(AutonomousSystem(asn=1, type=ASType.STUB, region=0))

    def test_link_requires_known_ases(self):
        t = Topology()
        t.add_as(AutonomousSystem(asn=1, type=ASType.STUB, region=0))
        with pytest.raises(TopologyError):
            t.add_link(Link.peering(1, 2))

    def test_duplicate_link_rejected(self):
        t = Topology()
        for asn in (1, 2):
            t.add_as(AutonomousSystem(asn=asn, type=ASType.TRANSIT, region=0))
        t.add_link(Link.peering(1, 2))
        with pytest.raises(TopologyError):
            t.add_link(Link.customer_provider(1, 2))

    def test_adjacency_views(self):
        t = Topology()
        for asn in (1, 2, 3):
            t.add_as(AutonomousSystem(asn=asn, type=ASType.TRANSIT, region=0))
        t.add_link(Link.customer_provider(1, 2))
        t.add_link(Link.peering(2, 3))
        assert t.providers_of(1) == {2}
        assert t.customers_of(2) == {1}
        assert t.peers_of(2) == {3}
        assert t.neighbors_of(2) == {1, 3}


class TestGeneratedTopology:
    def test_is_connected(self, topo):
        assert topo.is_connected()

    def test_every_non_tier1_has_provider(self, topo):
        for asn, asys in topo.ases.items():
            if asys.type is ASType.TIER1:
                assert not topo.providers_of(asn)
            else:
                assert topo.providers_of(asn), f"AS{asn} has no provider"

    def test_tier1_clique(self, topo):
        tier1 = [a.asn for a in topo.ases_of_type(ASType.TIER1)]
        for i, x in enumerate(tier1):
            for y in tier1[i + 1:]:
                assert y in topo.peers_of(x)

    def test_edge_ases_sell_no_transit(self, topo):
        for asys in topo.ases.values():
            if asys.type in (ASType.STUB, ASType.CONTENT):
                assert not topo.customers_of(asys.asn)

    def test_counts_match_config(self, topo):
        assert len(topo.ases_of_type(ASType.TIER1)) == 4
        assert len(topo.ases_of_type(ASType.TRANSIT)) == 20
        assert len(topo.ases_of_type(ASType.STUB)) == 60
        assert len(topo.ases_of_type(ASType.CONTENT)) == 30
        assert len(topo.ases_of_type(ASType.CDN)) == 2

    def test_no_provider_cycles(self, topo):
        """The provider relation must be acyclic (hierarchy property)."""
        state: dict[int, int] = {}

        def visit(asn: int) -> None:
            state[asn] = 1
            for p in topo.providers_of(asn):
                mark = state.get(p, 0)
                assert mark != 1, f"provider cycle through AS{asn}->AS{p}"
                if mark == 0:
                    visit(p)
            state[asn] = 2

        for asn in topo.ases:
            if state.get(asn, 0) == 0:
                visit(asn)

    def test_provider_depth_reaches_tier1(self, topo):
        for asn in topo.ases:
            assert topo.provider_depth(asn) <= 5

    def test_deterministic_given_seed(self):
        config = TopologyConfig(n_tier1=3, n_transit=8, n_stub=20, n_content=10, n_cdn=1)
        a = generate_topology(config, random.Random(5))
        b = generate_topology(config, random.Random(5))
        assert [link.endpoints for link in a.links] == [link.endpoints for link in b.links]

    def test_undirected_hop_distance(self, topo):
        source = next(iter(topo.ases))
        dist = topo.undirected_hop_distance(source)
        assert dist[source] == 0
        assert len(dist) == len(topo.ases)

    def test_to_networkx(self, topo):
        graph = topo.to_networkx()
        assert graph.number_of_nodes() == len(topo.ases)
        assert graph.number_of_edges() == len(topo.links)
