"""AutonomousSystem and ASType."""

from __future__ import annotations

import pytest

from repro.net.addresses import AddressFamily
from repro.topology.asys import ASType, AutonomousSystem


class TestASType:
    def test_edge_types(self):
        assert ASType.STUB.is_edge
        assert ASType.CONTENT.is_edge
        assert ASType.CDN.is_edge
        assert not ASType.TIER1.is_edge
        assert not ASType.TRANSIT.is_edge


class TestAutonomousSystem:
    def test_quality_per_family(self):
        asys = AutonomousSystem(
            asn=1, type=ASType.TRANSIT, region=0, v4_quality=1.1, v6_quality=0.9
        )
        assert asys.quality(AddressFamily.IPV4) == 1.1
        assert asys.quality(AddressFamily.IPV6) == 0.9

    def test_nonpositive_asn_rejected(self):
        with pytest.raises(ValueError):
            AutonomousSystem(asn=0, type=ASType.STUB, region=0)

    def test_nonpositive_quality_rejected(self):
        with pytest.raises(ValueError):
            AutonomousSystem(asn=1, type=ASType.STUB, region=0, v4_quality=0)

    def test_hash_by_asn(self):
        a = AutonomousSystem(asn=5, type=ASType.STUB, region=0)
        b = AutonomousSystem(asn=5, type=ASType.CONTENT, region=1)
        assert hash(a) == hash(b)
