"""Configuration validation and scaling."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.config import (
    AdoptionConfig,
    AnalysisConfig,
    CampaignConfig,
    DualStackConfig,
    ExecutionConfig,
    FaultConfig,
    MonitorConfig,
    PerformanceConfig,
    ScenarioConfig,
    SiteConfig,
    TopologyConfig,
    default_config,
    small_config,
)
from repro.errors import ConfigError


class TestDefaults:
    def test_default_config_validates(self):
        default_config().validate()

    def test_small_config_validates(self):
        small_config().validate()

    def test_configs_are_hashable(self):
        assert hash(default_config()) == hash(default_config())
        assert default_config() == default_config()

    def test_small_config_events_inside_campaign(self):
        cfg = small_config()
        assert cfg.adoption.world_ipv6_day_round < cfg.campaign.n_rounds


class TestScaling:
    def test_scaled_shrinks_counts(self):
        cfg = default_config().scaled(0.1)
        base = default_config()
        assert cfg.topology.n_stub < base.topology.n_stub
        assert cfg.sites.n_sites < base.sites.n_sites
        cfg.validate()

    def test_scaled_keeps_minimums(self):
        cfg = default_config().scaled(0.0001)
        assert cfg.topology.n_tier1 >= 2
        assert cfg.sites.n_sites >= 50
        cfg.validate()

    def test_scale_up_does_not_inflate_tier1(self):
        cfg = default_config().scaled(3.0)
        assert cfg.topology.n_tier1 == default_config().topology.n_tier1
        assert cfg.topology.n_stub > default_config().topology.n_stub

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ConfigError):
            default_config().scaled(0)


class TestValidation:
    def test_topology_needs_tier1s(self):
        with pytest.raises(ConfigError):
            TopologyConfig(n_tier1=1).validate()

    def test_topology_probability_bounds(self):
        with pytest.raises(ConfigError):
            TopologyConfig(transit_peering_prob=1.5).validate()

    def test_n_ases_sums_types(self):
        cfg = TopologyConfig()
        assert cfg.n_ases == (
            cfg.n_tier1 + cfg.n_transit + cfg.n_stub + cfg.n_content + cfg.n_cdn
        )

    def test_dualstack_probability_bounds(self):
        with pytest.raises(ConfigError):
            DualStackConfig(peering_parity=-0.1).validate()
        with pytest.raises(ConfigError):
            DualStackConfig(tunnel_quality=0.0).validate()

    def test_site_behaviour_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            SiteConfig(stationary_fraction=0.5, step_fraction=0.1, trend_fraction=0.1).validate()

    def test_adoption_event_ordering(self):
        with pytest.raises(ConfigError):
            AdoptionConfig(iana_depletion_round=30, world_ipv6_day_round=20).validate()

    def test_adoption_base_bounds(self):
        with pytest.raises(ConfigError):
            AdoptionConfig(base_adoption=0.0).validate()

    def test_performance_bounds(self):
        with pytest.raises(ConfigError):
            PerformanceConfig(server_base_speed_mean=0).validate()
        with pytest.raises(ConfigError):
            PerformanceConfig(hop_slowdown=-1).validate()
        with pytest.raises(ConfigError):
            PerformanceConfig(hop_saturation=0).validate()

    def test_monitor_bounds(self):
        with pytest.raises(ConfigError):
            MonitorConfig(max_concurrent=0).validate()
        with pytest.raises(ConfigError):
            MonitorConfig(min_downloads=1).validate()
        with pytest.raises(ConfigError):
            MonitorConfig(max_downloads=3, min_downloads=5).validate()
        with pytest.raises(ConfigError):
            MonitorConfig(identity_threshold=0.0).validate()

    def test_analysis_bounds(self):
        with pytest.raises(ConfigError):
            AnalysisConfig(median_filter_length=10).validate()
        with pytest.raises(ConfigError):
            AnalysisConfig(comparable_threshold=0.0).validate()

    def test_campaign_bounds(self):
        with pytest.raises(ConfigError):
            CampaignConfig(n_rounds=0).validate()
        with pytest.raises(ConfigError):
            CampaignConfig(max_sites_per_round=-1).validate()

    def test_scenario_validates_subconfigs(self):
        cfg = replace(default_config(), monitor=MonitorConfig(max_concurrent=0))
        with pytest.raises(ConfigError):
            cfg.validate()


class TestRetryValidation:
    """Bad retry/backoff knobs fail fast, naming the offending field."""

    def test_negative_max_retries_rejected(self):
        with pytest.raises(ConfigError, match="max_retries"):
            MonitorConfig(max_retries=-1).validate()

    def test_backoff_below_one_rejected(self):
        with pytest.raises(ConfigError, match="retry_backoff"):
            MonitorConfig(retry_backoff=0.5).validate()

    def test_negative_initial_delay_rejected(self):
        with pytest.raises(ConfigError, match="retry_initial_seconds"):
            MonitorConfig(retry_initial_seconds=-1.0).validate()

    def test_zero_retries_is_allowed(self):
        MonitorConfig(max_retries=0).validate()


class TestExecutionValidation:
    def test_zero_jobs_rejected(self):
        with pytest.raises(ConfigError, match="jobs"):
            ExecutionConfig(jobs=0).validate()

    def test_negative_shard_retries_rejected(self):
        with pytest.raises(ConfigError, match="shard_retries"):
            ExecutionConfig(shard_retries=-1).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            ExecutionConfig(backend="threads").validate()


class TestFaultValidation:
    def test_defaults_validate_and_are_inactive(self):
        cfg = FaultConfig()
        cfg.validate()
        assert not cfg.active

    def test_any_positive_rate_makes_it_active(self):
        assert FaultConfig(aaaa_failure_rate=0.1).active
        assert FaultConfig(tunnel_breakage_rate=0.1).active
        assert FaultConfig(link_degradation_rate=0.1).active

    @pytest.mark.parametrize(
        "field_name,value",
        [
            ("a_failure_rate", -0.1),
            ("aaaa_failure_rate", 1.5),
            ("server_timeout_rate", -1.0),
            ("server_reset_rate", 2.0),
            ("tunnel_breakage_rate", -0.5),
            ("link_degradation_rate", 1.1),
        ],
    )
    def test_rates_must_be_probabilities(self, field_name, value):
        with pytest.raises(ConfigError, match=field_name):
            replace(FaultConfig(), **{field_name: value}).validate()

    def test_multipliers_must_be_at_least_one(self):
        with pytest.raises(ConfigError, match="v6_fault_multiplier"):
            FaultConfig(v6_fault_multiplier=0.5).validate()
        with pytest.raises(ConfigError, match="impaired_fault_multiplier"):
            FaultConfig(impaired_fault_multiplier=0.0).validate()

    def test_degradation_factor_bounds(self):
        with pytest.raises(ConfigError, match="link_degradation_factor"):
            FaultConfig(link_degradation_factor=0.0).validate()
        with pytest.raises(ConfigError, match="link_degradation_factor"):
            FaultConfig(link_degradation_factor=1.5).validate()

    def test_scenario_validates_fault_subconfig(self):
        cfg = replace(
            default_config(), faults=FaultConfig(aaaa_failure_rate=-1.0)
        )
        with pytest.raises(ConfigError):
            cfg.validate()


class TestDns64Validation:
    def test_default_is_off(self):
        from repro.config import Dns64Config

        cfg = Dns64Config()
        assert not cfg.enabled
        assert not cfg.applies_to("Penn")
        cfg.validate()

    def test_enabled_applies_to_all_when_unscoped(self):
        from repro.config import Dns64Config

        cfg = Dns64Config(enabled=True)
        assert cfg.applies_to("Penn") and cfg.applies_to("Tsinghua")

    def test_vantage_scoping(self):
        from repro.config import Dns64Config

        cfg = Dns64Config(enabled=True, vantage_names=("Penn",))
        assert cfg.applies_to("Penn")
        assert not cfg.applies_to("Tsinghua")

    def test_gateway_count_validated(self):
        from repro.config import Dns64Config

        with pytest.raises(ConfigError, match="n_gateways"):
            Dns64Config(n_gateways=0).validate()

    def test_translation_quality_bounds(self):
        from repro.config import Dns64Config

        with pytest.raises(ConfigError, match="translation_quality"):
            Dns64Config(translation_quality=0.0).validate()
        with pytest.raises(ConfigError, match="translation_quality"):
            Dns64Config(translation_quality=1.2).validate()

    def test_scenario_validates_dns64_subconfig(self):
        from repro.config import Dns64Config

        cfg = replace(default_config(), dns64=Dns64Config(n_gateways=-1))
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_nat64_outage_rate_validated(self):
        with pytest.raises(ConfigError, match="nat64_outage_rate"):
            FaultConfig(nat64_outage_rate=-0.1).validate()
        with pytest.raises(ConfigError, match="nat64_outage_rate"):
            FaultConfig(nat64_outage_rate=1.5).validate()
