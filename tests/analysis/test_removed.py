"""Removed-site bias audit (Table 5)."""

from __future__ import annotations

from repro.analysis.classify import SiteCategory
from repro.analysis.confidence import RemovalReason, SiteScreening
from repro.analysis.removed import audit_removed_sites

from .conftest import add_dual_series


def removed(site_id, reason=RemovalReason.STEP_DOWN):
    return SiteScreening(site_id=site_id, kept=False, reason=reason)


class TestAuditRemovedSites:
    def test_counts_by_category_and_performance(self, db):
        # SP good (v6 within 10%).
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3, v4_path=(1, 2, 3))
        # SP bad.
        add_dual_series(db, 2, [100.0] * 3, [60.0] * 3, v4_path=(1, 2, 3))
        # DP bad.
        add_dual_series(
            db, 3, [100.0] * 3, [50.0] * 3, v4_path=(1, 2, 7), v6_path=(1, 4, 7)
        )
        # DL good (v6 better).
        add_dual_series(
            db, 4, [100.0] * 3, [120.0] * 3, v4_path=(1, 2, 9), v6_path=(1, 2, 3)
        )
        screenings = {sid: removed(sid) for sid in (1, 2, 3, 4)}
        audit = audit_removed_sites("V", db, screenings)
        assert audit.sp_good == 1
        assert audit.sp_bad == 1
        assert audit.dp_good == 0
        assert audit.dp_bad == 1
        assert audit.dl_good == 1
        assert audit.dl_bad == 0
        assert audit.total == 4
        assert audit.count(SiteCategory.SP, True) == 1

    def test_kept_sites_not_audited(self, db):
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3)
        screenings = {1: SiteScreening(site_id=1, kept=True)}
        assert audit_removed_sites("V", db, screenings).total == 0

    def test_insufficient_samples_not_auditable(self, db):
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3)
        screenings = {1: removed(1, RemovalReason.INSUFFICIENT_SAMPLES)}
        assert audit_removed_sites("V", db, screenings).total == 0
