"""Path comparison utilities."""

from __future__ import annotations

import pytest

from repro.analysis.pathdiff import (
    PathComparison,
    compare_site_paths,
    summarise_divergence,
)

from .conftest import add_dual_series


class TestPathComparison:
    def test_identical(self):
        c = PathComparison(path_v4=(1, 2, 3), path_v6=(1, 2, 3))
        assert c.identical
        assert c.length_delta == 0
        assert c.divergence_hop is None
        assert c.shared_fraction == 1.0

    def test_fork_in_the_middle(self):
        c = PathComparison(path_v4=(1, 2, 3, 9), path_v6=(1, 4, 5, 9))
        assert not c.identical
        assert c.common_prefix_length == 1
        assert c.common_suffix_length == 1
        assert c.divergence_hop == 1
        assert c.disjoint_middle() == ((2, 3), (4, 5))

    def test_length_delta_signs(self):
        longer = PathComparison(path_v4=(1, 2, 9), path_v6=(1, 3, 4, 9))
        shorter = PathComparison(path_v4=(1, 2, 3, 9), path_v6=(1, 9))
        assert longer.length_delta == 1
        assert shorter.length_delta == -2

    def test_shared_fraction(self):
        c = PathComparison(path_v4=(1, 2, 9), path_v6=(1, 3, 9))
        # union {1,2,3,9}, intersection {1,9}.
        assert c.shared_fraction == pytest.approx(0.5)

    def test_suffix_never_exceeds_shorter_path(self):
        c = PathComparison(path_v4=(1, 9), path_v6=(1, 5, 9))
        assert c.common_suffix_length <= 2


class TestCompareSitePaths:
    def test_from_database(self, db):
        add_dual_series(
            db, 1, [50.0] * 3, [40.0] * 3, v4_path=(1, 2, 9), v6_path=(1, 3, 4, 9)
        )
        c = compare_site_paths(db, 1)
        assert c is not None
        assert c.length_delta == 1

    def test_missing_data(self, db):
        assert compare_site_paths(db, 99) is None


class TestSummariseDivergence:
    def test_aggregates(self, db):
        add_dual_series(db, 1, [50.0] * 3, [49.0] * 3, v4_path=(1, 2, 9))
        add_dual_series(
            db, 2, [50.0] * 3, [30.0] * 3, v4_path=(1, 2, 9), v6_path=(1, 3, 4, 9)
        )
        summary = summarise_divergence(db, [1, 2])
        assert summary.n_sites == 2
        assert summary.n_identical == 1
        assert summary.identical_fraction == pytest.approx(0.5)
        assert summary.mean_length_delta == pytest.approx(0.5)
        assert summary.delta_histogram == {0: 1, 1: 1}

    def test_empty(self, db):
        summary = summarise_divergence(db, [])
        assert summary.n_sites == 0
        assert summary.identical_fraction == 0.0
