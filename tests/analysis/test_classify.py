"""DL / SP / DP classification and AS grouping."""

from __future__ import annotations

import pytest

from repro.analysis.classify import (
    SiteCategory,
    classify_site,
    classify_sites,
    group_by_destination,
    groups_in_category,
    sites_in_category,
)

from .conftest import add_dual_series


class TestClassifySite:
    def test_sp_site(self, db):
        add_dual_series(db, 1, [50.0] * 3, [49.0] * 3, v4_path=(1, 2, 3))
        c = classify_site(db, 1)
        assert c.category is SiteCategory.SP
        assert c.same_location

    def test_dp_site(self, db):
        add_dual_series(
            db, 1, [50.0] * 3, [40.0] * 3, v4_path=(1, 2, 3), v6_path=(1, 4, 5, 3)
        )
        c = classify_site(db, 1)
        assert c.category is SiteCategory.DP
        assert c.same_location

    def test_dl_site(self, db):
        add_dual_series(
            db, 1, [50.0] * 3, [40.0] * 3, v4_path=(1, 2, 9), v6_path=(1, 2, 3)
        )
        c = classify_site(db, 1)
        assert c.category is SiteCategory.DL
        assert not c.same_location

    def test_no_paths_is_none(self, db):
        assert classify_site(db, 99) is None

    def test_modal_path_decides_for_flappers(self, db):
        # v6 path flips for the last third of rounds: modal path == v4 path.
        add_dual_series(
            db,
            1,
            [50.0] * 9,
            [49.0] * 9,
            v4_path=(1, 2, 3),
            v6_path=(1, 2, 3),
            v6_path_switch=(6, (1, 4, 3)),
        )
        assert classify_site(db, 1).category is SiteCategory.SP


class TestGrouping:
    @pytest.fixture()
    def classified(self, db):
        # AS 3: two SP sites; AS 7: two DP sites; one DL site -> AS 9/3.
        add_dual_series(db, 1, [50.0] * 3, [49.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(db, 2, [50.0] * 3, [48.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(
            db, 3, [50.0] * 3, [30.0] * 3, v4_path=(1, 2, 7), v6_path=(1, 4, 5, 7)
        )
        add_dual_series(
            db, 4, [50.0] * 3, [30.0] * 3, v4_path=(1, 2, 7), v6_path=(1, 4, 5, 7)
        )
        add_dual_series(
            db, 5, [50.0] * 3, [30.0] * 3, v4_path=(1, 2, 9), v6_path=(1, 2, 3)
        )
        return classify_sites(db, [1, 2, 3, 4, 5])

    def test_sites_in_category(self, classified):
        assert sites_in_category(classified, SiteCategory.SP) == [1, 2]
        assert sites_in_category(classified, SiteCategory.DP) == [3, 4]
        assert sites_in_category(classified, SiteCategory.DL) == [5]

    def test_group_by_destination_excludes_dl(self, classified):
        groups = group_by_destination(classified)
        assert set(groups) == {3, 7}

    def test_group_categories(self, classified):
        groups = group_by_destination(classified)
        assert groups[3].category is SiteCategory.SP
        assert groups[3].site_ids == (1, 2)
        assert groups[7].category is SiteCategory.DP
        assert groups[7].site_ids == (3, 4)

    def test_groups_in_category(self, classified):
        groups = group_by_destination(classified)
        assert [g.asn for g in groups_in_category(groups, SiteCategory.SP)] == [3]
        assert [g.asn for g in groups_in_category(groups, SiteCategory.DP)] == [7]

    def test_majority_vote_for_mixed_as(self, db):
        # Two SP sites and one DP site in AS 3: the AS stays SP.
        add_dual_series(db, 1, [50.0] * 3, [49.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(db, 2, [50.0] * 3, [48.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(
            db, 3, [50.0] * 3, [30.0] * 3, v4_path=(1, 2, 3), v6_path=(1, 4, 3)
        )
        groups = group_by_destination(classify_sites(db, [1, 2, 3]))
        assert groups[3].category is SiteCategory.SP
        assert groups[3].n_sites == 3

    def test_dl_group_construction_rejected(self):
        from repro.analysis.classify import ASGroup

        with pytest.raises(ValueError):
            ASGroup(asn=1, category=SiteCategory.DL, site_ids=(1,))
