"""Section 5.5 trait analysis."""

from __future__ import annotations

from repro.analysis.classify import classify_sites
from repro.analysis.misc import trait_analysis

from .conftest import add_dual_series


class TestTraitAnalysis:
    def test_no_dominant_trait_in_balanced_population(self, db):
        # Winners spread across SP and DP evenly.
        add_dual_series(db, 1, [100.0] * 3, [110.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(
            db, 2, [100.0] * 3, [110.0] * 3, v4_path=(1, 2, 7), v6_path=(1, 4, 7)
        )
        add_dual_series(db, 3, [100.0] * 3, [50.0] * 3, v4_path=(1, 2, 4))
        add_dual_series(
            db, 4, [100.0] * 3, [50.0] * 3, v4_path=(1, 2, 8), v6_path=(1, 4, 8)
        )
        classifications = classify_sites(db, [1, 2, 3, 4])
        report = trait_analysis(db, classifications)
        assert report.n_winners == 2
        assert report.n_baseline == 4
        # Category shares among winners equal baseline -> no lift.
        assert report.no_dominant_trait

    def test_dominant_trait_detected_when_planted(self, db):
        # All winners are SP; all losers are DP.
        for sid in (1, 2, 3):
            add_dual_series(db, sid, [100.0] * 3, [120.0] * 3, v4_path=(1, 2, 3))
        for sid in (4, 5, 6):
            add_dual_series(
                db, sid, [100.0] * 3, [40.0] * 3,
                v4_path=(1, 2, 7), v6_path=(1, 4, 7),
            )
        classifications = classify_sites(db, [1, 2, 3, 4, 5, 6])
        report = trait_analysis(db, classifications)
        assert not report.no_dominant_trait
        top = report.dominant_traits[0]
        assert top.trait == "category"
        assert top.value == "SP"

    def test_extra_traits(self, db):
        add_dual_series(db, 1, [100.0] * 3, [120.0] * 3)
        classifications = classify_sites(db, [1])
        report = trait_analysis(
            db, classifications, extra_traits={"parity": lambda sid: sid % 2}
        )
        assert any(s.trait == "parity" for s in report.shares)

    def test_empty_population(self, db):
        report = trait_analysis(db, {})
        assert report.n_winners == 0
        assert report.no_dominant_trait
