"""Cross-vantage checks and known-good site extraction."""

from __future__ import annotations

from repro.analysis.crosscheck import cross_check, known_good_sites
from repro.analysis.hypotheses import ASEvaluation, ASVerdict


def evaluation(asn: int, verdict: ASVerdict, zm=(1,)) -> ASEvaluation:
    return ASEvaluation(
        asn=asn,
        verdict=verdict,
        n_sites=3,
        v4_speed=100.0,
        v6_speed=90.0,
        zero_mode_site_ids=tuple(zm),
    )


class TestCrossCheck:
    def test_agreement_is_positive(self):
        result = cross_check(
            {
                "A": {3: evaluation(3, ASVerdict.COMPARABLE)},
                "B": {3: evaluation(3, ASVerdict.COMPARABLE)},
            }
        )
        assert result.checkable_ases == 1
        assert result.positive == 1
        assert result.negative == 0
        assert result.all_positive

    def test_disagreement_is_negative(self):
        result = cross_check(
            {
                "A": {3: evaluation(3, ASVerdict.COMPARABLE)},
                "B": {3: evaluation(3, ASVerdict.ZERO_MODE)},
            }
        )
        assert result.negative == 1
        assert result.conflicts == (3,)
        assert not result.all_positive

    def test_single_vantage_as_not_checkable(self):
        result = cross_check(
            {
                "A": {3: evaluation(3, ASVerdict.COMPARABLE)},
                "B": {4: evaluation(4, ASVerdict.COMPARABLE)},
            }
        )
        assert result.checkable_ases == 0
        assert not result.all_positive  # nothing to check

    def test_three_vantages_mixed(self):
        result = cross_check(
            {
                "A": {3: evaluation(3, ASVerdict.COMPARABLE), 4: evaluation(4, ASVerdict.SMALL_N)},
                "B": {3: evaluation(3, ASVerdict.COMPARABLE), 4: evaluation(4, ASVerdict.SMALL_N)},
                "C": {3: evaluation(3, ASVerdict.WORSE)},
            }
        )
        assert result.checkable_ases == 2
        assert result.positive == 1
        assert result.negative == 1


class TestKnownGoodSites:
    def test_collects_from_comparable_and_zero_mode(self):
        good = known_good_sites(
            {
                "A": {3: evaluation(3, ASVerdict.COMPARABLE, zm=(1, 2))},
                "B": {
                    3: evaluation(3, ASVerdict.ZERO_MODE, zm=(2, 5)),
                    4: evaluation(4, ASVerdict.WORSE, zm=()),
                },
            }
        )
        assert good[3] == {1, 2, 5}
        assert good[4] == set()
