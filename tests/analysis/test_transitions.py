"""Three-way transition classification (native / tunneled / translated)."""

from __future__ import annotations

from repro.analysis.classify import (
    TransitionKind,
    classify_transitions,
    sites_in_transition,
    transition_split,
)
from repro.monitor.database import TransitionObservation


def _add(db, site_id, round_idx, kind):
    db.add_transition(TransitionObservation(site_id, round_idx, kind))


class TestClassifyTransitions:
    def test_empty_database_classifies_nothing(self, db):
        assert classify_transitions(db) == {}

    def test_latest_round_wins(self, db):
        # site 1 starts translated and adopts native IPv6 mid-campaign
        _add(db, 1, 0, "translated")
        _add(db, 2, 0, "native")
        _add(db, 1, 1, "translated")
        _add(db, 1, 2, "native")
        classes = classify_transitions(db)
        assert classes == {
            1: TransitionKind.NATIVE,
            2: TransitionKind.NATIVE,
        }

    def test_site_filter(self, db):
        _add(db, 1, 0, "translated")
        _add(db, 2, 0, "tunneled")
        _add(db, 3, 0, "native")
        classes = classify_transitions(db, site_ids=[1, 3])
        assert sorted(classes) == [1, 3]

    def test_matches_database_latest_kind(self, db):
        _add(db, 1, 0, "tunneled")
        _add(db, 1, 1, "translated")
        classes = classify_transitions(db)
        assert classes[1].value == db.transition_kind_of(1)


class TestAggregates:
    def test_split_keeps_zero_kinds(self, db):
        _add(db, 1, 0, "translated")
        _add(db, 2, 0, "translated")
        split = transition_split(classify_transitions(db))
        assert split[TransitionKind.TRANSLATED] == 2
        assert split[TransitionKind.NATIVE] == 0
        assert split[TransitionKind.TUNNELED] == 0

    def test_sites_in_transition_sorted(self, db):
        _add(db, 9, 0, "translated")
        _add(db, 2, 0, "translated")
        _add(db, 5, 0, "native")
        classes = classify_transitions(db)
        assert sites_in_transition(classes, TransitionKind.TRANSLATED) == [2, 9]
        assert sites_in_transition(classes, TransitionKind.NATIVE) == [5]

    def test_str_form_matches_wire_kind(self):
        assert str(TransitionKind.TRANSLATED) == "translated"


class TestLiveCampaign:
    def test_dns64_campaign_is_mostly_translated(self, dns64_campaign):
        repo = dns64_campaign.repository
        name = repo.vantage_names[0]
        classes = classify_transitions(repo.database(name))
        assert classes
        split = transition_split(classes)
        # the miniature world's AAAA coverage is thin: most monitored
        # sites reach IPv6 only through the translator
        assert split[TransitionKind.TRANSLATED] > 0
