"""Per-AS verdicts (the engine of Tables 8 and 11)."""

from __future__ import annotations

import pytest

from repro.analysis.classify import ASGroup, SiteCategory
from repro.analysis.hypotheses import (
    ASVerdict,
    evaluate_as,
    evaluate_groups,
    verdict_fractions,
)

from .conftest import add_dual_series


def sp_group(asn: int, site_ids: tuple[int, ...]) -> ASGroup:
    return ASGroup(asn=asn, category=SiteCategory.SP, site_ids=site_ids)


class TestEvaluateAs:
    def test_comparable_when_within_band(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3)
        add_dual_series(db, 2, [100.0] * 3, [93.0] * 3)
        evaluation = evaluate_as(db, sp_group(3, (1, 2)), analysis_cfg)
        assert evaluation.verdict is ASVerdict.COMPARABLE
        assert evaluation.n_sites == 2
        assert evaluation.relative_difference == pytest.approx(-0.06)

    def test_v6_better_is_comparable(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [120.0] * 3)
        evaluation = evaluate_as(db, sp_group(3, (1,)), analysis_cfg)
        assert evaluation.verdict is ASVerdict.COMPARABLE

    def test_zero_mode_when_healthy_site_exists(self, db, analysis_cfg):
        # Four sites, three impaired: AS mean is worse, one site at parity.
        add_dual_series(db, 1, [100.0] * 3, [100.0] * 3)
        for sid in (2, 3, 4):
            add_dual_series(db, sid, [100.0] * 3, [50.0] * 3)
        evaluation = evaluate_as(db, sp_group(3, (1, 2, 3, 4)), analysis_cfg)
        assert evaluation.verdict is ASVerdict.ZERO_MODE
        assert evaluation.zero_mode_site_ids == (1,)

    def test_small_n_when_few_sites_and_no_mode(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [50.0] * 3)
        evaluation = evaluate_as(db, sp_group(3, (1,)), analysis_cfg)
        assert evaluation.verdict is ASVerdict.SMALL_N

    def test_worse_when_many_sites_and_no_mode(self, db, analysis_cfg):
        for sid in range(1, 6):
            add_dual_series(db, sid, [100.0] * 3, [55.0] * 3)
        evaluation = evaluate_as(db, sp_group(3, tuple(range(1, 6))), analysis_cfg)
        assert evaluation.verdict is ASVerdict.WORSE

    def test_no_data_returns_none(self, db, analysis_cfg):
        assert evaluate_as(db, sp_group(3, (42,)), analysis_cfg) is None

    def test_site_filter_restricts_evaluation(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [100.0] * 3)
        add_dual_series(db, 2, [100.0] * 3, [40.0] * 3)
        full = evaluate_as(db, sp_group(3, (1, 2)), analysis_cfg)
        only_good = evaluate_as(
            db, sp_group(3, (1, 2)), analysis_cfg, site_filter=[1]
        )
        assert full.verdict is ASVerdict.ZERO_MODE
        assert only_good.verdict is ASVerdict.COMPARABLE


class TestAggregation:
    def test_evaluate_groups_skips_empty(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3)
        groups = [sp_group(3, (1,)), sp_group(4, (99,))]
        evaluations = evaluate_groups(db, groups, analysis_cfg)
        assert set(evaluations) == {3}

    def test_verdict_fractions(self, db, analysis_cfg):
        add_dual_series(db, 1, [100.0] * 3, [95.0] * 3)  # comparable
        add_dual_series(db, 2, [100.0] * 3, [50.0] * 3)  # small_n
        evaluations = evaluate_groups(
            db, [sp_group(3, (1,)), sp_group(4, (2,))], analysis_cfg
        )
        fractions = verdict_fractions(evaluations.values())
        assert fractions[ASVerdict.COMPARABLE] == pytest.approx(0.5)
        assert fractions[ASVerdict.SMALL_N] == pytest.approx(0.5)
        assert fractions[ASVerdict.WORSE] == 0.0

    def test_verdict_fractions_empty(self):
        fractions = verdict_fractions([])
        assert all(v == 0.0 for v in fractions.values())
