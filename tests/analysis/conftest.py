"""Builders for synthetic measurement databases used by analysis tests."""

from __future__ import annotations

from typing import Sequence

import pytest

from repro.config import AnalysisConfig, MonitorConfig
from repro.monitor.database import (
    DownloadObservation,
    MeasurementDatabase,
    PathObservation,
)
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def add_series(
    db: MeasurementDatabase,
    site_id: int,
    family: AddressFamily,
    speeds: Sequence[float],
    as_path: tuple[int, ...] = (1, 2, 3),
    path_switch: tuple[int, tuple[int, ...]] | None = None,
) -> None:
    """Insert a per-round speed series plus path observations.

    ``path_switch=(round, new_path)`` flips the recorded path from that
    round on (a path-change event).
    """
    for round_idx, speed in enumerate(speeds):
        db.add_download(
            DownloadObservation(
                site_id=site_id,
                round_idx=round_idx,
                family=family,
                n_samples=5,
                mean_speed=speed,
                ci_half_width=speed * 0.02,
                converged=True,
                page_bytes=1000,
                timestamp=0.0,
            )
        )
        current = as_path
        if path_switch is not None and round_idx >= path_switch[0]:
            current = path_switch[1]
        db.add_path(
            PathObservation(
                site_id=site_id,
                round_idx=round_idx,
                family=family,
                dest_asn=current[-1],
                as_path=current,
            )
        )


def add_dual_series(
    db: MeasurementDatabase,
    site_id: int,
    v4_speeds: Sequence[float],
    v6_speeds: Sequence[float],
    v4_path: tuple[int, ...] = (1, 2, 3),
    v6_path: tuple[int, ...] | None = None,
    v6_path_switch: tuple[int, tuple[int, ...]] | None = None,
) -> None:
    add_series(db, site_id, V4, v4_speeds, v4_path)
    add_series(
        db,
        site_id,
        V6,
        v6_speeds,
        v6_path if v6_path is not None else v4_path,
        path_switch=v6_path_switch,
    )


@pytest.fixture()
def db() -> MeasurementDatabase:
    return MeasurementDatabase(vantage_name="T")


@pytest.fixture()
def monitor_cfg() -> MonitorConfig:
    return MonitorConfig(min_rounds=6)


@pytest.fixture()
def analysis_cfg() -> AnalysisConfig:
    return AnalysisConfig()
