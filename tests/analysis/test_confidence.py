"""Cross-round screening: keep/remove decisions and cause attribution."""

from __future__ import annotations

import random

from repro.analysis.confidence import (
    RemovalReason,
    kept_sites,
    removed_sites,
    screen_all,
    screen_site,
)

from .conftest import V4, V6, add_dual_series, add_series


def noisy(base: float, n: int, jitter: float = 0.02, seed: int = 1) -> list[float]:
    rng = random.Random(seed)
    return [base * (1 + rng.uniform(-jitter, jitter)) for _ in range(n)]


class TestKeep:
    def test_stationary_site_is_kept(self, db, monitor_cfg, analysis_cfg):
        add_dual_series(db, 1, noisy(50, 20), noisy(48, 20))
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.kept
        assert screening.reason is None


class TestInsufficientSamples:
    def test_few_rounds_removed(self, db, monitor_cfg, analysis_cfg):
        add_dual_series(db, 1, noisy(50, 3), noisy(48, 3))
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert not screening.kept
        assert screening.reason is RemovalReason.INSUFFICIENT_SAMPLES

    def test_one_family_short_is_enough_to_remove(self, db, monitor_cfg, analysis_cfg):
        add_series(db, 1, V4, noisy(50, 20))
        add_series(db, 1, V6, noisy(48, 3))
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.INSUFFICIENT_SAMPLES
        assert screening.reason_family is V6


class TestSteps:
    def test_upward_step_detected(self, db, monitor_cfg, analysis_cfg):
        series = noisy(40, 12) + noisy(70, 12, seed=2)
        add_dual_series(db, 1, series, noisy(50, 24))
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.STEP_UP
        assert screening.reason_family is V4
        assert screening.step_round is not None

    def test_downward_step_detected(self, db, monitor_cfg, analysis_cfg):
        series = noisy(70, 12) + noisy(40, 12, seed=2)
        add_dual_series(db, 1, noisy(50, 24), series)
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.STEP_DOWN
        assert screening.reason_family is V6

    def test_step_with_coincident_path_change(self, db, monitor_cfg, analysis_cfg):
        series = noisy(70, 12) + noisy(40, 12, seed=2)
        add_dual_series(
            db,
            1,
            noisy(50, 24),
            series,
            v6_path=(1, 2, 3),
            v6_path_switch=(12, (1, 4, 5, 3)),
        )
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.STEP_DOWN
        assert screening.step_from_path_change

    def test_step_without_path_change(self, db, monitor_cfg, analysis_cfg):
        series = noisy(70, 12) + noisy(40, 12, seed=2)
        add_dual_series(db, 1, noisy(50, 24), series)
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert not screening.step_from_path_change

    def test_distant_path_change_not_associated(self, db, monitor_cfg, analysis_cfg):
        series = noisy(70, 14) + noisy(40, 14, seed=2)
        add_dual_series(
            db,
            1,
            noisy(50, 28),
            series,
            v6_path=(1, 2, 3),
            v6_path_switch=(3, (1, 4, 5, 3)),  # far from the step at ~14
        )
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.STEP_DOWN
        assert not screening.step_from_path_change


class TestTrends:
    def test_upward_trend(self, db, monitor_cfg, analysis_cfg):
        series = [40.0 * (1.012**i) for i in range(30)]
        add_dual_series(db, 1, series, noisy(50, 30))
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.TREND_UP

    def test_downward_trend(self, db, monitor_cfg, analysis_cfg):
        series = [40.0 * (0.988**i) for i in range(30)]
        add_dual_series(db, 1, noisy(50, 30), series)
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        assert screening.reason is RemovalReason.TREND_DOWN


class TestUnstable:
    def test_wild_variance_without_structure(self, db, monitor_cfg, analysis_cfg):
        rng = random.Random(8)
        series = [50.0 * rng.uniform(0.4, 1.8) for _ in range(14)]
        add_dual_series(db, 1, series, series)
        screening = screen_site(db, 1, monitor_cfg, analysis_cfg)
        if not screening.kept:  # the draw is wide enough to fail the CI
            assert screening.reason in (
                RemovalReason.UNSTABLE,
                RemovalReason.TREND_UP,
                RemovalReason.TREND_DOWN,
                RemovalReason.STEP_UP,
                RemovalReason.STEP_DOWN,
            )


class TestScreenAll:
    def test_partition(self, db, monitor_cfg, analysis_cfg):
        add_dual_series(db, 1, noisy(50, 20), noisy(48, 20))
        add_dual_series(db, 2, noisy(50, 3), noisy(48, 3))
        screenings = screen_all(db, [1, 2], monitor_cfg, analysis_cfg)
        assert kept_sites(screenings) == [1]
        assert removed_sites(screenings) == [2]
