"""Hop-count bucketing (Tables 7 and 9)."""

from __future__ import annotations

import pytest

from repro.analysis.hopcount import BUCKETS, bucket_of, performance_by_hopcount

from .conftest import V4, V6, add_dual_series


class TestBucketOf:
    @pytest.mark.parametrize(
        "hops,expected",
        [(1, "1"), (2, "2"), (3, "3"), (4, "4"), (5, ">=5"), (9, ">=5")],
    )
    def test_mapping(self, hops, expected):
        assert bucket_of(hops) == expected

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bucket_of(0)


class TestPerformanceByHopcount:
    def test_families_bucket_independently(self, db):
        # v4 path has 2 hops, v6 path 4 hops.
        add_dual_series(
            db,
            1,
            [60.0] * 3,
            [30.0] * 3,
            v4_path=(1, 2, 3),
            v6_path=(1, 4, 5, 6, 3),
        )
        table = performance_by_hopcount(db, [1])
        assert table[V4]["2"].n_sites == 1
        assert table[V4]["2"].mean_speed == pytest.approx(60.0)
        assert table[V6]["4"].n_sites == 1
        assert table[V6]["4"].mean_speed == pytest.approx(30.0)
        assert table[V4]["4"].n_sites == 0
        assert table[V4]["4"].mean_speed is None

    def test_bucket_averages(self, db):
        add_dual_series(db, 1, [60.0] * 3, [60.0] * 3, v4_path=(1, 2, 3))
        add_dual_series(db, 2, [40.0] * 3, [40.0] * 3, v4_path=(1, 2, 9))
        table = performance_by_hopcount(db, [1, 2])
        assert table[V4]["2"].n_sites == 2
        assert table[V4]["2"].mean_speed == pytest.approx(50.0)

    def test_open_bucket_pools_long_paths(self, db):
        add_dual_series(db, 1, [20.0] * 3, [20.0] * 3, v4_path=(1, 2, 3, 4, 5, 6))
        add_dual_series(db, 2, [10.0] * 3, [10.0] * 3, v4_path=(1, 2, 3, 4, 5, 6, 7, 8))
        table = performance_by_hopcount(db, [1, 2])
        assert table[V4][">=5"].n_sites == 2
        assert table[V4][">=5"].mean_speed == pytest.approx(15.0)

    def test_all_buckets_present(self, db):
        table = performance_by_hopcount(db, [])
        assert list(table[V4]) == list(BUCKETS)

    def test_sites_without_speed_skipped(self, db):
        from .conftest import add_series

        add_series(db, 1, V4, [50.0] * 3)  # no v6 data
        table = performance_by_hopcount(db, [1])
        assert table[V4]["2"].n_sites == 1
        assert table[V6]["2"].n_sites == 0
