"""Zero-mode detection."""

from __future__ import annotations

import pytest

from repro.analysis.zeromode import (
    has_zero_mode,
    relative_differences,
    zero_mode_sites,
)

from .conftest import add_dual_series


class TestHasZeroMode:
    def test_detects_value_near_zero(self):
        assert has_zero_mode([-0.4, -0.05, -0.5])
        assert has_zero_mode([0.09])

    def test_no_mode_when_all_far(self):
        assert not has_zero_mode([-0.4, -0.2, 0.5])

    def test_boundary_inclusive(self):
        assert has_zero_mode([0.10], threshold=0.10)
        assert not has_zero_mode([0.1001], threshold=0.10)

    def test_empty(self):
        assert not has_zero_mode([])


class TestRelativeDifferences:
    def test_computed_per_site(self, db):
        add_dual_series(db, 1, [100.0] * 3, [50.0] * 3)
        add_dual_series(db, 2, [100.0] * 3, [98.0] * 3)
        diffs = relative_differences(db, [1, 2, 99])
        assert diffs[1] == pytest.approx(-0.5)
        assert diffs[2] == pytest.approx(-0.02)
        assert 99 not in diffs

    def test_zero_mode_sites_selected(self, db):
        add_dual_series(db, 1, [100.0] * 3, [50.0] * 3)
        add_dual_series(db, 2, [100.0] * 3, [98.0] * 3)
        add_dual_series(db, 3, [100.0] * 3, [105.0] * 3)
        diffs = relative_differences(db, [1, 2, 3])
        assert zero_mode_sites(diffs) == [2, 3]
