"""'Good AS' coverage of DP paths (Table 13)."""

from __future__ import annotations

import pytest

from repro.analysis.classify import ASGroup, SiteCategory
from repro.analysis.goodas import (
    GOODNESS_BUCKETS,
    collect_good_ases,
    dp_path_goodness,
    goodness_bucket,
    goodness_buckets,
)
from repro.analysis.hypotheses import ASEvaluation, ASVerdict
from repro.monitor.database import MeasurementDatabase

from .conftest import add_dual_series


class TestGoodnessBucket:
    @pytest.mark.parametrize(
        "fraction,expected",
        [
            (1.0, "100%"),
            (0.9, "[75%,100%)"),
            (0.75, "[75%,100%)"),
            (0.6, "[50%,75%)"),
            (0.3, "[25%,50%)"),
            (0.0, "[0%,25%)"),
        ],
    )
    def test_mapping(self, fraction, expected):
        assert goodness_bucket(fraction) == expected

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            goodness_bucket(1.2)

    def test_buckets_sum_to_one(self):
        shares = goodness_buckets([1.0, 0.8, 0.6, 0.6, 0.1])
        assert sum(shares.values()) == pytest.approx(1.0)
        assert list(shares) == list(GOODNESS_BUCKETS)

    def test_empty_fractions(self):
        shares = goodness_buckets([])
        assert all(v == 0.0 for v in shares.values())


class TestCollectGoodAses:
    def test_v6_path_members_of_comparable_as(self, db):
        add_dual_series(db, 1, [100.0] * 3, [98.0] * 3, v4_path=(1, 2, 3))
        evaluation = ASEvaluation(
            asn=3,
            verdict=ASVerdict.COMPARABLE,
            n_sites=1,
            v4_speed=100.0,
            v6_speed=98.0,
            zero_mode_site_ids=(1,),
        )
        good = collect_good_ases({"A": (db, {3: evaluation})})
        assert good == {2, 3}

    def test_non_comparable_contributes_nothing(self, db):
        add_dual_series(db, 1, [100.0] * 3, [50.0] * 3, v4_path=(1, 2, 3))
        evaluation = ASEvaluation(
            asn=3,
            verdict=ASVerdict.WORSE,
            n_sites=1,
            v4_speed=100.0,
            v6_speed=50.0,
            zero_mode_site_ids=(),
        )
        assert collect_good_ases({"A": (db, {3: evaluation})}) == set()


class TestDpPathGoodness:
    def test_fraction_of_good_ases(self, db):
        add_dual_series(
            db, 1, [100.0] * 3, [40.0] * 3,
            v4_path=(1, 9, 7), v6_path=(1, 2, 4, 7),
        )
        group = ASGroup(asn=7, category=SiteCategory.DP, site_ids=(1,))
        fractions = dp_path_goodness(db, [group], good_ases={2, 7})
        # v6 path crosses (2, 4, 7): 2 and 7 good -> 2/3.
        assert fractions[7] == pytest.approx(2 / 3)

    def test_as_without_v6_path_skipped(self):
        db = MeasurementDatabase(vantage_name="T")
        group = ASGroup(asn=7, category=SiteCategory.DP, site_ids=(1,))
        assert dp_path_goodness(db, [group], good_ases=set()) == {}
