"""Table 3 aggregation."""

from __future__ import annotations

from repro.analysis.confidence import RemovalReason, SiteScreening
from repro.analysis.sanitize import categorise_failures


def screening(site_id, reason=None, path_change=False, step_round=None):
    return SiteScreening(
        site_id=site_id,
        kept=reason is None,
        reason=reason,
        step_round=step_round,
        step_from_path_change=path_change,
    )


class TestCategoriseFailures:
    def test_counts_by_reason(self):
        screenings = {
            1: screening(1),
            2: screening(2, RemovalReason.INSUFFICIENT_SAMPLES),
            3: screening(3, RemovalReason.STEP_UP, step_round=5),
            4: screening(4, RemovalReason.STEP_DOWN, path_change=True, step_round=6),
            5: screening(5, RemovalReason.TREND_UP),
            6: screening(6, RemovalReason.TREND_DOWN),
            7: screening(7, RemovalReason.UNSTABLE),
        }
        causes = categorise_failures("V", screenings)
        assert causes.insufficient == 1
        assert causes.step_up == 1
        assert causes.step_down == 1
        assert causes.trend_up == 1
        assert causes.trend_down == 1
        assert causes.unstable == 1
        assert causes.total_removed == 6
        assert causes.total_steps == 2
        assert causes.steps_from_path_changes == 1

    def test_all_kept(self):
        causes = categorise_failures("V", {1: screening(1), 2: screening(2)})
        assert causes.total_removed == 0
        assert causes.total_steps == 0
