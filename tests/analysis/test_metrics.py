"""Per-site performance metrics."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import (
    fraction_v6_faster,
    site_mean_speed,
    site_relative_difference,
    v6_faster,
)

from .conftest import V4, V6, add_dual_series, add_series


class TestSiteMeanSpeed:
    def test_mean_of_rounds(self, db):
        add_series(db, 1, V4, [10.0, 20.0, 30.0])
        assert site_mean_speed(db, 1, V4) == pytest.approx(20.0)

    def test_missing_data_is_none(self, db):
        assert site_mean_speed(db, 1, V4) is None


class TestRelativeDifference:
    def test_v6_slower(self, db):
        add_dual_series(db, 1, [100.0] * 3, [80.0] * 3)
        assert site_relative_difference(db, 1) == pytest.approx(-0.2)
        assert v6_faster(db, 1) is False

    def test_v6_faster(self, db):
        add_dual_series(db, 1, [100.0] * 3, [110.0] * 3)
        assert site_relative_difference(db, 1) == pytest.approx(0.1)
        assert v6_faster(db, 1) is True

    def test_one_family_missing(self, db):
        add_series(db, 1, V4, [100.0] * 3)
        assert site_relative_difference(db, 1) is None
        assert v6_faster(db, 1) is None


class TestFractionV6Faster:
    def test_mixed_population(self, db):
        add_dual_series(db, 1, [100.0] * 3, [110.0] * 3)
        add_dual_series(db, 2, [100.0] * 3, [90.0] * 3)
        add_dual_series(db, 3, [100.0] * 3, [120.0] * 3)
        assert fraction_v6_faster(db, [1, 2, 3]) == pytest.approx(2 / 3)

    def test_skips_undecidable_sites(self, db):
        add_dual_series(db, 1, [100.0] * 3, [110.0] * 3)
        add_series(db, 2, V4, [100.0] * 3)
        assert fraction_v6_faster(db, [1, 2]) == pytest.approx(1.0)

    def test_empty_is_none(self, db):
        assert fraction_v6_faster(db, []) is None
