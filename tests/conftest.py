"""Shared fixtures.

The expensive artifacts — a small world and its completed campaign — are
session-scoped so the whole suite pays for them once.  Unit tests that
need precise control build their own tiny fixtures instead.
"""

from __future__ import annotations

import random

import pytest

from repro.config import ScenarioConfig, small_config
from repro.core.campaign import CampaignResult, run_campaign, run_world_ipv6_day
from repro.core.world import World, build_world
from repro.experiments.scenario import ExperimentData, build_contexts


@pytest.fixture(autouse=True, scope="session")
def _isolated_campaign_store(tmp_path_factory):
    # Keep the suite hermetic: the scenario cache's disk tier goes to a
    # session-scoped temp dir instead of ./.repro-cache.
    from repro.experiments import scenario

    scenario.configure_cache(tmp_path_factory.mktemp("repro-cache"))
    yield
    scenario.configure_cache(None)


@pytest.fixture(scope="session")
def small_cfg() -> ScenarioConfig:
    # Seed 11 yields a miniature world that exhibits both of the paper's
    # contrasts clearly (tiny worlds are seed-sensitive; the robust
    # experiment-scale checks live in benchmarks/).
    return small_config(seed=11)


@pytest.fixture(scope="session")
def small_world(small_cfg) -> World:
    return build_world(small_cfg)


@pytest.fixture(scope="session")
def small_campaign(small_world) -> CampaignResult:
    return run_campaign(small_world)


@pytest.fixture(scope="session")
def small_data(small_cfg, small_campaign) -> ExperimentData:
    return ExperimentData(
        config=small_cfg,
        campaign=small_campaign,
        contexts=build_contexts(small_cfg, small_campaign),
    )


@pytest.fixture(scope="session")
def small_w6d(small_cfg, small_campaign) -> ExperimentData:
    campaign = run_world_ipv6_day(small_campaign.world, n_rounds=24)
    return ExperimentData(
        config=small_cfg,
        campaign=campaign,
        contexts=build_contexts(small_cfg, campaign),
    )


@pytest.fixture(scope="session")
def dns64_cfg() -> ScenarioConfig:
    # The NAT64/DNS64 transition axis turned on over the same miniature
    # world; scale 0.4 keeps the campaign cheap while every vantage
    # still resolves through DNS64.
    from dataclasses import replace

    cfg = small_config(seed=11, scale=0.4)
    return replace(cfg, dns64=replace(cfg.dns64, enabled=True))


@pytest.fixture(scope="session")
def dns64_campaign(dns64_cfg) -> CampaignResult:
    return run_campaign(build_world(dns64_cfg), n_rounds=6)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(1234)
