"""CLI surface."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import PROFILE_DEFAULT_OUT, build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["run-all"],
            ["quickrun"],
            ["export", "--out", "x"],
            ["profile"],
            ["show-config"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])

    def test_scale_flags(self):
        parser = build_parser()
        assert parser.parse_args(["quickrun", "--scale", "0.5"]).scale == 0.5
        assert parser.parse_args(["quickrun"]).scale == 1.0
        assert parser.parse_args(["export", "--out", "x", "--scale", "2"]).scale == 2.0

    def test_log_level_is_global(self):
        args = build_parser().parse_args(["--log-level", "DEBUG", "quickrun"])
        assert args.log_level == "DEBUG"
        assert args.log_format == "kv"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--log-level", "NOISY", "quickrun"])

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.out == PROFILE_DEFAULT_OUT
        assert args.seed == 11


class TestCommands:
    def test_show_config(self, capsys):
        assert main(["show-config"]) == 0
        out = capsys.readouterr().out
        assert "peering_parity" in out
        assert "[topology]" in out

    def test_quickrun(self, capsys):
        assert main(["quickrun", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "SP comparable" in out
        assert "Penn" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path / "d"), "--seed", "11"]) == 0
        manifest = json.loads((tmp_path / "d" / "manifest.json").read_text())
        assert len(manifest["vantage_points"]) == 6

    def test_export_reads_from_store_on_second_run(self, tmp_path, capsys):
        from repro.experiments import scenario

        store_before = scenario._STORE, scenario._STORE_CONFIGURED
        try:
            cache = str(tmp_path / "cache")
            args = [
                "export", "--seed", "11", "--scale", "0.6",
                "--cache-dir", cache,
            ]
            assert main([*args, "--out", str(tmp_path / "a")]) == 0
            first = capsys.readouterr().out
            assert "campaign store hit" not in first
            assert main([*args, "--out", str(tmp_path / "b")]) == 0
            second = capsys.readouterr().out
            assert "campaign store hit" in second
            digest_lines = [
                line
                for line in (first + second).splitlines()
                if line.startswith("repository digest:")
            ]
            assert len(set(digest_lines)) == 1  # stored export is identical
            assert (tmp_path / "a" / "manifest.json").read_bytes() == (
                tmp_path / "b" / "manifest.json"
            ).read_bytes()
        finally:
            scenario._STORE, scenario._STORE_CONFIGURED = store_before

    def test_export_with_explicit_backend_skips_store(self, tmp_path, capsys):
        from repro.experiments import scenario

        store_before = scenario._STORE, scenario._STORE_CONFIGURED
        try:
            cache = tmp_path / "cache"
            args = [
                "export", "--seed", "11", "--scale", "0.6",
                "--cache-dir", str(cache), "--backend", "serial",
            ]
            assert main([*args, "--out", str(tmp_path / "a")]) == 0
            # explicit backend: the campaign really ran; nothing stored
            assert not (cache / "campaigns").exists()
        finally:
            scenario._STORE, scenario._STORE_CONFIGURED = store_before

    def test_profile_writes_report_and_prints_breakdown(self, tmp_path, capsys):
        out = tmp_path / "BENCH_profile_small.json"
        try:
            assert main(["profile", "--seed", "11", "--out", str(out)]) == 0
        finally:
            obs.disable()
            obs.reset()
        text = capsys.readouterr().out
        for phase in ("world build", "routing", "rounds", "analysis"):
            assert phase in text
        report = json.loads(out.read_text())
        assert report["schema"] == obs.SCHEMA
        assert report["meta"]["seed"] == 11
        phases = {row["phase"] for row in report["phases"]}
        assert phases == {"world build", "routing", "rounds", "analysis"}
        assert report["metrics"]["campaign.rounds"]["value"] > 0


class TestTransitionFlag:
    def test_flag_parses_everywhere(self):
        parser = build_parser()
        for argv in (
            ["run-all", "--transition"],
            ["quickrun", "--transition"],
            ["export", "--out", "x", "--transition"],
            ["observe", "--transition"],
        ):
            assert parser.parse_args(argv).transition

    def test_flag_defaults_off(self):
        assert not build_parser().parse_args(["quickrun"]).transition

    def test_export_with_transition_writes_transitions_csv(
        self, tmp_path, capsys
    ):
        assert (
            main(
                [
                    "export", "--out", str(tmp_path / "d"),
                    "--seed", "11", "--scale", "0.3",
                    "--transition", "--backend", "serial",
                ]
            )
            == 0
        )
        trees = list((tmp_path / "d").rglob("transitions.csv"))
        assert trees, "transition-enabled export must emit transitions.csv"
