"""CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["run-all"],
            ["quickrun"],
            ["export", "--out", "x"],
            ["show-config"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export"])


class TestCommands:
    def test_show_config(self, capsys):
        assert main(["show-config"]) == 0
        out = capsys.readouterr().out
        assert "peering_parity" in out
        assert "[topology]" in out

    def test_quickrun(self, capsys):
        assert main(["quickrun", "--seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "SP comparable" in out
        assert "Penn" in out

    def test_export(self, tmp_path, capsys):
        assert main(["export", "--out", str(tmp_path / "d"), "--seed", "11"]) == 0
        manifest = json.loads((tmp_path / "d" / "manifest.json").read_text())
        assert len(manifest["vantage_points"]) == 6
