"""Deterministic RNG streams."""

from __future__ import annotations

from repro.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_stable_mapping(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name_and_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        a = RngStreams(42)
        b = RngStreams(42)
        # Consuming one stream must not perturb another.
        a.stream("noise").random()
        assert a.stream("signal").random() == b.stream("signal").random()

    def test_fresh_does_not_affect_cached(self):
        streams = RngStreams(42)
        cached_before = streams.stream("x").random()
        streams2 = RngStreams(42)
        streams2.fresh("x").random()
        streams2.fresh("x").random()
        assert streams2.stream("x").random() == cached_before

    def test_fresh_is_repeatable(self):
        streams = RngStreams(42)
        assert streams.fresh("x").random() == streams.fresh("x").random()

    def test_spawn_changes_sequences(self):
        parent = RngStreams(42)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_names_lists_created_streams(self):
        streams = RngStreams(42)
        streams.stream("a")
        streams.stream("b")
        assert set(streams.names()) == {"a", "b"}
