"""Deterministic RNG streams."""

from __future__ import annotations

import random

from repro import obs
from repro.rng import RngStreams, derive_seed, derive_uniform


class TestDeriveSeed:
    def test_stable_mapping(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_differs_by_name_and_seed(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_pinned_value(self):
        """SHA-256-derived: stable across Python versions and processes.
        A changed pin means every seeded scenario in the repo changed."""
        assert derive_seed(11, "adoption") == 18420719352658139260

    def test_memoised(self):
        before = derive_seed.cache_info().hits
        derive_seed(7, "memo-probe")
        derive_seed(7, "memo-probe")
        assert derive_seed.cache_info().hits > before


class TestDeriveUniform:
    def test_in_unit_interval(self):
        for idx in range(200):
            draw = derive_uniform(11, f"decision:{idx}")
            assert 0.0 <= draw < 1.0

    def test_deterministic(self):
        assert derive_uniform(11, "x") == derive_uniform(11, "x")
        assert derive_uniform(11, "x") != derive_uniform(11, "y")

    def test_matches_seed_bits(self):
        """The uniform is the top 53 bits of the derived seed — the same
        entropy a ``random.Random(seed).random()`` would consume, without
        constructing the generator."""
        seed = derive_seed(11, "x")
        assert derive_uniform(11, "x") == (seed >> 11) * (2.0**-53)

    def test_no_generator_constructed(self):
        obs.reset()
        counter = obs.metrics.counter("rng.constructions")
        derive_uniform(11, "counter-probe")
        assert counter.value == 0


class TestConstructionCounter:
    def test_stream_counts_first_construction_only(self):
        obs.reset()
        counter = obs.metrics.counter("rng.constructions")
        streams = RngStreams(42)
        streams.stream("x")
        streams.stream("x")
        assert counter.value == 1

    def test_fresh_counts_every_call(self):
        obs.reset()
        counter = obs.metrics.counter("rng.constructions")
        streams = RngStreams(42)
        streams.fresh("x")
        streams.fresh("x")
        assert counter.value == 2


class TestRngStreams:
    def test_same_name_returns_same_stream(self):
        streams = RngStreams(42)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        a = RngStreams(42)
        b = RngStreams(42)
        # Consuming one stream must not perturb another.
        a.stream("noise").random()
        assert a.stream("signal").random() == b.stream("signal").random()

    def test_fresh_does_not_affect_cached(self):
        streams = RngStreams(42)
        cached_before = streams.stream("x").random()
        streams2 = RngStreams(42)
        streams2.fresh("x").random()
        streams2.fresh("x").random()
        assert streams2.stream("x").random() == cached_before

    def test_fresh_is_repeatable(self):
        streams = RngStreams(42)
        assert streams.fresh("x").random() == streams.fresh("x").random()

    def test_spawn_changes_sequences(self):
        parent = RngStreams(42)
        child = parent.spawn("child")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_names_lists_created_streams(self):
        streams = RngStreams(42)
        streams.stream("a")
        streams.stream("b")
        assert set(streams.names()) == {"a", "b"}
