"""The binary columnar artifact: byte-identical round trips, corruption.

Hypothesis drives the round-trip property over randomly populated
repositories — every dtype (i64/f64/bool/str/dict), unicode strings,
empty tables, zero-vantage repositories.  The properties are exact:
the canonical ``columnar.json`` text rebuilt from a decoded
``columnar.bin`` must be byte-identical to the original's, re-encoding
a decoded repository must reproduce the binary content digest, and any
truncation or byte flip must raise a structured :class:`DataError`
before a single column value is trusted.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.data.columnar import (
    BINARY_MAGIC,
    ColumnarDatabase,
    ColumnarRepository,
    ColumnarTable,
    FAMILY_DICTIONARY,
    LazyColumnarDatabase,
    TABLE_SCHEMAS,
    decode_columnar_binary,
    encode_columnar_binary,
    iter_columnar_json,
    load_columnar_binary,
    write_columnar_binary,
    write_columnar_json,
)
from repro.errors import DataError
from repro.monitor.database import FAULT_KINDS, TRANSITION_KINDS

from .test_columnar import populated_db


def _counter(name: str) -> float:
    metric = obs.get_registry().get(name)
    return float(getattr(metric, "value", 0.0) or 0.0)


def _json_bytes(repository: ColumnarRepository) -> bytes:
    return "".join(iter_columnar_json(repository)).encode("utf-8")


def _binary_blob(repository: ColumnarRepository) -> tuple[bytes, str]:
    head, segments, digest = encode_columnar_binary(repository)
    return head + b"".join(bytes(segment) for segment in segments), digest


# ---------------------------------------------------------------------------
# repository strategy (every dtype, empty tables included)
# ---------------------------------------------------------------------------

I64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
F64 = st.floats(allow_nan=False, width=64)
TEXT = st.text(max_size=12)
FAMILY = st.sampled_from(list(FAMILY_DICTIONARY))
KIND = st.sampled_from(list(FAULT_KINDS))
TRANSITION = st.sampled_from(list(TRANSITION_KINDS))
AS_PATH = st.lists(st.integers(min_value=1, max_value=2**31), max_size=4)


def _row_strategy(table: str):
    parts = []
    for column, dtype in TABLE_SCHEMAS[table]:
        if column == "family":
            parts.append(FAMILY)
        elif column == "kind":
            parts.append(KIND)
        elif column == "transition":
            parts.append(TRANSITION)
        elif column == "as_path":
            parts.append(AS_PATH)
        elif dtype == "str":
            parts.append(TEXT)
        elif dtype == "i64":
            parts.append(I64)
        elif dtype == "f64":
            parts.append(F64)
        else:
            parts.append(st.booleans())
    return st.tuples(*parts).map(list)


@st.composite
def repositories(draw) -> ColumnarRepository:
    vantages: dict = {}
    databases: dict = {}
    for index in range(draw(st.integers(min_value=0, max_value=2))):
        name = f"V{index}"
        tables = {
            table: ColumnarTable.from_rows(
                table, draw(st.lists(_row_strategy(table), max_size=6))
            )
            for table in TABLE_SCHEMAS
        }
        vantages[name] = {"name": name, "asn": draw(I64)}
        databases[name] = ColumnarDatabase(name, tables)
    return ColumnarRepository(vantages=vantages, databases=databases)


# ---------------------------------------------------------------------------
# round-trip properties
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(repository=repositories())
def test_binary_round_trip_is_byte_identical(repository):
    blob, digest = _binary_blob(repository)
    decoded = decode_columnar_binary(blob)
    assert _json_bytes(decoded) == _json_bytes(repository)
    # re-encoding the decoded repository lands on the same content digest
    assert _binary_blob(decoded)[1] == digest


@settings(max_examples=20, deadline=None)
@given(repository=repositories(), data=st.data())
def test_truncation_raises_structured_error(repository, data):
    blob, _ = _binary_blob(repository)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(DataError):
        decode_columnar_binary(blob[:cut])


@settings(max_examples=20, deadline=None)
@given(repository=repositories(), data=st.data())
def test_byte_flip_raises_structured_error(repository, data):
    blob, _ = _binary_blob(repository)
    position = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    corrupt = bytearray(blob)
    corrupt[position] ^= 0xFF
    with pytest.raises(DataError):
        decode_columnar_binary(bytes(corrupt))


def test_empty_repository_round_trips():
    repository = ColumnarRepository()
    blob, _ = _binary_blob(repository)
    decoded = decode_columnar_binary(blob)
    assert decoded.databases == {}
    assert _json_bytes(decoded) == _json_bytes(repository)


# ---------------------------------------------------------------------------
# file-level artifacts + laziness
# ---------------------------------------------------------------------------


def _small_repository() -> ColumnarRepository:
    db = populated_db()
    return ColumnarRepository(
        vantages={"T": {"name": "T"}},
        databases={"T": ColumnarDatabase.from_database(db)},
    )


def test_file_round_trip_matches_json_artifact(tmp_path):
    repository = _small_repository()
    bin_path = tmp_path / "columnar.bin"
    digest = write_columnar_binary(bin_path, repository)
    assert bin_path.read_bytes().startswith(BINARY_MAGIC)
    assert len(digest) == 64
    decoded = load_columnar_binary(bin_path)
    original_json = tmp_path / "columnar.json"
    rebuilt_json = tmp_path / "rebuilt.json"
    write_columnar_json(original_json, repository)
    write_columnar_json(rebuilt_json, decoded)
    assert original_json.read_bytes() == rebuilt_json.read_bytes()


def test_missing_file_is_a_structured_error(tmp_path):
    with pytest.raises(DataError):
        load_columnar_binary(tmp_path / "nope.bin")


def test_decode_is_lazy_and_memoized_per_table():
    repository = _small_repository()
    blob, _ = _binary_blob(repository)
    before = _counter("data.columnar.bin_table_decodes")
    decoded = decode_columnar_binary(blob)
    cdb = decoded.databases["T"]
    assert isinstance(cdb, LazyColumnarDatabase)
    # row counts come from the metadata: no table has been decoded yet
    assert cdb.row_counts() == repository.databases["T"].row_counts()
    assert _counter("data.columnar.bin_table_decodes") == before
    first = cdb.table("downloads")
    assert _counter("data.columnar.bin_table_decodes") == before + 1
    assert cdb.table("downloads") is first  # memoized
    assert _counter("data.columnar.bin_table_decodes") == before + 1


def test_campaign_binary_preserves_content_digest(small_campaign, tmp_path):
    repository = ColumnarRepository.from_repository(small_campaign.repository)
    bin_path = tmp_path / "columnar.bin"
    write_columnar_binary(bin_path, repository)
    decoded = load_columnar_binary(bin_path)
    assert _json_bytes(decoded) == _json_bytes(repository)
    rebuilt = decoded.to_repository()
    assert (
        rebuilt.content_digest()
        == small_campaign.repository.content_digest()
    )
