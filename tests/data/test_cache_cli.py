"""The ``repro cache`` CLI and the store's enumerate/prune layer."""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.engine import W6D, WEEKLY
from repro.engine.store import CampaignStore, config_digest

from ..engine.test_store import tiny_campaign


@pytest.fixture(autouse=True)
def _restore_scenario_store():
    # The cache CLI repoints the scenario store via configure_cache;
    # restore the session-scoped hermetic store afterwards.
    from repro.experiments import scenario

    store, configured = scenario._STORE, scenario._STORE_CONFIGURED
    yield
    scenario._STORE, scenario._STORE_CONFIGURED = store, configured


@pytest.fixture()
def seeded_store(tmp_path, small_cfg):
    """A store holding two tiny entries with distinct mtimes."""
    store = CampaignStore(tmp_path / "cache")
    repository, reports = tiny_campaign()
    store.save(small_cfg, repository, reports, kind=WEEKLY)
    store.save(small_cfg, repository, reports, kind=W6D)
    # force distinct, ordered mtimes regardless of filesystem resolution
    weekly_meta = store.entry_dir(config_digest(small_cfg, WEEKLY)) / "meta.json"
    w6d_meta = store.entry_dir(config_digest(small_cfg, W6D)) / "meta.json"
    os.utime(weekly_meta, (1_000, 1_000))
    os.utime(w6d_meta, (2_000, 2_000))
    return store


def test_entries_newest_first(seeded_store, small_cfg):
    entries = seeded_store.entries()
    assert [e.kind for e in entries] == [W6D, WEEKLY]
    assert entries[0].digest == config_digest(small_cfg, W6D)
    assert entries[0].seed == small_cfg.seed
    assert entries[0].repository_digest is not None
    assert entries[0].size_bytes > 0


def test_entries_skips_invalid_directories(seeded_store):
    (seeded_store.root / "campaigns" / "not-an-entry").mkdir()
    bad = seeded_store.root / "campaigns" / "bad-meta"
    bad.mkdir()
    (bad / "meta.json").write_text("{truncated", encoding="utf-8")
    assert len(seeded_store.entries()) == 2


def test_prune_keeps_newest(seeded_store):
    removed = seeded_store.prune(keep_latest=1)
    assert [e.kind for e in removed] == [WEEKLY]
    remaining = seeded_store.entries()
    assert [e.kind for e in remaining] == [W6D]
    assert not removed[0].path.exists()


def test_prune_rejects_negative():
    with pytest.raises(ValueError):
        CampaignStore("unused").prune(keep_latest=-1)


def test_cache_ls_cli(seeded_store, capsys):
    rc = cli_main(["cache", "ls", "--cache-dir", str(seeded_store.root)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "DIGEST" in out
    assert "FORMATS" in out
    assert len(out.strip().splitlines()) == 3  # header + two entries
    for line in out.strip().splitlines()[1:]:
        assert "bin,json" in line


def test_cache_ls_json_cli(seeded_store, small_cfg, capsys):
    rc = cli_main(["cache", "ls", "--json", "--cache-dir", str(seeded_store.root)])
    assert rc == 0
    listing = json.loads(capsys.readouterr().out)
    assert [entry["kind"] for entry in listing] == [W6D, WEEKLY]
    assert listing[0]["digest"] == config_digest(small_cfg, W6D)
    assert listing[0]["size_bytes"] > 0
    for entry in listing:
        artifacts = entry["artifacts"]
        assert artifacts["columnar.bin"] > 0
        assert artifacts["columnar.json"] > 0


def test_cache_prune_cli(seeded_store, capsys):
    rc = cli_main(
        [
            "cache", "prune", "--keep-latest", "1",
            "--cache-dir", str(seeded_store.root),
        ]
    )
    assert rc == 0
    assert "pruned 1" in capsys.readouterr().out
    assert [e.kind for e in seeded_store.entries()] == [W6D]


def test_cache_ls_empty_store(tmp_path, capsys):
    rc = cli_main(["cache", "ls", "--cache-dir", str(tmp_path / "empty")])
    assert rc == 0
    assert "no stored campaigns" in capsys.readouterr().out
