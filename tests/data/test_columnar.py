"""Columnar encoding: round trips, payload validation, digest parity."""

from __future__ import annotations

import json

import pytest

from repro.data.columnar import (
    COLUMNAR_FORMAT,
    ColumnarDatabase,
    ColumnarRepository,
    ColumnarTable,
    DictColumn,
    columnar_view,
)
from repro.errors import DataError
from repro.monitor.database import (
    DnsObservation,
    DownloadObservation,
    FaultObservation,
    MeasurementDatabase,
    PageCheck,
    PathObservation,
    TransitionObservation,
)
from repro.net.addresses import AddressFamily

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def populated_db(
    with_faults: bool = True, with_transitions: bool = False
) -> MeasurementDatabase:
    db = MeasurementDatabase(vantage_name="T")
    db.add_dns(DnsObservation(1, "s1", 0, True, True))
    db.add_dns(DnsObservation(2, "s2", 0, True, False))
    db.add_page_check(PageCheck(1, 0, 1000, 1000, True))
    for family in (V4, V6):
        for round_idx in (0, 1, 2):
            db.add_download(
                DownloadObservation(
                    site_id=1,
                    round_idx=round_idx,
                    family=family,
                    n_samples=5,
                    mean_speed=100.0 + round_idx + (0 if family is V4 else 10),
                    ci_half_width=1.5,
                    converged=round_idx != 1,
                    page_bytes=1000,
                    timestamp=float(round_idx),
                )
            )
            db.add_path(
                PathObservation(
                    1, round_idx, family,
                    dest_asn=30,
                    as_path=(10, 20, 30) if round_idx < 2 else (10, 25, 30),
                )
            )
    if with_faults:
        db.add_fault(FaultObservation(1, 0, V6, "timeout"))
        db.add_fault(FaultObservation(1, 1, V6, "dns_timeout"))
        db.add_fault(FaultObservation(2, 1, V4, "reset"))
    if with_transitions:
        db.add_transition(TransitionObservation(1, 0, "translated"))
        db.add_transition(TransitionObservation(2, 0, "native"))
        db.add_transition(TransitionObservation(1, 1, "translated"))
        db.add_transition(TransitionObservation(1, 2, "native"))
    return db


def test_database_round_trip_is_bit_identical():
    db = populated_db()
    rebuilt = ColumnarDatabase.from_database(db).to_database()
    assert rebuilt.to_dict() == db.to_dict()


def test_payload_round_trip_through_json():
    db = populated_db()
    payload = json.loads(
        json.dumps(ColumnarDatabase.from_database(db).to_payload())
    )
    rebuilt = ColumnarDatabase.from_payload(payload).to_database()
    assert rebuilt.to_dict() == db.to_dict()


def test_faults_table_round_trips():
    db = populated_db(with_faults=True)
    cdb = ColumnarDatabase.from_database(db)
    table = cdb.table("faults")
    assert table.n_rows == 3
    # dictionary-encoded kind and family decode to the original values
    assert table.rows() == [
        [1, V6.value, 0, "timeout"],
        [1, V6.value, 1, "dns_timeout"],
        [2, V4.value, 1, "reset"],
    ]
    rebuilt = cdb.to_database()
    assert rebuilt.faults == db.faults
    assert rebuilt.fault_counts() == db.fault_counts()


def test_faults_export_csv_round_trip(tmp_path):
    # the CSV export of a columnar-round-tripped database is byte-equal
    # to the original's, and its per-kind counts match fault_counts()
    import csv

    from repro.monitor.export import export_faults_csv

    db = populated_db(with_faults=True)
    rebuilt = ColumnarDatabase.from_database(db).to_database()
    original_path = tmp_path / "original.csv"
    rebuilt_path = tmp_path / "rebuilt.csv"
    assert export_faults_csv(db, original_path) == export_faults_csv(
        rebuilt, rebuilt_path
    )
    assert original_path.read_bytes() == rebuilt_path.read_bytes()
    with original_path.open(newline="", encoding="utf-8") as handle:
        by_kind: dict[str, int] = {}
        for row in csv.DictReader(handle):
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + int(row["count"])
    assert by_kind == db.fault_counts()


def test_transitions_table_round_trips():
    db = populated_db(with_transitions=True)
    cdb = ColumnarDatabase.from_database(db)
    table = cdb.table("transitions")
    assert table.n_rows == 4
    # dictionary-encoded transition kinds decode to the original values
    assert table.rows() == [
        [1, 0, "translated"],
        [2, 0, "native"],
        [1, 1, "translated"],
        [1, 2, "native"],
    ]
    rebuilt = cdb.to_database()
    assert rebuilt.transitions == db.transitions
    assert rebuilt.transition_counts() == db.transition_counts()
    # latest-round semantics survive the round trip: site 1 went native
    assert rebuilt.transition_kind_of(1) == "native"


def test_transitions_payload_round_trip_through_json():
    db = populated_db(with_transitions=True)
    payload = json.loads(
        json.dumps(ColumnarDatabase.from_database(db).to_payload())
    )
    rebuilt = ColumnarDatabase.from_payload(payload).to_database()
    assert rebuilt.transitions == db.transitions
    assert rebuilt.to_dict() == db.to_dict()


def test_transitions_export_csv_round_trip(tmp_path):
    import csv

    from repro.monitor.export import export_transitions_csv

    db = populated_db(with_transitions=True)
    rebuilt = ColumnarDatabase.from_database(db).to_database()
    original_path = tmp_path / "original.csv"
    rebuilt_path = tmp_path / "rebuilt.csv"
    assert export_transitions_csv(db, original_path) == export_transitions_csv(
        rebuilt, rebuilt_path
    )
    assert original_path.read_bytes() == rebuilt_path.read_bytes()
    with original_path.open(newline="", encoding="utf-8") as handle:
        by_kind: dict[str, int] = {}
        for row in csv.DictReader(handle):
            by_kind[row["transition"]] = by_kind.get(row["transition"], 0) + 1
    assert by_kind == db.transition_counts()


def test_transitionless_database_keeps_wire_layout():
    # to_dict omits the transitions key when empty; the columnar round
    # trip must preserve that (legacy content digests depend on it).
    db = populated_db(with_transitions=False)
    assert "transitions" not in db.to_dict()
    rebuilt = ColumnarDatabase.from_database(db).to_database()
    assert "transitions" not in rebuilt.to_dict()
    assert rebuilt.to_dict() == db.to_dict()


def test_faultless_database_keeps_wire_layout():
    # to_dict omits the faults key when empty; the columnar round trip
    # must preserve that (the content digest depends on it).
    db = populated_db(with_faults=False)
    assert "faults" not in db.to_dict()
    rebuilt = ColumnarDatabase.from_database(db).to_database()
    assert "faults" not in rebuilt.to_dict()
    assert rebuilt.to_dict() == db.to_dict()


def test_repository_digest_parity(small_campaign):
    repository = small_campaign.repository
    payload = json.loads(
        json.dumps(ColumnarRepository.from_repository(repository).to_payload())
    )
    rebuilt = ColumnarRepository.from_payload(payload).to_repository()
    assert rebuilt.content_digest() == repository.content_digest()


def test_columnar_view_is_memoized_and_invalidated():
    db = populated_db()
    view = columnar_view(db)
    assert columnar_view(db) is view
    db.add_fault(FaultObservation(2, 2, V4, "timeout"))
    fresh = columnar_view(db)
    assert fresh is not view
    assert fresh.table("faults").n_rows == view.table("faults").n_rows + 1


def test_sorted_index_equal_range_prefix():
    db = populated_db()
    table = ColumnarDatabase.from_database(db).table("downloads")
    index = table.index()
    rows = index.equal_range((1, table.column("family").encode(V6.value)))
    assert rows == sorted(rows)
    assert [table.column("family").get(r) for r in rows] == [V6.value] * 3
    assert index.equal_range((99,)) == []


def test_unknown_format_rejected():
    with pytest.raises(DataError, match="unsupported columnar format"):
        ColumnarRepository.from_payload({"format": COLUMNAR_FORMAT + 1})


def test_malformed_payloads_rejected():
    db = populated_db()
    payload = ColumnarDatabase.from_database(db).to_payload()
    missing = {
        "vantage_name": "T",
        "tables": {k: v for k, v in payload["tables"].items() if k != "dns"},
    }
    with pytest.raises(DataError, match="misses table 'dns'"):
        ColumnarDatabase.from_payload(missing)

    wrong_count = json.loads(json.dumps(payload))
    wrong_count["tables"]["downloads"]["n_rows"] += 1
    with pytest.raises(DataError, match="declared"):
        ColumnarDatabase.from_payload(wrong_count)

    wrong_dtype = json.loads(json.dumps(payload))
    wrong_dtype["tables"]["downloads"]["columns"]["site_id"]["dtype"] = "f64"
    with pytest.raises(DataError, match="dtype"):
        ColumnarDatabase.from_payload(wrong_dtype)


def test_dict_column_validates_codes():
    with pytest.raises(DataError, match="outside"):
        DictColumn("kind", codes=[0, 5], dictionary=["a", "b"])


def test_ragged_columns_rejected():
    from repro.data.columnar import Column

    with pytest.raises(DataError, match="ragged"):
        ColumnarTable(
            "dns_counts",
            {
                "round": Column("round", "i64", [0, 1]),
                "queried": Column("queried", "i64", [2]),
                "with_a": Column("with_a", "i64", [2, 2]),
                "with_aaaa": Column("with_aaaa", "i64", [1, 1]),
            },
        )
