"""Response-cache correctness: exact bytes, counters, invalidation.

The contract under test: a hit returns the *exact bytes* the populating
miss produced, the ``data.serve.cache.*`` counters exported by
``/metrics`` agree with what actually happened, and evicting a campaign
from the LRU drops every response cached under its digest.
"""

from __future__ import annotations

import pytest

from repro.data.serve import (
    ResponseCache,
    ServeApp,
    ServeConfig,
    query_digest,
)
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore, config_digest
from repro.obs import metrics


@pytest.fixture(scope="module")
def cached_store(tmp_path_factory, small_cfg, small_campaign):
    store = CampaignStore(tmp_path_factory.mktemp("respcache-store"))
    store.save(
        small_cfg, small_campaign.repository, small_campaign.reports, kind=WEEKLY
    )
    return store, config_digest(small_cfg, WEEKLY)


@pytest.fixture()
def app(cached_store):
    store, _ = cached_store
    return ServeApp(
        store,
        ServeConfig(cache_root=str(store.root), response_cache_entries=64),
    )


def _hits() -> float:
    return metrics.counter("data.serve.cache.hits").value


def _misses() -> float:
    return metrics.counter("data.serve.cache.misses").value


def _vantage(app, digest) -> str:
    _, payload = app.handle("GET", f"/campaigns/{digest}", {})
    return sorted(payload["vantages"])[0]


def test_hit_returns_exact_bytes_of_populating_miss(app, cached_store):
    _, digest = cached_store
    vantage = _vantage(app, digest)
    path = f"/campaigns/{digest}/analysis/classify"
    params = {"vantage": vantage}
    status1, data1, state1 = app.handle_bytes("GET", path, params)
    status2, data2, state2 = app.handle_bytes("GET", path, params)
    assert (status1, state1) == (200, "miss")
    assert (status2, state2) == (200, "hit")
    assert data2 == data1


def test_metrics_counters_agree_with_cache_traffic(app, cached_store):
    _, digest = cached_store
    path = f"/campaigns/{digest}"
    hits0, misses0 = _hits(), _misses()
    app.handle_bytes("GET", path, {})
    app.handle_bytes("GET", path, {})
    app.handle_bytes("GET", path, {})
    assert _misses() == misses0 + 1
    assert _hits() == hits0 + 2
    # ... and /metrics itself exports the same counters
    _, payload = app.handle("GET", "/metrics", {})
    exported = payload["metrics"]
    assert exported["data.serve.cache.hits"]["value"] == _hits()
    assert exported["data.serve.cache.misses"]["value"] == _misses()


def test_campaign_eviction_drops_cached_responses(app, cached_store):
    _, digest = cached_store
    path = f"/campaigns/{digest}"
    app.handle_bytes("GET", path, {})
    assert app.handle_bytes("GET", path, {})[2] == "hit"
    invalidations0 = metrics.counter(
        "data.serve.cache.invalidations"
    ).value
    app.cache.evict_all()
    assert app.response_cache.occupancy == 0
    assert metrics.counter(
        "data.serve.cache.invalidations"
    ).value > invalidations0
    # the next request is a miss again (and repopulates)
    assert app.handle_bytes("GET", path, {})[2] == "miss"
    assert app.handle_bytes("GET", path, {})[2] == "hit"


def test_error_responses_are_never_cached(app, cached_store):
    _, digest = cached_store
    path = f"/campaigns/{digest}/tables/no_such_table"
    status1, _, state1 = app.handle_bytes(
        "GET", path, {"vantage": _vantage(app, digest)}
    )
    status2, _, state2 = app.handle_bytes(
        "GET", path, {"vantage": _vantage(app, digest)}
    )
    assert status1 == status2
    assert status1 != 200
    assert state1 == "miss" and state2 == "miss"


def test_health_and_metrics_bypass_the_cache(app):
    for path in ("/healthz", "/metrics", "/campaigns", "/observers"):
        _, _, state = app.handle_bytes("GET", path, {})
        assert state == "bypass", path


def test_disabled_cache_bypasses_campaign_paths(cached_store):
    store, digest = cached_store
    app = ServeApp(
        store,
        ServeConfig(cache_root=str(store.root), response_cache_entries=0),
    )
    status, _, state = app.handle_bytes("GET", f"/campaigns/{digest}", {})
    assert status == 200
    assert state == "bypass"


def test_verify_cache_hits_detects_and_repairs_poisoned_entry(cached_store):
    store, digest = cached_store
    app = ServeApp(
        store,
        ServeConfig(
            cache_root=str(store.root),
            response_cache_entries=64,
            verify_cache_hits=True,
        ),
    )
    path = f"/campaigns/{digest}"
    _, good, state = app.handle_bytes("GET", path, {})
    assert state == "miss"
    # poison the resident entry behind the app's back
    key = digest, query_digest("GET", path, {}, None)
    with app.response_cache._lock:
        app.response_cache._entries[key] = b'{"poisoned":true}'
    failures0 = metrics.counter("data.serve.cache.verify_failures").value
    status, data, state = app.handle_bytes("GET", path, {})
    assert status == 200
    assert data == good  # the fresh bytes, not the poison
    assert state == "miss"
    assert (
        metrics.counter("data.serve.cache.verify_failures").value
        == failures0 + 1
    )
    # the poisoned campaign's entries were invalidated wholesale
    assert app.response_cache.get(*key) is None


def test_query_digest_is_param_order_independent():
    a = query_digest("GET", "/x", {"b": "2", "a": "1"}, None)
    b = query_digest("GET", "/x", {"a": "1", "b": "2"}, None)
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0


def test_query_digest_separates_distinct_requests():
    base = query_digest("GET", "/x", {"a": "1"}, None)
    assert query_digest("POST", "/x", {"a": "1"}, None) != base
    assert query_digest("GET", "/y", {"a": "1"}, None) != base
    assert query_digest("GET", "/x", {"a": "2"}, None) != base
    assert query_digest("GET", "/x", {"a": "1"}, b"{}") != base
    # body bytes matter literally: whitespace variants key separately
    assert query_digest("GET", "/x", {}, b'{"a":1}') != query_digest(
        "GET", "/x", {}, b'{"a": 1}'
    )


def test_response_cache_lru_eviction_at_capacity():
    evictions0 = metrics.counter("data.serve.cache.evictions").value
    cache = ResponseCache(capacity=2)
    cache.put("c", "q1", b"one")
    cache.put("c", "q2", b"two")
    assert cache.get("c", "q1") == b"one"  # refresh q1's recency
    cache.put("c", "q3", b"three")  # evicts q2, the LRU entry
    assert cache.get("c", "q2") is None
    assert cache.get("c", "q1") == b"one"
    assert cache.get("c", "q3") == b"three"
    assert cache.occupancy == 2
    assert metrics.counter("data.serve.cache.evictions").value == evictions0 + 1


def test_response_cache_invalidate_only_touches_one_campaign():
    cache = ResponseCache(capacity=8)
    cache.put("c1", "q1", b"a")
    cache.put("c1", "q2", b"b")
    cache.put("c2", "q1", b"c")
    assert cache.invalidate("c1") == 2
    assert cache.get("c1", "q1") is None
    assert cache.get("c1", "q2") is None
    assert cache.get("c2", "q1") == b"c"
    assert cache.invalidate("c1") == 0  # idempotent
    assert cache.occupancy == 1
