"""Query core: predicates, pushdown, group-aggregate, helper parity."""

from __future__ import annotations

import pytest

from repro import obs
from repro.data.columnar import columnar_view
from repro.data.query import (
    Aggregate,
    Filter,
    Query,
    converged_speeds,
    dest_asn,
    download_rounds,
    dual_stack_sites,
    mean_speed,
    modal_as_path,
    path_change_rounds,
    run_query,
    scan,
)
from repro.errors import DataError
from repro.net.addresses import AddressFamily

from .test_columnar import populated_db

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


def _counter(name: str) -> float:
    metric = obs.get_registry().get(name)
    return float(getattr(metric, "value", 0.0) or 0.0)


# -- scan --------------------------------------------------------------------


def test_scan_without_filters_returns_every_row():
    table = columnar_view(populated_db()).table("downloads")
    assert scan(table) == list(range(table.n_rows))


def test_scan_filters_and_preserves_round_order():
    cdb = columnar_view(populated_db())
    table = cdb.table("downloads")
    rows = scan(
        table,
        (
            Filter("site_id", "eq", 1),
            Filter("family", "eq", V6.value),
            Filter("converged", "eq", True),
        ),
    )
    assert [table.column("round").get(r) for r in rows] == [0, 2]


def test_scan_pushes_eq_prefix_into_index():
    cdb = columnar_view(populated_db())
    table = cdb.table("downloads")
    before_hits = _counter("data.query.index_hits")
    before_rows = _counter("data.query.rows_scanned")
    rows = scan(table, (Filter("site_id", "eq", 1), Filter("family", "eq", V4.value)))
    assert len(rows) == 3
    assert _counter("data.query.index_hits") == before_hits + 1
    # the index probe examined only the equal range, not the whole table
    assert _counter("data.query.rows_scanned") == before_rows + 3


def test_scan_full_scan_counts_every_row():
    cdb = columnar_view(populated_db())
    table = cdb.table("downloads")
    before_hits = _counter("data.query.index_hits")
    before_rows = _counter("data.query.rows_scanned")
    scan(table, (Filter("converged", "eq", True),))
    assert _counter("data.query.index_hits") == before_hits
    assert _counter("data.query.rows_scanned") == before_rows + table.n_rows


def test_scan_unknown_dictionary_value_matches_nothing():
    table = columnar_view(populated_db()).table("downloads")
    assert scan(table, (Filter("site_id", "eq", 1), Filter("family", "eq", "IPv9"))) == []


def test_scan_unknown_column_fails_loudly():
    table = columnar_view(populated_db()).table("downloads")
    with pytest.raises(DataError, match="no column"):
        scan(table, (Filter("nope", "eq", 1),))


def test_filter_ops():
    table = columnar_view(populated_db()).table("downloads")
    le = scan(table, (Filter("round", "le", 1),))
    ge = scan(table, (Filter("round", "ge", 1),))
    ne = scan(table, (Filter("round", "ne", 1),))
    isin = scan(table, (Filter("round", "in", [0, 2]),))
    assert set(le) | set(ge) == set(range(table.n_rows))
    assert sorted(ne) == sorted(isin)
    with pytest.raises(DataError, match="unknown filter op"):
        Filter("round", "between", 1)
    with pytest.raises(DataError, match="requires a list"):
        Filter("round", "in", 1)


# -- run_query ---------------------------------------------------------------


def test_projection_with_limit_and_truncation():
    cdb = columnar_view(populated_db())
    result = run_query(
        cdb,
        Query(table="downloads", select=("round", "mean_speed"), limit=4),
    )
    assert result.n_rows == 4
    assert result.truncated is True
    assert set(result.columns) == {"round", "mean_speed"}
    assert result.stats["rows_matched"] == 6


def test_group_aggregate():
    cdb = columnar_view(populated_db())
    result = run_query(
        cdb,
        Query(
            table="downloads",
            where=(Filter("converged", "eq", True),),
            group_by=("family",),
            aggregates=(
                Aggregate(op="count", alias="n"),
                Aggregate(op="mean", column="mean_speed"),
                Aggregate(op="max", column="round"),
            ),
        ),
    )
    by_family = dict(zip(result.columns["family"], result.columns["n"]))
    assert by_family == {V4.value: 2, V6.value: 2}
    assert result.columns["mean_mean_speed"] == [101.0, 111.0]
    assert result.stats["groups_emitted"] == 2


def test_query_validation():
    with pytest.raises(DataError, match="require group_by"):
        Query(table="downloads", aggregates=(Aggregate(op="count"),))
    with pytest.raises(DataError, match="mutually exclusive"):
        Query(
            table="downloads",
            select=("round",),
            group_by=("family",),
            aggregates=(Aggregate(op="count"),),
        )
    with pytest.raises(DataError, match="at least one aggregate"):
        Query(table="downloads", group_by=("family",))
    with pytest.raises(DataError, match="positive integer"):
        Query(table="downloads", limit=0)
    with pytest.raises(DataError, match="requires a column"):
        Aggregate(op="mean")


def test_query_from_dict_validates_untrusted_payloads():
    query = Query.from_dict(
        {
            "table": "downloads",
            "vantage": "T",  # serve's routing key; tolerated here
            "where": [{"column": "site_id", "op": "eq", "value": 1}],
            "group_by": ["family"],
            "aggregates": [{"op": "count", "alias": "n"}],
        }
    )
    assert query.table == "downloads"
    assert query.where[0].value == 1

    with pytest.raises(DataError, match="unknown query fields"):
        Query.from_dict({"table": "downloads", "order_by": ["round"]})
    with pytest.raises(DataError, match="'table' string"):
        Query.from_dict({"table": 7})
    with pytest.raises(DataError, match="must be a list"):
        Query.from_dict({"table": "downloads", "where": "site_id=1"})
    with pytest.raises(DataError, match="must be an object"):
        Query.from_dict({"table": "downloads", "where": ["site_id=1"]})


# -- domain-helper parity ----------------------------------------------------


def test_helpers_match_row_object_methods():
    db = populated_db()
    cdb = columnar_view(db)
    for family in (V4, V6):
        assert converged_speeds(cdb, 1, family) == db.speeds(1, family)
        assert download_rounds(cdb, 1, family) == db.download_rounds(1, family)
        assert dest_asn(cdb, 1, family) == db.dest_asn(1, family)
        assert modal_as_path(cdb, 1, family) == db.as_path(1, family)
        assert path_change_rounds(cdb, 1, family) == db.path_change_rounds(1, family)
    assert dual_stack_sites(cdb) == db.dual_stack_sites()
    # absent site
    assert dest_asn(cdb, 99, V4) is None
    assert modal_as_path(cdb, 99, V4) is None
    assert mean_speed(cdb, 99, V4) is None


def test_helper_parity_on_campaign(small_campaign):
    for _, db in small_campaign.repository.items():
        cdb = columnar_view(db)
        assert dual_stack_sites(cdb) == db.dual_stack_sites()
        for site_id in db.dual_stack_sites()[:10]:
            for family in (V4, V6):
                assert converged_speeds(cdb, site_id, family) == db.speeds(
                    site_id, family
                )
                assert dest_asn(cdb, site_id, family) == db.dest_asn(
                    site_id, family
                )
                assert modal_as_path(cdb, site_id, family) == db.as_path(
                    site_id, family
                )
                assert path_change_rounds(
                    cdb, site_id, family
                ) == db.path_change_rounds(site_id, family)


def test_modal_path_tie_break_latest_wins():
    from repro.monitor.database import MeasurementDatabase, PathObservation

    db = MeasurementDatabase(vantage_name="T")
    for round_idx, path in enumerate([(1, 2), (3, 4), (3, 4), (1, 2)]):
        db.add_path(PathObservation(1, round_idx, V4, dest_asn=9, as_path=path))
    assert modal_as_path(columnar_view(db), 1, V4) == db.as_path(1, V4) == (1, 2)
