"""Serving under concurrency: single-flight loads, LRU safety, socket soak.

The first half unit-tests :class:`CampaignCache` against a fake store
(deterministic, no campaign needed): the latent race this PR fixes was
``ThreadingHTTPServer`` mutating an unlocked ``OrderedDict``, and the
regression tests hammer exactly that shape.  The second half is the real
thing — a live ``repro serve --workers`` socket soaked by concurrent
clients, every response byte-diffed against the direct single-threaded
computation.
"""

from __future__ import annotations

import threading
import time
import types
import urllib.request

import pytest

from repro.data.loadtest import generate_mix
from repro.data.serve import (
    CampaignCache,
    ResponseCache,
    ServeApp,
    ServeConfig,
    canonical_json,
    make_server,
)
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore, config_digest
from repro.obs import metrics


def _campaign_loads() -> float:
    return metrics.counter("data.serve.campaign_loads").value


class _FakeStore:
    """A store whose loads are slow, counted, and deterministic."""

    def __init__(self, digests, delay: float = 0.0) -> None:
        self.digests = set(digests)
        self.delay = delay
        self.calls: list[str] = []
        self._lock = threading.Lock()

    def load_columnar_entry(self, digest: str):
        with self._lock:
            self.calls.append(digest)
        if self.delay:
            time.sleep(self.delay)
        if digest not in self.digests:
            return None
        meta = {"kind": "weekly", "seed": 1, "repository_digest": digest}
        columnar = types.SimpleNamespace(vantages={}, databases={})
        return meta, columnar


def test_cold_digest_loads_exactly_once_under_hammer():
    """16 threads race one cold digest: one store load, one shared object."""
    store = _FakeStore({"d0"}, delay=0.05)
    cache = CampaignCache(store, capacity=4)
    before = _campaign_loads()
    results = [None] * 16
    barrier = threading.Barrier(16)

    def hammer(i: int) -> None:
        barrier.wait()
        results[i] = cache.get("d0")

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(16)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.calls == ["d0"]
    assert _campaign_loads() == before + 1
    assert all(r is results[0] for r in results)
    assert cache.occupancy == 1


def test_failed_load_propagates_to_all_waiters_and_allows_retry():
    store = _FakeStore(set(), delay=0.02)  # every digest unknown
    cache = CampaignCache(store, capacity=4)
    errors = []
    barrier = threading.Barrier(8)

    def hammer() -> None:
        barrier.wait()
        try:
            cache.get("missing")
        except Exception as exc:
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(errors) == 8
    # the flight is cleaned up: a later request tries the store again
    n_before = len(store.calls)
    with pytest.raises(Exception):
        cache.get("missing")
    assert len(store.calls) == n_before + 1


def test_lru_thrash_from_many_threads_stays_consistent():
    """Eviction churn from 8 threads: no corruption, bounded occupancy."""
    digests = [f"d{i}" for i in range(6)]
    store = _FakeStore(digests)
    evicted: list[str] = []
    evict_lock = threading.Lock()

    def on_evict(digest: str) -> None:
        with evict_lock:
            evicted.append(digest)

    cache = CampaignCache(store, capacity=2, on_evict=on_evict)

    def worker(offset: int) -> None:
        for i in range(200):
            digest = digests[(i + offset) % len(digests)]
            campaign = cache.get(digest)
            assert campaign.digest == digest

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.occupancy <= 2
    # every load was for a known digest, every eviction was a real entry
    assert set(store.calls) <= set(digests)
    assert set(evicted) <= set(digests)
    # conservation: entries loaded == entries evicted + entries resident
    assert len(store.calls) == len(evicted) + cache.occupancy


def test_campaign_eviction_invalidates_response_cache():
    store = _FakeStore({"a", "b", "c"})
    responses = ResponseCache(capacity=16)
    cache = CampaignCache(store, capacity=1, on_evict=responses.invalidate)
    cache.get("a")
    responses.put("a", "q1", b"payload-a")
    assert responses.get("a", "q1") == b"payload-a"
    cache.get("b")  # evicts campaign "a"
    assert responses.get("a", "q1") is None
    assert responses.occupancy == 0


# ---------------------------------------------------------------------------
# the real socket soak
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def soak_store(tmp_path_factory, small_cfg, small_campaign):
    store = CampaignStore(tmp_path_factory.mktemp("soak-store"))
    store.save(
        small_cfg, small_campaign.repository, small_campaign.reports, kind=WEEKLY
    )
    return store, config_digest(small_cfg, WEEKLY)


def _site_ids(store, digest) -> list[int]:
    _, columnar = store.load_columnar_entry(digest)
    vantage = sorted(columnar.vantages)[0]
    downloads = columnar.databases[vantage].table("downloads")
    column = downloads.columns["site_id"]
    return sorted({column.get(i) for i in range(downloads.n_rows)})


def test_soak_workers_byte_parity(soak_store, small_campaign):
    """8 concurrent clients against ``--workers 4``: every single response
    byte-identical to the direct single-threaded computation, with
    cache-hit verification enabled on the server the whole time."""
    store, digest = soak_store
    vantages = sorted(small_campaign.repository.vantage_names)
    mix = generate_mix(
        digest,
        vantages,
        _site_ids(store, digest),
        n_requests=160,
        seed=7,
    )

    # the expected bytes, computed with no server and no caches at all
    direct_app = ServeApp(
        store,
        ServeConfig(
            cache_root=str(store.root), workers=0, response_cache_entries=0
        ),
    )
    expected = {}
    for request in mix.requests:
        key = (request.method, request.path, request.params, request.body)
        if key not in expected:
            status, payload = direct_app.handle(
                request.method,
                request.path,
                dict(request.params),
                request.body,
            )
            assert status == 200, payload
            expected[key] = canonical_json(payload)

    verify_failures = metrics.counter("data.serve.cache.verify_failures")
    failures_before = verify_failures.value
    hits_before = metrics.counter("data.serve.cache.hits").value

    server = make_server(
        ServeConfig(
            port=0,
            cache_root=str(store.root),
            workers=4,
            verify_cache_hits=True,
        ),
        store,
    )
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{port}"
    n_clients = 8
    mismatches: list[tuple[int, str]] = []
    lock = threading.Lock()

    def client(worker: int) -> None:
        for index in range(worker, len(mix.requests), n_clients):
            request = mix.requests[index]
            req = urllib.request.Request(
                request.url(base), data=request.body, method=request.method
            )
            with urllib.request.urlopen(req, timeout=30) as response:
                data = response.read()
                state = response.headers.get("X-Repro-Response-Cache")
            key = (
                request.method,
                request.path,
                request.params,
                request.body,
            )
            if data != expected[key]:
                with lock:
                    mismatches.append((index, request.path))
            assert state in {"hit", "miss", "bypass"}

    try:
        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.shutdown()
        server.server_close()

    assert mismatches == []
    # hit verification ran on a live cache and never tripped
    assert verify_failures.value == failures_before
    assert metrics.counter("data.serve.cache.hits").value > hits_before


def test_pooled_server_bounded_workers_still_serves_more_clients(soak_store):
    """More clients than workers: the pool queues instead of deadlocking."""
    store, digest = soak_store
    server = make_server(
        ServeConfig(port=0, cache_root=str(store.root), workers=2),
        store,
    )
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{port}"
    statuses: list[int] = []
    lock = threading.Lock()

    def client() -> None:
        for _ in range(5):
            with urllib.request.urlopen(f"{base}/healthz", timeout=30) as r:
                with lock:
                    statuses.append(r.status)

    try:
        threads = [threading.Thread(target=client) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        server.shutdown()
        server.server_close()
    assert statuses == [200] * 30
