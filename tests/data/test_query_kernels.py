"""Kernelized query path vs the row-at-a-time reference.

The typed-array kernels behind ``scan``/``gather``/group-aggregate must
be invisible: for every query shape the result payload is byte-diffed
(canonical JSON) against the reference interpreter kept behind
``REPRO_QUERY_KERNELS=0``, and the ``data.query.*`` work counters must
move by exactly the same amounts.  Error behaviour is part of the
contract too — an incomparable predicate raises the same structured
:class:`DataError` from both paths.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.data.columnar import columnar_view
from repro.data.query import (
    Aggregate,
    Filter,
    Query,
    dual_stack_sites,
    kernels_enabled,
    run_query,
)
from repro.errors import DataError
from repro.net.addresses import AddressFamily

from .test_columnar import populated_db

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

COUNTERS = (
    "data.query.scans",
    "data.query.rows_scanned",
    "data.query.index_hits",
    "data.query.groups_emitted",
)


def _snapshot() -> dict:
    registry = obs.get_registry()
    return {
        name: float(getattr(registry.get(name), "value", 0.0) or 0.0)
        for name in COUNTERS
    }


def _delta(before: dict, after: dict) -> dict:
    return {name: after[name] - before[name] for name in COUNTERS}


#: every query shape the serve layer can route: each filter op over
#: i64/f64/bool/str/dict columns, index pushdown, projections, limits,
#: single- and multi-key group-aggregates with every aggregate op.
QUERIES = {
    "full-table": Query(table="downloads"),
    "index-pushdown": Query(
        table="downloads",
        where=(Filter("site_id", "eq", 1), Filter("family", "eq", V6.value)),
    ),
    "i64-ne": Query(table="downloads", where=(Filter("round", "ne", 1),)),
    "i64-lt": Query(table="downloads", where=(Filter("round", "lt", 2),)),
    "i64-le": Query(table="downloads", where=(Filter("round", "le", 1),)),
    "i64-gt": Query(table="downloads", where=(Filter("round", "gt", 0),)),
    "i64-ge": Query(table="downloads", where=(Filter("round", "ge", 2),)),
    "i64-in": Query(table="downloads", where=(Filter("round", "in", [0, 2]),)),
    "f64-gt": Query(
        table="downloads", where=(Filter("mean_speed", "gt", 105.0),)
    ),
    "bool-eq-true": Query(
        table="downloads", where=(Filter("converged", "eq", True),)
    ),
    "bool-eq-false": Query(
        table="downloads", where=(Filter("converged", "eq", False),)
    ),
    "str-eq": Query(table="dns", where=(Filter("name", "eq", "s1"),)),
    "dict-full-scan": Query(
        table="downloads", where=(Filter("family", "eq", V4.value),)
    ),
    "dict-unknown-value": Query(
        table="downloads", where=(Filter("family", "eq", "IPv9"),)
    ),
    "dict-in": Query(
        table="faults", where=(Filter("kind", "in", ["timeout", "reset"]),)
    ),
    "dict-list-values": Query(
        table="paths", where=(Filter("as_path", "eq", [10, 20, 30]),)
    ),
    "projection-limit": Query(
        table="downloads", select=("round", "mean_speed"), limit=4
    ),
    "limit-one": Query(table="downloads", limit=1),
    "group-single-key": Query(
        table="downloads",
        where=(Filter("converged", "eq", True),),
        group_by=("family",),
        aggregates=(
            Aggregate(op="count", alias="n"),
            Aggregate(op="mean", column="mean_speed"),
            Aggregate(op="min", column="round"),
            Aggregate(op="max", column="round"),
            Aggregate(op="sum", column="page_bytes"),
        ),
    ),
    "group-multi-key": Query(
        table="downloads",
        group_by=("site_id", "family"),
        aggregates=(Aggregate(op="count", alias="n"),),
    ),
    "group-empty-input": Query(
        table="downloads",
        where=(Filter("site_id", "eq", 999),),
        group_by=("family",),
        aggregates=(Aggregate(op="count", alias="n"),),
    ),
    "empty-table": Query(table="dns_counts"),
}


def _run_in_mode(mode: str, query: Query, monkeypatch) -> tuple[bytes, dict]:
    monkeypatch.setenv("REPRO_QUERY_KERNELS", mode)
    assert kernels_enabled() is (mode != "0")
    cdb = columnar_view(populated_db())
    before = _snapshot()
    payload = run_query(cdb, query).to_payload()
    return (
        json.dumps(payload, sort_keys=True).encode("utf-8"),
        _delta(before, _snapshot()),
    )


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_kernel_matches_reference_byte_for_byte(name, monkeypatch):
    query = QUERIES[name]
    reference_bytes, reference_work = _run_in_mode("0", query, monkeypatch)
    kernel_bytes, kernel_work = _run_in_mode("1", query, monkeypatch)
    assert kernel_bytes == reference_bytes
    assert kernel_work == reference_work


def test_error_parity_for_incomparable_predicates(monkeypatch):
    query = Query(table="downloads", where=(Filter("mean_speed", "lt", "x"),))
    messages = []
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_QUERY_KERNELS", mode)
        cdb = columnar_view(populated_db())
        with pytest.raises(DataError) as err:
            run_query(cdb, query)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "incomparable" in messages[0]


def test_error_parity_for_incomparable_dict_predicates(monkeypatch):
    # the dict-column truth table is built lazily, so the error still
    # surfaces on the same first offending row as the reference walk
    query = Query(table="faults", where=(Filter("kind", "lt", 3),))
    messages = []
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_QUERY_KERNELS", mode)
        cdb = columnar_view(populated_db())
        with pytest.raises(DataError) as err:
            run_query(cdb, query)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "incomparable" in messages[0]


def test_helpers_agree_across_modes(monkeypatch):
    results = []
    for mode in ("0", "1"):
        monkeypatch.setenv("REPRO_QUERY_KERNELS", mode)
        results.append(dual_stack_sites(columnar_view(populated_db())))
    assert results[0] == results[1]


def test_kernels_on_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_QUERY_KERNELS", raising=False)
    assert kernels_enabled() is True
