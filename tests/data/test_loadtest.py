"""The loadtest harness: mix determinism, Zipf shape, gates, replay.

Hypothesis drives the reproducibility and monotonicity properties over
many (seed, size, skew) combinations — both are *structural* guarantees
of the quota-based generator, so the properties are exact, not
statistical.  The replay half runs a real in-process server and checks
the report against the ``repro.perf`` serve gates.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.columnar import TABLE_SCHEMAS
from repro.data.loadtest import (
    LoadtestOptions,
    Mix,
    PlannedRequest,
    build_templates,
    generate_mix,
    run_loadtest,
    write_serve_report,
    read_serve_report,
    zipf_rank_counts,
    zipf_weights,
)
from repro.data.query import Query
from repro.data.serve import ServeConfig, make_server
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore, config_digest
from repro.errors import ConfigError, DataError
from repro.perf import (
    MIN_SERVE_CACHE_HIT_FRACTION,
    compare_serve_reports,
    evaluate_serve_gates,
    serve_wall_clock_deltas,
)

DIGEST = "d" * 64
VANTAGES = ["Penn", "Zurich"]
SITE_IDS = list(range(12))


# ---------------------------------------------------------------------------
# generator properties (hypothesis)
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_requests=st.integers(min_value=1, max_value=400),
    zipf_s=st.floats(min_value=0.5, max_value=2.5),
)
def test_same_seed_same_mix(seed, n_requests, zipf_s):
    """Same (campaign, seed, size, skew) ⇒ identical sequence + digest."""
    a = generate_mix(DIGEST, VANTAGES, SITE_IDS, n_requests, seed, zipf_s)
    b = generate_mix(DIGEST, VANTAGES, SITE_IDS, n_requests, seed, zipf_s)
    assert a.digest == b.digest
    assert a.requests == b.requests
    assert [r.to_payload() for r in a.requests] == [
        r.to_payload() for r in b.requests
    ]


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_requests=st.integers(min_value=1, max_value=400),
)
def test_different_seed_different_order(seed, n_requests):
    """Seeds only shuffle: the multiset of requests is seed-invariant."""
    a = generate_mix(DIGEST, VANTAGES, SITE_IDS, n_requests, seed)
    b = generate_mix(DIGEST, VANTAGES, SITE_IDS, n_requests, seed + 1)
    key = lambda r: (r.rank, r.method, r.path, r.params, r.body)  # noqa: E731
    assert sorted(map(key, a.requests)) == sorted(map(key, b.requests))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=200),
    s=st.floats(min_value=0.1, max_value=4.0),
)
def test_zipf_weights_strictly_decreasing_and_normalised(n, s):
    weights = zipf_weights(n, s)
    assert len(weights) == n
    assert all(a > b for a, b in zip(weights, weights[1:]))
    assert abs(sum(weights) - 1.0) < 1e-9


@settings(max_examples=60, deadline=None)
@given(
    n_requests=st.integers(min_value=1, max_value=5000),
    n_ranks=st.integers(min_value=1, max_value=150),
    s=st.floats(min_value=0.1, max_value=4.0),
)
def test_zipf_rank_counts_monotone_and_exhaustive(n_requests, n_ranks, s):
    """Counts are non-increasing by rank and sum exactly to n_requests."""
    counts = zipf_rank_counts(n_requests, n_ranks, s)
    assert len(counts) == n_ranks
    assert sum(counts) == n_requests
    assert all(c >= 0 for c in counts)
    assert all(a >= b for a, b in zip(counts, counts[1:]))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_requests=st.integers(min_value=1, max_value=400),
    zipf_s=st.floats(min_value=0.5, max_value=2.5),
)
def test_mix_rank_frequencies_match_quota(seed, n_requests, zipf_s):
    """The generated sequence realises the quota counts *exactly*."""
    mix = generate_mix(DIGEST, VANTAGES, SITE_IDS, n_requests, seed, zipf_s)
    observed = [0] * mix.n_templates
    for request in mix.requests:
        observed[request.rank] += 1
    assert observed == mix.rank_counts
    assert observed == zipf_rank_counts(n_requests, mix.n_templates, zipf_s)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_generated_queries_valid_against_table_schemas(seed):
    """Every POST body in a mix parses as a valid repro.data Query."""
    mix = generate_mix(DIGEST, VANTAGES, SITE_IDS, 120, seed)
    n_queries = 0
    for request in mix.requests:
        if request.body is None:
            continue
        payload = json.loads(request.body.decode("utf-8"))
        query = Query.from_dict(payload)
        assert query.table in TABLE_SCHEMAS
        assert payload["vantage"] in VANTAGES
        n_queries += 1
    assert n_queries > 0


# ---------------------------------------------------------------------------
# template universe
# ---------------------------------------------------------------------------


def test_template_universe_is_deterministic_and_ranked():
    a = build_templates(DIGEST, VANTAGES, SITE_IDS)
    b = build_templates(DIGEST, list(reversed(VANTAGES)), SITE_IDS)
    assert a == b  # vantage order is canonicalised
    kinds = [t.kind for t in a]
    # analytical hot set first, table pages after, point queries last
    assert kinds[0] == "query"
    assert "classify" in kinds[: 3 * len(VANTAGES)]
    assert kinds[-1] == "query"
    # every table appears for every vantage
    n_pages = sum(1 for t in a if t.kind == "table_page")
    assert n_pages == len(VANTAGES) * len(TABLE_SCHEMAS)


def test_template_universe_requires_vantages():
    with pytest.raises(DataError):
        build_templates(DIGEST, [], SITE_IDS)


def test_generate_mix_rejects_nonpositive_inputs():
    with pytest.raises(DataError):
        generate_mix(DIGEST, VANTAGES, SITE_IDS, 0, seed=1)
    with pytest.raises(DataError):
        zipf_weights(0, 1.0)
    with pytest.raises(DataError):
        zipf_weights(5, 0.0)


def test_loadtest_options_validation():
    with pytest.raises(ConfigError):
        LoadtestOptions(clients=0)
    with pytest.raises(ConfigError):
        LoadtestOptions(target_qps=0.0)
    with pytest.raises(ConfigError):
        LoadtestOptions(parity_every=-1)
    options = LoadtestOptions(clients=4, target_qps=100.0, parity_every=5)
    assert options.clients == 4


def test_planned_request_url_rendering():
    request = PlannedRequest(
        kind="table_page",
        method="GET",
        path="/campaigns/abc/tables/dns",
        params=(("vantage", "Penn"), ("offset", "0")),
    )
    url = request.url("http://h:1")
    assert url == "http://h:1/campaigns/abc/tables/dns?vantage=Penn&offset=0"
    assert PlannedRequest(kind="d", method="GET", path="/x").url("b") == "b/x"


# ---------------------------------------------------------------------------
# replay + gates against a real in-process server
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def loadtest_env(tmp_path_factory, small_cfg, small_campaign):
    store = CampaignStore(tmp_path_factory.mktemp("loadtest-store"))
    store.save(
        small_cfg, small_campaign.repository, small_campaign.reports, kind=WEEKLY
    )
    digest = config_digest(small_cfg, WEEKLY)
    _, columnar = store.load_columnar_entry(digest)
    vantages = sorted(columnar.vantages)
    downloads = columnar.databases[vantages[0]].table("downloads")
    column = downloads.columns["site_id"]
    site_ids = sorted({column.get(i) for i in range(downloads.n_rows)})
    server = make_server(
        ServeConfig(port=0, cache_root=str(store.root), workers=2), store
    )
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield store, digest, vantages, site_ids, base
    server.shutdown()
    server.server_close()


@pytest.fixture(scope="module")
def serve_report(loadtest_env):
    store, digest, vantages, site_ids, base = loadtest_env
    mix = generate_mix(digest, vantages, site_ids, n_requests=150, seed=11)
    report = run_loadtest(
        base,
        mix,
        LoadtestOptions(clients=6, parity_every=10),
        store=store,
        meta={"scale": 0.4},
    )
    return mix, report


def test_run_loadtest_report_shape_and_gates(serve_report):
    mix, report = serve_report
    assert report["schema"] == "repro.perf/serve-1"
    assert report["meta"]["n_requests"] == 150
    assert report["mix"]["digest"] == mix.digest
    assert report["errors"] == {"n_5xx": 0, "n_4xx": 0, "n_transport": 0}
    assert report["parity"]["sampled"] > 0
    assert report["parity"]["mismatched"] == 0
    assert report["parity"]["verified"] == report["parity"]["sampled"]
    assert report["cache"]["hit_fraction"] >= MIN_SERVE_CACHE_HIT_FRACTION
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p95"]
    assert report["latency_ms"]["p95"] <= report["latency_ms"]["p99"]
    cold = report["cold_load"]
    assert set(cold) == {"count", "total_ms", "mean_ms", "lifetime_max_ms"}
    assert cold["count"] >= 0 and cold["total_ms"] >= 0.0
    gates = evaluate_serve_gates(report)
    failed = [g for g in gates if not g.passed]
    assert failed == [], failed


def test_serve_gates_fail_on_bad_reports(serve_report):
    _, report = serve_report
    broken = json.loads(json.dumps(report))
    broken["errors"]["n_5xx"] = 3
    broken["parity"]["mismatched"] = 1
    broken["cache"]["hit_fraction"] = 0.1
    gates = {g.gate: g.passed for g in evaluate_serve_gates(broken)}
    assert gates["zero_5xx"] is False
    assert gates["byte_parity"] is False
    assert gates["cache_hit_fraction"] is False


def test_compare_serve_reports_baseline_roundtrip(serve_report, tmp_path):
    _, report = serve_report
    baseline_path = tmp_path / "BENCH_serve.json"
    write_serve_report(report, baseline_path)
    baseline = read_serve_report(baseline_path)
    gates = evaluate_serve_gates(baseline)
    assert all(g.passed for g in gates)
    comparisons = compare_serve_reports(report, baseline)
    assert {c.gate for c in comparisons} >= {
        "baseline_config_matches",
        "mix_digest",
        "mix_kinds",
    }
    failed = [c for c in comparisons if not c.passed]
    assert failed == [], failed
    # informational wall-clock lines always render, never gate
    lines = serve_wall_clock_deltas(report, baseline)
    assert any("latency" in line or "p50" in line for line in lines)


def test_compare_serve_reports_detects_drift(serve_report):
    _, report = serve_report
    # a different mix digest fails the sequence comparison
    tampered = json.loads(json.dumps(report))
    tampered["mix"]["digest"] = "0" * 64
    results = {c.gate: c.passed for c in compare_serve_reports(report, tampered)}
    assert results["mix_digest"] is False
    # a different seed makes the comparison meaningless: the config gate
    # fails and is the only result (nothing downstream is comparable)
    reseeded = json.loads(json.dumps(report))
    reseeded["meta"]["seed"] = 999
    comparisons = compare_serve_reports(report, reseeded)
    assert [c.gate for c in comparisons] == ["baseline_config_matches"]
    assert comparisons[0].passed is False


def test_paced_replay_respects_target_qps(loadtest_env):
    """Pacing to a low QPS stretches the replay's wall clock."""
    store, digest, vantages, site_ids, base = loadtest_env
    mix = generate_mix(digest, vantages, site_ids, n_requests=20, seed=3)
    report = run_loadtest(
        base,
        mix,
        LoadtestOptions(clients=4, target_qps=40.0, parity_every=0),
        store=None,
    )
    # 20 requests at 40 rps ⇒ ≥ ~0.475s of schedule alone
    assert report["wall_seconds"] >= 0.4
    assert report["errors"]["n_transport"] == 0
    assert report["parity"]["sampled"] == 0


def test_mix_digest_matches_known_vector():
    """The sealed digest is stable across processes (regression pin).

    If this moves, every checked-in BENCH_serve.json baseline silently
    stops comparing — bump them together, deliberately.
    """
    mix = generate_mix(DIGEST, VANTAGES, SITE_IDS, 40, seed=11)
    again = generate_mix(DIGEST, VANTAGES, SITE_IDS, 40, seed=11)
    assert mix.digest == again.digest
    assert len(mix.digest) == 64
    payload = Mix(
        requests=mix.requests,
        seed=mix.seed,
        zipf_s=mix.zipf_s,
        campaign_digest=mix.campaign_digest,
        n_templates=mix.n_templates,
    )
    assert payload.digest == mix.digest  # digest is derived, not stored
