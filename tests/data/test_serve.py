"""The serving API: endpoints, parity, and structured error handling."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.serve import (
    ServeApp,
    ServeConfig,
    canonical_json,
    classification_payload,
    make_server,
)
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore, config_digest
from repro.errors import DataError


@pytest.fixture(scope="module")
def served_store(tmp_path_factory, small_cfg, small_campaign):
    store = CampaignStore(tmp_path_factory.mktemp("serve-store"))
    store.save(
        small_cfg, small_campaign.repository, small_campaign.reports, kind=WEEKLY
    )
    return store, config_digest(small_cfg, WEEKLY)


@pytest.fixture(scope="module")
def app(served_store):
    store, _ = served_store
    return ServeApp(store, ServeConfig(cache_root=str(store.root)))


def test_healthz(app):
    assert app.handle("GET", "/healthz", {}) == (200, {"status": "ok"})


def test_campaign_listing(app, served_store):
    _, digest = served_store
    status, payload = app.handle("GET", "/campaigns", {})
    assert status == 200
    assert payload["n_campaigns"] == 1
    assert payload["campaigns"][0]["digest"] == digest


def test_campaign_detail(app, served_store, small_campaign):
    _, digest = served_store
    status, payload = app.handle("GET", f"/campaigns/{digest}", {})
    assert status == 200
    names = set(small_campaign.repository.vantage_names)
    assert set(payload["vantages"]) == names
    vantage = sorted(names)[0]
    db = small_campaign.repository.database(vantage)
    tables = payload["vantages"][vantage]["tables"]
    assert tables["downloads"] == len(db.to_dict()["downloads"])


def test_table_page(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    status, payload = app.handle(
        "GET",
        f"/campaigns/{digest}/tables/downloads",
        {"vantage": vantage, "offset": "2", "limit": "3"},
    )
    assert status == 200
    assert payload["n_rows"] == 3
    assert payload["offset"] == 2
    assert payload["truncated"] is True
    wire = small_campaign.repository.database(vantage).to_dict()["downloads"]
    assert payload["columns"]["site_id"] == [row[0] for row in wire[2:5]]


def test_query_endpoint_matches_direct_execution(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    body = json.dumps(
        {
            "vantage": vantage,
            "table": "downloads",
            "where": [{"column": "converged", "op": "eq", "value": True}],
            "group_by": ["family"],
            "aggregates": [{"op": "count", "alias": "n"}],
        }
    ).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 200
    from repro.data.columnar import columnar_view
    from repro.data.query import Query, run_query

    db = small_campaign.repository.database(vantage)
    direct = run_query(
        columnar_view(db),
        Query.from_dict(json.loads(body)),
    )
    assert payload["columns"] == direct.columns


def test_classify_endpoint_is_byte_identical(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/analysis/classify", {"vantage": vantage}
    )
    assert status == 200
    direct = classification_payload(
        small_campaign.repository.database(vantage)
    )
    assert canonical_json(payload) == canonical_json(direct)


def test_structured_errors(app, served_store):
    _, digest = served_store
    status, payload = app.handle("GET", "/campaigns/deadbeef", {})
    assert status == 404
    assert payload["error"]["code"] == "not_found"

    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/tables/downloads", {"vantage": "nope"}
    )
    assert status == 404

    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/tables/downloads", {}
    )
    assert status == 400  # vantage is required

    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, b"not json"
    )
    assert status == 400
    assert "JSON" in payload["error"]["message"]

    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, json.dumps({"table": 7}).encode()
    )
    assert status == 400

    status, payload = app.handle("POST", "/healthz", {}, b"{}")
    assert status == 405

    status, payload = app.handle("GET", "/nope", {})
    assert status == 404


def test_oversized_limit_rejected(served_store, small_campaign):
    store, digest = served_store
    app = ServeApp(store, ServeConfig(cache_root=str(store.root), max_rows=10))
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    body = json.dumps(
        {"vantage": vantage, "table": "downloads", "limit": 50}
    ).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 413
    assert payload["error"]["code"] == "too_large"
    # without an explicit limit the server clamps instead of failing
    body = json.dumps({"vantage": vantage, "table": "downloads"}).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 200
    assert payload["n_rows"] == 10
    assert payload["truncated"] is True


def test_serve_config_validation():
    with pytest.raises(DataError):
        ServeConfig(max_rows=0)
    with pytest.raises(DataError):
        ServeConfig(lru_campaigns=0)


def test_lru_eviction(served_store):
    store, digest = served_store
    app = ServeApp(store, ServeConfig(cache_root=str(store.root)))
    app.cache.capacity = 1
    first = app.cache.get(digest)
    assert app.cache.get(digest) is first  # hit
    app.cache._entries.clear()
    assert app.cache.get(digest) is not first  # reloaded after eviction


def test_over_http(served_store, small_campaign):
    """One real socket round trip through ThreadingHTTPServer."""
    store, digest = served_store
    server = make_server(
        ServeConfig(port=0, cache_root=str(store.root)), store
    )
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = f"http://127.0.0.1:{port}"
        with urllib.request.urlopen(f"{base}/healthz") as response:
            assert response.status == 200
            assert json.loads(response.read()) == {"status": "ok"}
        vantage = sorted(small_campaign.repository.vantage_names)[0]
        url = f"{base}/campaigns/{digest}/analysis/classify?vantage={vantage}"
        with urllib.request.urlopen(url) as response:
            served = response.read()
        direct = canonical_json(
            classification_payload(small_campaign.repository.database(vantage))
        )
        assert served == direct
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/campaigns/deadbeef")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == "not_found"
    finally:
        server.shutdown()
        server.server_close()
