"""The serving API: endpoints, parity, and structured error handling."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.data.serve import (
    ServeApp,
    ServeConfig,
    canonical_json,
    classification_payload,
    make_server,
)
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore, config_digest
from repro.errors import ConfigError, DataError
from repro.obs import metrics


@pytest.fixture(scope="module")
def served_store(tmp_path_factory, small_cfg, small_campaign):
    store = CampaignStore(tmp_path_factory.mktemp("serve-store"))
    store.save(
        small_cfg, small_campaign.repository, small_campaign.reports, kind=WEEKLY
    )
    return store, config_digest(small_cfg, WEEKLY)


@pytest.fixture(scope="module")
def app(served_store):
    store, _ = served_store
    return ServeApp(store, ServeConfig(cache_root=str(store.root)))


def test_healthz(app):
    status, payload = app.handle("GET", "/healthz", {})
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["lru"]["capacity"] == app.cache.capacity
    assert payload["lru"]["occupancy"] == app.cache.occupancy


def test_healthz_reports_lru_occupancy(served_store):
    store, digest = served_store
    app = ServeApp(store, ServeConfig(cache_root=str(store.root)))
    assert app.handle("GET", "/healthz", {})[1]["lru"]["occupancy"] == 0
    app.cache.get(digest)
    assert app.handle("GET", "/healthz", {})[1]["lru"]["occupancy"] == 1


def test_metrics_endpoint(app):
    before = metrics.counter("data.serve.requests").value
    metrics.counter("data.serve.requests").inc()
    status, payload = app.handle("GET", "/metrics", {})
    assert status == 200
    exported = payload["metrics"]
    assert exported["data.serve.requests"]["type"] == "counter"
    assert exported["data.serve.requests"]["value"] == before + 1
    # the payload is canonical-JSON clean (round trips bit-identically)
    assert json.loads(canonical_json(payload)) == payload


def test_campaign_listing(app, served_store):
    _, digest = served_store
    status, payload = app.handle("GET", "/campaigns", {})
    assert status == 200
    assert payload["n_campaigns"] == 1
    assert payload["campaigns"][0]["digest"] == digest


def test_campaign_detail(app, served_store, small_campaign):
    _, digest = served_store
    status, payload = app.handle("GET", f"/campaigns/{digest}", {})
    assert status == 200
    names = set(small_campaign.repository.vantage_names)
    assert set(payload["vantages"]) == names
    vantage = sorted(names)[0]
    db = small_campaign.repository.database(vantage)
    tables = payload["vantages"][vantage]["tables"]
    assert tables["downloads"] == len(db.to_dict()["downloads"])


def test_table_page(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    status, payload = app.handle(
        "GET",
        f"/campaigns/{digest}/tables/downloads",
        {"vantage": vantage, "offset": "2", "limit": "3"},
    )
    assert status == 200
    assert payload["n_rows"] == 3
    assert payload["offset"] == 2
    assert payload["truncated"] is True
    wire = small_campaign.repository.database(vantage).to_dict()["downloads"]
    assert payload["columns"]["site_id"] == [row[0] for row in wire[2:5]]


def test_query_endpoint_matches_direct_execution(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    body = json.dumps(
        {
            "vantage": vantage,
            "table": "downloads",
            "where": [{"column": "converged", "op": "eq", "value": True}],
            "group_by": ["family"],
            "aggregates": [{"op": "count", "alias": "n"}],
        }
    ).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 200
    from repro.data.columnar import columnar_view
    from repro.data.query import Query, run_query

    db = small_campaign.repository.database(vantage)
    direct = run_query(
        columnar_view(db),
        Query.from_dict(json.loads(body)),
    )
    assert payload["columns"] == direct.columns


def test_classify_endpoint_is_byte_identical(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/analysis/classify", {"vantage": vantage}
    )
    assert status == 200
    direct = classification_payload(
        small_campaign.repository.database(vantage)
    )
    assert canonical_json(payload) == canonical_json(direct)


def test_structured_errors(app, served_store):
    _, digest = served_store
    status, payload = app.handle("GET", "/campaigns/deadbeef", {})
    assert status == 404
    assert payload["error"]["code"] == "not_found"

    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/tables/downloads", {"vantage": "nope"}
    )
    assert status == 404

    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/tables/downloads", {}
    )
    assert status == 400  # vantage is required

    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, b"not json"
    )
    assert status == 400
    assert "JSON" in payload["error"]["message"]

    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, json.dumps({"table": 7}).encode()
    )
    assert status == 400

    status, payload = app.handle("POST", "/healthz", {}, b"{}")
    assert status == 405

    status, payload = app.handle("GET", "/nope", {})
    assert status == 404


def _serve_errors() -> float:
    return metrics.counter("data.serve.errors").value


def test_unknown_campaign_digest_counts_error(app):
    before = _serve_errors()
    status, payload = app.handle("GET", "/campaigns/deadbeef", {})
    assert status == 404
    assert payload["error"]["code"] == "not_found"
    assert "deadbeef" in payload["error"]["message"]
    assert _serve_errors() == before + 1


def test_malformed_query_body_counts_error(app, served_store):
    _, digest = served_store
    before = _serve_errors()
    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, b"{not json"
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_request"
    assert _serve_errors() == before + 1
    # structurally valid JSON that is not a query object also 400s
    status, payload = app.handle(
        "POST", f"/campaigns/{digest}/query", {}, b"[1,2,3]"
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_request"
    assert _serve_errors() == before + 2


def test_unknown_table_counts_error(app, served_store, small_campaign):
    _, digest = served_store
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    before = _serve_errors()
    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/tables/bogus", {"vantage": vantage}
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_request"
    assert "bogus" in payload["error"]["message"]
    assert _serve_errors() == before + 1
    # the query endpoint rejects an unknown table the same way
    body = json.dumps({"vantage": vantage, "table": "bogus"}).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 400
    assert _serve_errors() == before + 2


def test_observer_registry_listing(app):
    status, payload = app.handle("GET", "/observers", {})
    assert status == 200
    names = [o["name"] for o in payload["observers"]]
    assert names == sorted(names)
    assert payload["n_observers"] == len(names) >= 6
    for entry in payload["observers"]:
        assert entry["version"] >= 1
        assert entry["required_tables"]
        assert entry["headline"]


def test_campaign_observer_reports_byte_identical(app, served_store, small_campaign):
    from repro.data.columnar import ColumnarRepository
    from repro.observers import run_panel

    store, digest = served_store
    columnar = ColumnarRepository.from_repository(small_campaign.repository)
    direct = run_panel(columnar, campaign_digest=digest)
    # recomputed-on-demand serving matches a direct panel run
    for name, report in direct.items():
        status, payload = app.handle(
            "GET", f"/campaigns/{digest}/observers/{name}", {}
        )
        assert status == 200
        assert canonical_json(payload) == report.canonical_bytes()
    # persisting the artifacts and serving again returns the same bytes
    store.save_observer_reports(digest, direct)
    assert store.list_observer_reports(digest) == sorted(direct)
    for name, report in direct.items():
        status, payload = app.handle(
            "GET", f"/campaigns/{digest}/observers/{name}", {}
        )
        assert status == 200
        assert canonical_json(payload) == report.canonical_bytes()
        assert store.load_observer_report(digest, name) == report.canonical_bytes()


def test_campaign_observers_listing(app, served_store):
    _, digest = served_store
    status, payload = app.handle("GET", f"/campaigns/{digest}/observers", {})
    assert status == 200
    assert payload["digest"] == digest
    names = [o["name"] for o in payload["observers"]]
    assert len(names) >= 6


def test_unknown_observer_404(app, served_store):
    _, digest = served_store
    before = _serve_errors()
    status, payload = app.handle(
        "GET", f"/campaigns/{digest}/observers/nonsense", {}
    )
    assert status == 404
    assert payload["error"]["code"] == "not_found"
    assert _serve_errors() == before + 1


def test_oversized_limit_rejected(served_store, small_campaign):
    store, digest = served_store
    app = ServeApp(store, ServeConfig(cache_root=str(store.root), max_rows=10))
    vantage = sorted(small_campaign.repository.vantage_names)[0]
    body = json.dumps(
        {"vantage": vantage, "table": "downloads", "limit": 50}
    ).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 413
    assert payload["error"]["code"] == "too_large"
    # without an explicit limit the server clamps instead of failing
    body = json.dumps({"vantage": vantage, "table": "downloads"}).encode()
    status, payload = app.handle("POST", f"/campaigns/{digest}/query", {}, body)
    assert status == 200
    assert payload["n_rows"] == 10
    assert payload["truncated"] is True


def test_serve_config_validation():
    with pytest.raises(DataError):
        ServeConfig(max_rows=0)
    with pytest.raises(ConfigError):
        ServeConfig(lru_campaigns=0)
    with pytest.raises(ConfigError):
        ServeConfig(lru_campaigns=-3)


def test_serve_lru_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_LRU", "9")
    assert ServeConfig().lru_campaigns == 9
    monkeypatch.setenv("REPRO_SERVE_LRU", "not-a-number")
    with pytest.raises(ConfigError):
        ServeConfig()
    monkeypatch.setenv("REPRO_SERVE_LRU", "0")
    with pytest.raises(ConfigError):
        ServeConfig()
    monkeypatch.delenv("REPRO_SERVE_LRU")
    assert ServeConfig().lru_campaigns == 4
    # an explicit value always wins over the environment
    monkeypatch.setenv("REPRO_SERVE_LRU", "9")
    assert ServeConfig(lru_campaigns=2).lru_campaigns == 2


def test_lru_eviction(served_store):
    store, digest = served_store
    app = ServeApp(store, ServeConfig(cache_root=str(store.root)))
    app.cache.capacity = 1
    first = app.cache.get(digest)
    assert app.cache.get(digest) is first  # hit
    app.cache._entries.clear()
    assert app.cache.get(digest) is not first  # reloaded after eviction


def test_over_http(served_store, small_campaign):
    """One real socket round trip through ThreadingHTTPServer."""
    store, digest = served_store
    server = make_server(
        ServeConfig(port=0, cache_root=str(store.root)), store
    )
    port = server.server_address[1]
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        base = f"http://127.0.0.1:{port}"
        with urllib.request.urlopen(f"{base}/healthz") as response:
            assert response.status == 200
            health = json.loads(response.read())
            assert health["status"] == "ok"
            assert set(health["lru"]) == {"occupancy", "capacity"}
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.status == 200
            exported = json.loads(response.read())["metrics"]
            assert exported["data.serve.requests"]["value"] >= 1
        with urllib.request.urlopen(f"{base}/observers") as response:
            assert response.status == 200
            listing = json.loads(response.read())
            assert listing["n_observers"] >= 6
        vantage = sorted(small_campaign.repository.vantage_names)[0]
        url = f"{base}/campaigns/{digest}/analysis/classify?vantage={vantage}"
        with urllib.request.urlopen(url) as response:
            served = response.read()
        direct = canonical_json(
            classification_payload(small_campaign.repository.database(vantage))
        )
        assert served == direct
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/campaigns/deadbeef")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"]["code"] == "not_found"
    finally:
        server.shutdown()
        server.server_close()
