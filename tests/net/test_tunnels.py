"""Tunnel descriptors and well-known prefix detection."""

from __future__ import annotations

import pytest

from repro.net.addresses import Prefix
from repro.net.tunnels import (
    SIX_TO_FOUR_PREFIX,
    Tunnel,
    TunnelKind,
    is_6to4,
    is_teredo,
)


class TestTunnel:
    def test_extra_hops(self):
        t = Tunnel(client_asn=1, relay_asn=2, kind=TunnelKind.BROKER, hidden_hops=4)
        assert t.extra_hops == 3

    def test_single_hop_tunnel_hides_nothing(self):
        t = Tunnel(client_asn=1, relay_asn=2, kind=TunnelKind.SIX_TO_FOUR, hidden_hops=1)
        assert t.extra_hops == 0

    def test_zero_hops_rejected(self):
        with pytest.raises(ValueError):
            Tunnel(client_asn=1, relay_asn=2, kind=TunnelKind.BROKER, hidden_hops=0)

    def test_self_tunnel_rejected(self):
        with pytest.raises(ValueError):
            Tunnel(client_asn=1, relay_asn=1, kind=TunnelKind.BROKER, hidden_hops=2)


class TestWellKnownPrefixes:
    def test_6to4_detection(self):
        assert is_6to4(Prefix.parse("2002:0a00::/32"))
        assert is_6to4(SIX_TO_FOUR_PREFIX)
        assert not is_6to4(Prefix.parse("2001:db8::/32"))

    def test_6to4_rejects_v4_prefix(self):
        assert not is_6to4(Prefix.parse("10.0.0.0/8"))

    def test_teredo_detection(self):
        assert is_teredo(Prefix.parse("2001:0:1::/48"))
        assert not is_teredo(Prefix.parse("2001:db8::/32"))
        assert not is_teredo(Prefix.parse("10.0.0.0/8"))

    def test_kind_str(self):
        assert str(TunnelKind.SIX_TO_FOUR) == "6to4"
        assert str(TunnelKind.BROKER) == "broker"
