"""Address and prefix value types, including RFC 5952 text round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.net.addresses import (
    AddressFamily,
    IPv4Address,
    IPv6Address,
    Prefix,
    parse_address,
)


class TestAddressFamily:
    def test_bits(self):
        assert AddressFamily.IPV4.bits == 32
        assert AddressFamily.IPV6.bits == 128

    def test_other_is_involutive(self):
        for family in AddressFamily:
            assert family.other.other is family

    def test_str(self):
        assert str(AddressFamily.IPV4) == "IPv4"
        assert str(AddressFamily.IPV6) == "IPv6"


class TestIPv4Address:
    def test_parse_and_format(self):
        addr = IPv4Address.parse("192.168.1.200")
        assert str(addr) == "192.168.1.200"
        assert int(addr) == (192 << 24) | (168 << 16) | (1 << 8) | 200

    def test_zero_and_max(self):
        assert str(IPv4Address(0)) == "0.0.0.0"
        assert str(IPv4Address(2**32 - 1)) == "255.255.255.255"

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressError):
            IPv4Address(2**32)
        with pytest.raises(AddressError):
            IPv4Address(-1)

    @pytest.mark.parametrize(
        "bad",
        ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04", "", "1..2.3"],
    )
    def test_bad_text_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    def test_ordering_follows_value(self):
        assert IPv4Address.parse("10.0.0.1") < IPv4Address.parse("10.0.0.2")
        assert IPv4Address.parse("9.255.255.255") < IPv4Address.parse("10.0.0.0")

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        addr = IPv4Address(value)
        assert int(IPv4Address.parse(str(addr))) == value


class TestIPv6Address:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("::", "::"),
            ("::1", "::1"),
            ("2001:db8::", "2001:db8::"),
            ("2001:0db8:0000:0000:0000:0000:0000:0001", "2001:db8::1"),
            ("fe80:0:0:0:1:0:0:1", "fe80::1:0:0:1"),
            ("1:2:3:4:5:6:7:8", "1:2:3:4:5:6:7:8"),
            ("0:0:1:0:0:0:0:1", "0:0:1::1"),
        ],
    )
    def test_canonical_form(self, text, expected):
        assert str(IPv6Address.parse(text)) == expected

    def test_embedded_ipv4_tail(self):
        addr = IPv6Address.parse("::ffff:192.168.1.1")
        assert (int(addr) & 0xFFFFFFFF) == int(IPv4Address.parse("192.168.1.1"))

    def test_longest_zero_run_is_compressed(self):
        # Two runs of zeros: the longer one must win.
        addr = IPv6Address.parse("1:0:0:1:0:0:0:1")
        assert str(addr) == "1:0:0:1::1"

    def test_single_zero_group_not_compressed(self):
        assert str(IPv6Address.parse("1:0:2:3:4:5:6:7")) == "1:0:2:3:4:5:6:7"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            ":::",
            "1::2::3",
            "1:2:3:4:5:6:7",
            "1:2:3:4:5:6:7:8:9",
            "12345::",
            "g::1",
        ],
    )
    def test_bad_text_rejected(self, bad):
        with pytest.raises(AddressError):
            IPv6Address.parse(bad)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressError):
            IPv6Address(2**128)

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_roundtrip(self, value):
        addr = IPv6Address(value)
        assert int(IPv6Address.parse(str(addr))) == value

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_canonical_form_is_stable(self, value):
        """Formatting a parsed canonical form yields the same text."""
        once = str(IPv6Address(value))
        assert str(IPv6Address.parse(once)) == once


class TestParseAddress:
    def test_dispatches_by_separator(self):
        assert isinstance(parse_address("1.2.3.4"), IPv4Address)
        assert isinstance(parse_address("::1"), IPv6Address)


class TestPrefix:
    def test_parse_and_format(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.length == 8
        assert str(p) == "10.0.0.0/8"

    def test_host_bits_must_be_clear(self):
        with pytest.raises(AddressError):
            Prefix(AddressFamily.IPV4, int(IPv4Address.parse("10.0.0.1")), 8)

    def test_of_masks_host_bits(self):
        p = Prefix.of(IPv4Address.parse("10.1.2.3"), 16)
        assert str(p) == "10.1.0.0/16"

    def test_contains_address(self):
        p = Prefix.parse("10.1.0.0/16")
        assert p.contains(IPv4Address.parse("10.1.200.1"))
        assert not p.contains(IPv4Address.parse("10.2.0.1"))

    def test_contains_rejects_other_family(self):
        p = Prefix.parse("10.1.0.0/16")
        assert not p.contains(IPv6Address.parse("::1"))

    def test_contains_prefix(self):
        outer = Prefix.parse("2001:db8::/32")
        inner = Prefix.parse("2001:db8:1::/48")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_address_indexing(self):
        p = Prefix.parse("10.1.0.0/16")
        assert str(p.address(1)) == "10.1.0.1"
        assert str(p.address(p.host_mask)) == "10.1.255.255"
        with pytest.raises(AddressError):
            p.address(p.host_mask + 1)

    def test_subnets(self):
        p = Prefix.parse("10.0.0.0/8")
        subs = p.subnets(10)
        assert len(subs) == 4
        assert str(subs[1]) == "10.64.0.0/10"

    def test_subnets_refuses_explosion(self):
        with pytest.raises(AddressError):
            Prefix.parse("::/0").subnets(32)

    def test_bad_length_rejected(self):
        with pytest.raises(AddressError):
            Prefix(AddressFamily.IPV4, 0, 33)

    @given(st.integers(min_value=0, max_value=2**32 - 1), st.integers(0, 32))
    def test_of_always_contains_address(self, value, length):
        addr = IPv4Address(value)
        assert Prefix.of(addr, length).contains(addr)

    @given(st.integers(min_value=0, max_value=2**128 - 1), st.integers(0, 128))
    def test_prefix_roundtrip_text(self, value, length):
        p = Prefix.of(IPv6Address(value), length)
        assert Prefix.parse(str(p)) == p
