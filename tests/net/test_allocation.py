"""Prefix allocation: uniqueness, idempotence, reverse lookup, 6to4."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError
from repro.net.addresses import AddressFamily, IPv4Address, Prefix
from repro.net.allocation import PrefixAllocator
from repro.net.tunnels import is_6to4


@pytest.fixture()
def allocator() -> PrefixAllocator:
    return PrefixAllocator()


class TestAllocate:
    def test_allocations_are_disjoint(self, allocator):
        prefixes = [allocator.allocate(asn, AddressFamily.IPV4) for asn in range(1, 60)]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert not a.contains(b) and not b.contains(a)

    def test_repeated_allocation_is_idempotent(self, allocator):
        first = allocator.allocate(5, AddressFamily.IPV6)
        second = allocator.allocate(5, AddressFamily.IPV6)
        assert first == second

    def test_families_are_independent(self, allocator):
        v4 = allocator.allocate(5, AddressFamily.IPV4)
        v6 = allocator.allocate(5, AddressFamily.IPV6)
        assert v4.family is AddressFamily.IPV4
        assert v6.family is AddressFamily.IPV6

    def test_pool_exhaustion_raises(self):
        tiny = PrefixAllocator(
            v4_pool=Prefix.parse("10.0.0.0/14"), v4_alloc_len=16
        )
        for asn in range(1, 5):
            tiny.allocate(asn, AddressFamily.IPV4)
        with pytest.raises(AllocationError):
            tiny.allocate(99, AddressFamily.IPV4)

    def test_bad_pool_configuration_rejected(self):
        with pytest.raises(AllocationError):
            PrefixAllocator(v4_pool=Prefix.parse("2001:db8::/32"))
        with pytest.raises(AllocationError):
            PrefixAllocator(v4_alloc_len=2)  # shorter than the /4 pool


class TestLookups:
    def test_prefix_of_roundtrip(self, allocator):
        prefix = allocator.allocate(7, AddressFamily.IPV4)
        assert allocator.prefix_of(7, AddressFamily.IPV4) == prefix
        assert allocator.owner_of(prefix) == 7

    def test_prefix_of_unknown_raises(self, allocator):
        with pytest.raises(AllocationError):
            allocator.prefix_of(7, AddressFamily.IPV6)

    def test_has_prefix(self, allocator):
        assert not allocator.has_prefix(3, AddressFamily.IPV4)
        allocator.allocate(3, AddressFamily.IPV4)
        assert allocator.has_prefix(3, AddressFamily.IPV4)

    def test_owner_of_address(self, allocator):
        prefix = allocator.allocate(11, AddressFamily.IPV4)
        assert allocator.owner_of_address(prefix.address(42)) == 11

    def test_owner_of_unallocated_address_raises(self, allocator):
        with pytest.raises(AllocationError):
            allocator.owner_of_address(IPv4Address.parse("203.0.113.1"))

    def test_allocations_view(self, allocator):
        allocator.allocate(1, AddressFamily.IPV4)
        allocator.allocate(2, AddressFamily.IPV4)
        allocator.allocate(2, AddressFamily.IPV6)
        v4 = allocator.allocations(AddressFamily.IPV4)
        assert set(v4) == {1, 2}


class TestSixToFour:
    def test_derived_from_v4_block(self, allocator):
        v4 = allocator.allocate(9, AddressFamily.IPV4)
        p6 = allocator.register_6to4(9)
        assert is_6to4(p6)
        assert p6.length == 48
        embedded = (p6.network >> 80) & 0xFFFFFFFF
        assert embedded == v4.network

    def test_requires_v4_block(self, allocator):
        with pytest.raises(AllocationError):
            allocator.register_6to4(12)

    def test_owner_of_6to4_address(self, allocator):
        allocator.allocate(9, AddressFamily.IPV4)
        p6 = allocator.register_6to4(9)
        assert allocator.owner_of_address(p6.address(1)) == 9

    def test_6to4_is_idempotent(self, allocator):
        allocator.allocate(9, AddressFamily.IPV4)
        assert allocator.register_6to4(9) == allocator.register_6to4(9)
