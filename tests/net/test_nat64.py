"""NAT64 prefix math (RFC 6052) and the gateway descriptor."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.addresses import AddressFamily, IPv4Address, IPv6Address
from repro.net.nat64 import (
    NAT64_PREFIX,
    Nat64Gateway,
    extract_ipv4,
    is_nat64_mapped,
    synthesize_aaaa,
)


class TestPrefixMath:
    def test_well_known_prefix(self):
        assert str(NAT64_PREFIX) == "64:ff9b::/96"

    def test_synthesis_embeds_the_v4_address(self):
        v4 = IPv4Address(0xC0000201)  # 192.0.2.1
        v6 = synthesize_aaaa(v4)
        assert v6.family is AddressFamily.IPV6
        assert is_nat64_mapped(v6)
        assert int(v6) & 0xFFFFFFFF == int(v4)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_round_trip_is_lossless(self, value):
        v4 = IPv4Address(value)
        assert extract_ipv4(synthesize_aaaa(v4)) == v4

    def test_v4_addresses_are_never_mapped(self):
        assert not is_nat64_mapped(IPv4Address(1))

    def test_native_v6_is_not_mapped(self):
        assert not is_nat64_mapped(IPv6Address(2**120))

    def test_extract_rejects_unmapped_addresses(self):
        with pytest.raises(ValueError, match="not inside"):
            extract_ipv4(IPv6Address(2**120))


class TestGateway:
    def test_valid_gateway(self):
        gw = Nat64Gateway(gateway_asn=7, translation_quality=0.88)
        assert gw.gateway_asn == 7

    @pytest.mark.parametrize("quality", [0.0, -0.1, 1.01])
    def test_quality_out_of_range_rejected(self, quality):
        with pytest.raises(ValueError, match="translation_quality"):
            Nat64Gateway(gateway_asn=7, translation_quality=quality)
