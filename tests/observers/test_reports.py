"""ObserverReport: content digests, canonical bytes, round trips."""

from __future__ import annotations

import json

import pytest

from repro.errors import DataError
from repro.observers import REPORT_SCHEMA, ObserverReport, canonical_json


def _report(**overrides):
    kwargs = dict(
        name="speed_parity",
        version=1,
        campaign_digest="abc123",
        body={"summary": {"parity_index": 0.91}, "series": {}},
    )
    kwargs.update(overrides)
    return ObserverReport(**kwargs)


def test_digest_is_deterministic():
    assert _report().digest == _report().digest
    assert len(_report().digest) == 64


def test_digest_covers_every_content_field():
    base = _report()
    assert _report(version=2).digest != base.digest
    assert _report(name="hop_inflation").digest != base.digest
    assert _report(campaign_digest="other").digest != base.digest
    assert _report(body={"summary": {}}).digest != base.digest


def test_supplied_digest_is_verified():
    good = _report()
    # the correct digest is accepted verbatim
    assert _report(digest=good.digest).digest == good.digest
    with pytest.raises(DataError, match="does not match"):
        _report(digest="0" * 64)


def test_payload_round_trip_reverifies():
    report = _report()
    payload = json.loads(canonical_json(report.to_payload()))
    restored = ObserverReport.from_payload(payload)
    assert restored == report
    assert restored.canonical_bytes() == report.canonical_bytes()
    # a tampered body no longer matches the carried digest
    payload["body"]["summary"]["parity_index"] = 0.5
    with pytest.raises(DataError, match="does not match"):
        ObserverReport.from_payload(payload)


def test_payload_schema_checked():
    payload = _report().to_payload()
    assert payload["schema"] == REPORT_SCHEMA
    payload["schema"] = "repro.observers/99"
    with pytest.raises(DataError, match="schema"):
        ObserverReport.from_payload(payload)
    with pytest.raises(DataError):
        ObserverReport.from_payload("not a dict")


def test_construction_validation():
    with pytest.raises(DataError):
        _report(name="")
    with pytest.raises(DataError):
        _report(version=0)
    with pytest.raises(DataError):
        _report(body=[1, 2])


def test_canonical_bytes_are_sorted_and_compact():
    data = _report().canonical_bytes()
    assert b" " not in data and b"\n" not in data
    decoded = json.loads(data)
    assert list(decoded) == sorted(decoded)
