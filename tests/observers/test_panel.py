"""The observer panel over a real campaign: semantics and bit-identity."""

from __future__ import annotations

import pytest

from repro import obs
from repro.data.columnar import ColumnarRepository
from repro.observers import observer_names, run_observer, run_panel
from repro.observers.registry import get_observer


@pytest.fixture(scope="module")
def columnar(small_campaign) -> ColumnarRepository:
    return ColumnarRepository.from_repository(small_campaign.repository)


@pytest.fixture(scope="module")
def panel(columnar):
    return run_panel(columnar, campaign_digest="test-digest")


def test_panel_emits_every_observer(panel):
    assert sorted(panel) == observer_names()
    assert len(panel) >= 6


def test_reports_follow_the_body_convention(panel):
    for name, report in panel.items():
        assert report.name == name
        assert report.campaign_digest == "test-digest"
        body = report.body
        assert "summary" in body
        assert "series" in body
        assert "trends" in body
        headline = get_observer(name).headline
        assert headline in body["summary"]
        for series in body["series"].values():
            assert len(series["rounds"]) == len(series["values"])
            assert series["rounds"] == sorted(series["rounds"])


def test_panel_is_deterministic(columnar, panel):
    again = run_panel(columnar, campaign_digest="test-digest")
    for name, report in panel.items():
        assert again[name].digest == report.digest
        assert again[name].canonical_bytes() == report.canonical_bytes()


def test_reports_identical_with_obs_on_and_off(columnar, panel):
    obs.reset()
    obs.enable()
    try:
        with_obs = run_panel(columnar, campaign_digest="test-digest")
    finally:
        obs.disable()
        obs.reset()
    for name, report in panel.items():
        assert with_obs[name].digest == report.digest


def test_observer_metrics_count_runs(columnar):
    obs.reset()
    runs = obs.get_registry().counter("observers.runs")
    reports = obs.get_registry().counter("observers.reports")
    before_runs, before_reports = runs.value, reports.value
    run_panel(columnar, names=["speed_parity", "hop_inflation"])
    assert runs.value == before_runs + 2
    assert reports.value == before_reports + 2


def test_region_adoption_semantics(panel, small_campaign):
    body = panel["region_adoption"].body
    assert 0.0 <= body["summary"]["adoption_score"] <= 1.0
    assert body["summary"]["n_vantages"] == len(
        small_campaign.repository.vantage_names
    )
    for value in body["per_region"].values():
        assert 0.0 <= value <= 1.0
    adoption = body["series"]["adoption"]["values"]
    # the scenario grows AAAA coverage over rounds
    assert adoption[-1] > adoption[0]


def test_speed_parity_semantics(panel):
    body = panel["speed_parity"].body
    assert body["summary"]["n_sites"] > 0
    assert 0.0 < body["summary"]["parity_index"] < 2.0
    assert 0.0 <= body["summary"]["comparable_fraction"] <= 1.0


def test_path_stability_semantics(panel):
    body = panel["path_stability"].body
    assert 0.0 <= body["summary"]["change_rate"] <= 1.0
    assert body["summary"]["stability_index"] == pytest.approx(
        1.0 - body["summary"]["change_rate"]
    )


def test_tunnel_prevalence_semantics(panel):
    body = panel["tunnel_prevalence"].body
    assert body["summary"]["n_sites"] > 0
    assert 0.0 <= body["summary"]["prevalence"] <= 1.0
    assert body["summary"]["n_suspected"] <= body["summary"]["n_sites"]


def test_failure_watch_zero_without_faults(panel):
    body = panel["failure_watch"].body
    assert body["summary"]["n_faults"] == 0
    assert body["summary"]["failure_rate"] == 0.0
    assert body["summary"]["n_downloads"] > 0
    assert all(v == 0 for v in body["series"]["faults"]["values"])


def test_hop_inflation_semantics(panel):
    body = panel["hop_inflation"].body
    assert body["summary"]["mean_hops_v4"] >= 1.0
    assert body["summary"]["mean_hops_v6"] >= 1.0
    histogram = body["histogram"]
    for family in ("IPv4", "IPv6"):
        assert sum(histogram[family].values()) > 0


def test_single_observer_run(columnar):
    report = run_observer(get_observer("speed_parity"), columnar)
    assert report.campaign_digest is None
    assert report.name == "speed_parity"


def test_subset_selection(columnar):
    subset = run_panel(columnar, names=["hop_inflation", "speed_parity"])
    assert sorted(subset) == ["hop_inflation", "speed_parity"]


def test_transition_matrix_empty_without_dns64(panel):
    body = panel["transition_matrix"].body
    assert body["summary"]["n_sites"] == 0
    assert body["summary"]["translated_share"] == 0.0
    assert body["summary"]["native_over_translated"] is None


class TestTransitionMatrixLive:
    @pytest.fixture(scope="class")
    def dns64_panel(self, dns64_campaign):
        columnar = ColumnarRepository.from_repository(
            dns64_campaign.repository
        )
        return run_panel(columnar, names=["transition_matrix"]), columnar

    def test_matrix_semantics(self, dns64_panel):
        panel, _ = dns64_panel
        body = panel["transition_matrix"].body
        summary = body["summary"]
        assert summary["n_sites"] > 0
        assert 0.0 < summary["translated_share"] <= 1.0
        assert summary["by_kind"]["translated"] > 0
        assert sum(summary["by_kind"].values()) == summary["n_sites"]
        assert sum(
            v["n_sites"] for v in body["per_vantage"].values()
        ) == summary["n_sites"]
        series = body["series"]["translated_share"]
        assert series["rounds"] == sorted(series["rounds"])
        assert all(0.0 <= v <= 1.0 for v in series["values"])

    def test_speed_gap_reported(self, dns64_panel):
        panel, _ = dns64_panel
        summary = panel["transition_matrix"].body["summary"]
        assert summary["translated_mean_speed"] is not None
        if summary["native_mean_speed"] is not None:
            assert summary["native_over_translated"] == pytest.approx(
                summary["native_mean_speed"]
                / summary["translated_mean_speed"]
            )

    def test_report_is_deterministic(self, dns64_panel):
        panel, columnar = dns64_panel
        again = run_panel(columnar, names=["transition_matrix"])
        report = panel["transition_matrix"]
        assert again["transition_matrix"].digest == report.digest
        assert (
            again["transition_matrix"].canonical_bytes()
            == report.canonical_bytes()
        )
