"""The ``repro observe`` subcommand: output modes, store wiring."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.engine import WEEKLY
from repro.engine.store import CampaignStore
from repro.observers import ObserverReport


def test_observe_parser_defaults():
    args = build_parser().parse_args(["observe"])
    assert args.seed == 11
    assert args.scale == 1.0
    assert args.rounds is None
    assert args.seeds is None
    assert args.json is False


def test_observe_human_output(capsys):
    assert main(["observe", "--seed", "11", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "OBSERVER" in out
    for name in ("speed_parity", "hop_inflation", "region_adoption"):
        assert name in out


def test_observe_json_document(capsys):
    assert main(["observe", "--seed", "11", "--no-cache", "--json"]) == 0
    out = capsys.readouterr().out
    document = json.loads(out)
    assert len(document["reports"]) >= 6
    for payload in document["reports"].values():
        report = ObserverReport.from_payload(payload)  # digest verifies
        assert report.campaign_digest == document["campaign_digest"]


def test_observe_persists_reports_to_store(tmp_path, capsys):
    cache = tmp_path / "cache"
    assert main(["observe", "--seed", "11", "--cache-dir", str(cache)]) == 0
    capsys.readouterr()
    store = CampaignStore(cache)
    entries = store.entries()
    assert len(entries) == 1
    digest = entries[0].digest
    assert entries[0].kind == WEEKLY
    persisted = store.list_observer_reports(digest)
    assert len(persisted) >= 6
    # the persisted artifact is a verifiable canonical report
    raw = store.load_observer_report(digest, "speed_parity")
    report = ObserverReport.from_payload(json.loads(raw))
    assert report.campaign_digest == digest
    # a second run hits the store and reuses the campaign
    assert main(["observe", "--seed", "11", "--cache-dir", str(cache)]) == 0
    assert len(store.entries()) == 1


def test_observe_subset(capsys):
    assert main([
        "observe", "--seed", "11", "--no-cache", "--json",
        "--observers", "speed_parity",
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert sorted(document["reports"]) == ["speed_parity"]


def test_observe_multi_seed_sweep(capsys):
    assert main([
        "observe", "--no-cache", "--scale", "0.3", "--seeds", "11", "12",
        "--observers", "speed_parity",
    ]) == 0
    out = capsys.readouterr().out
    assert "headline spread across seeds" in out
    assert "seed 11" in out and "seed 12" in out


def test_observe_multi_seed_json(capsys):
    assert main([
        "observe", "--no-cache", "--scale", "0.3", "--seeds", "11", "12",
        "--json", "--observers", "hop_inflation",
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    assert sorted(document["sweep"]) == ["11", "12"]
    digests = {
        seed: doc["campaign_digest"] for seed, doc in document["sweep"].items()
    }
    assert digests["11"] != digests["12"]


def test_observe_long_horizon_rounds(capsys):
    assert main([
        "observe", "--no-cache", "--scale", "0.3", "--rounds", "18",
        "--json", "--observers", "region_adoption",
    ]) == 0
    document = json.loads(capsys.readouterr().out)
    report = document["reports"]["region_adoption"]
    assert len(report["body"]["series"]["adoption"]["rounds"]) == 18
