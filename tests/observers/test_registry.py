"""The observer registry: declarations, lookups, table validation."""

from __future__ import annotations

import pytest

from repro.data.columnar import ColumnarDatabase, ColumnarRepository
from repro.errors import DataError
from repro.observers import all_observers, get_observer, observer_names, register
from repro.observers.registry import _REGISTRY, Observer


def test_panel_self_registers():
    names = observer_names()
    assert len(names) >= 6
    assert names == sorted(names)
    for expected in (
        "region_adoption",
        "speed_parity",
        "path_stability",
        "tunnel_prevalence",
        "failure_watch",
        "hop_inflation",
    ):
        assert expected in names


def test_observer_declarations_are_complete():
    for observer in all_observers():
        assert observer.version >= 1
        assert observer.required_tables
        assert observer.headline
        description = observer.describe()
        assert description["name"] == observer.name
        assert description["required_tables"] == list(observer.required_tables)


def test_unknown_observer_raises():
    with pytest.raises(DataError, match="unknown observer"):
        get_observer("nonsense")


def test_duplicate_registration_rejected():
    decorator = register(
        name="test_dupe",
        version=1,
        description="x",
        required_tables=("downloads",),
        headline="h",
    )
    try:
        decorator(lambda repository: {})
        with pytest.raises(DataError, match="already registered"):
            register(
                name="test_dupe",
                version=1,
                description="x",
                required_tables=("downloads",),
                headline="h",
            )(lambda repository: {})
    finally:
        _REGISTRY.pop("test_dupe", None)


def test_unknown_required_table_rejected():
    with pytest.raises(DataError, match="unknown tables"):
        Observer(
            name="bad",
            version=1,
            description="x",
            required_tables=("no_such_table",),
            headline="h",
            fn=lambda repository: {},
        )
    with pytest.raises(DataError):
        Observer(
            name="bad",
            version=0,
            description="x",
            required_tables=("downloads",),
            headline="h",
            fn=lambda repository: {},
        )


def test_check_tables_fails_on_truncated_entry(small_campaign):
    observer = get_observer("speed_parity")
    columnar = ColumnarRepository.from_repository(small_campaign.repository)
    observer.check_tables(columnar)  # full data passes
    vantage = sorted(columnar.databases)[0]
    full = columnar.databases[vantage]
    truncated = dict(columnar.databases)
    truncated[vantage] = ColumnarDatabase(
        vantage_name=full.vantage_name,
        tables={
            name: table
            for name, table in full.tables.items()
            if name != "downloads"
        },
    )
    broken = ColumnarRepository(
        vantages=dict(columnar.vantages), databases=truncated
    )
    with pytest.raises(DataError, match="no table 'downloads'"):
        observer.check_tables(broken)
