"""The trend significance model: steady trends and level breaks."""

from __future__ import annotations

from repro.observers.trends import (
    MIN_WINDOW,
    analyze_series,
    flag_series,
    level_break,
    steady_trend,
)


def test_steady_trend_flags_clean_growth():
    values = [1.0 + 0.05 * i for i in range(12)]
    flag = steady_trend("adoption", values)
    assert flag is not None
    assert flag.kind == "steady_trend"
    assert flag.direction == 1
    assert flag.magnitude > 0
    assert flag.p_value is not None and flag.p_value <= 0.01


def test_steady_trend_ignores_flat_series():
    assert steady_trend("flat", [2.0] * 12) is None


def test_level_break_flags_step_change():
    values = [1.0, 1.01, 0.99, 1.0, 1.02, 2.0, 2.01, 1.99, 2.0, 2.02]
    flag = level_break("step", values)
    assert flag is not None
    assert flag.kind == "level_break"
    assert flag.direction == 1
    assert flag.magnitude > 0.10


def test_level_break_needs_enough_points():
    short = [1.0] * (2 * MIN_WINDOW - 1)
    assert level_break("short", short) is None


def test_level_break_ignores_small_shifts():
    # disjoint-ish but inside the 10% band: tight series shifted by 5%
    values = [1.0, 1.0, 1.0, 1.0, 1.05, 1.05, 1.05, 1.05]
    flag = level_break("small", values)
    assert flag is None


def test_falling_series_flags_negative_direction():
    values = [2.0 - 0.1 * i for i in range(12)]
    flags = flag_series("decline", values)
    assert flags
    assert all(f.direction == -1 for f in flags)


def test_analyze_series_is_sorted_and_json_ready():
    series = {
        "b_rise": {"rounds": list(range(12)),
                   "values": [1.0 + 0.05 * i for i in range(12)]},
        "a_rise": {"rounds": list(range(12)),
                   "values": [1.0 + 0.05 * i for i in range(12)]},
        "flat": {"rounds": list(range(12)), "values": [1.0] * 12},
    }
    flags = analyze_series(series)
    assert flags
    names = [f["series"] for f in flags]
    assert names == sorted(names)
    assert all(f["series"] != "flat" for f in flags)
    for flag in flags:
        assert set(flag) == {
            "series", "kind", "direction", "magnitude", "p_value"
        }


def test_analyze_series_empty():
    assert analyze_series({}) == []
