"""Table rendering."""

from __future__ import annotations

import pytest

from repro.experiments.report import Table, fmt, pct


class TestFormatting:
    def test_fmt(self):
        assert fmt(None) == "-"
        assert fmt(1.25) == "1.2"
        assert fmt(7) == "7"
        assert fmt("x") == "x"

    def test_pct(self):
        assert pct(0.1234) == "12.3%"
        assert pct(0.5, 0) == "50%"
        assert pct(None) == "-"


class TestTable:
    def test_add_row_checks_arity(self):
        table = Table(title="T", columns=("a", "b"))
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_cell_and_column_access(self):
        table = Table(title="T", columns=("a", "b"))
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.cell(0, "b") == 2
        assert table.column_values("a") == [1, 3]

    def test_render_contains_everything(self):
        table = Table(
            title="T",
            columns=("name", "value"),
            paper_reference=["paper says 42"],
        )
        table.add_row("x", 41.0)
        table.notes.append("close enough")
        text = table.render()
        assert "== T ==" in text
        assert "41.0" in text
        assert "paper says 42" in text
        assert "note: close enough" in text

    def test_render_empty_table(self):
        table = Table(title="T", columns=("a",))
        assert "== T ==" in table.render()
