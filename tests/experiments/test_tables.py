"""Every experiment runs on the small campaign and shows the paper's shape."""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig1,
    fig3a,
    fig3b,
    section55,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table11,
    table13,
    worldipv6day,
)


class TestFigures:
    def test_fig1_series_rises_and_jumps(self, small_data, small_cfg):
        table = fig1.run(small_data)
        series = fig1.reachability_series(small_data)
        first, last = series[0][1], series[-1][1]
        assert last > first
        w6d = small_cfg.adoption.world_ipv6_day_round
        before = series[w6d - 1][1]
        during = series[w6d][1]
        assert during > before
        assert len(table.rows) == small_cfg.campaign.n_rounds

    def test_fig1_measured_tracks_ground_truth(self, small_data):
        for _, measured, truth in fig1.reachability_series(small_data):
            assert measured == pytest.approx(truth, abs=0.02)

    def test_fig3a_rank_effect(self, small_data):
        buckets = fig3a.reachability_by_rank(small_data)
        assert len(buckets) >= 3
        top_bucket = buckets[0][1]
        bottom_bucket = buckets[-1][1]
        assert top_bucket >= bottom_bucket
        fig3a.run(small_data)  # renders without error

    def test_fig3b_samples_are_close(self, small_data):
        top, extended = fig3b.v6_faster_by_sample(small_data)
        assert top is not None and extended is not None
        assert 0.0 <= top <= 1.0
        assert abs(top - extended) < 0.25
        fig3b.run(small_data)


class TestInventoryTables:
    def test_table1_lists_six_vantages(self, small_data):
        table = table1.run(small_data)
        assert len(table.rows) == 6

    def test_table2_shape(self, small_data):
        rows = table2.profile_rows(small_data)
        # Penn monitors the most dual-stack sites.
        totals = rows["Sites (total)"][:-1]
        assert totals[0] == max(totals)
        # Kept never exceeds total.
        for kept, total in zip(rows["Sites kept"][:-1], totals):
            assert kept <= total
        # ASes crossed in v6 at or below v4 (sparser v6 topology).
        assert rows["ASes crossed (IPv6)"][-1] <= rows["ASes crossed (IPv4)"][-1]
        table2.run(small_data)

    def test_table3_insufficient_dominates(self, small_data):
        table = table3.run(small_data)
        for row in table.rows:
            insufficient = row[1]
            others = [c for c in row[2:7]]
            assert insufficient >= max(others)

    def test_table4_every_category_populated_somewhere(self, small_data):
        table = table4.run(small_data)
        for row in table.rows:
            assert sum(row[1:]) > 0

    def test_table5_runs(self, small_data):
        table = table5.run(small_data)
        assert len(table.rows) == 6


class TestPerformanceTables:
    def test_table6_v4_dominates_dl(self, small_data):
        for name in ("Penn", "Comcast", "LU", "UPCB"):
            stats = table6.dl_statistics(small_data, name)
            if stats["n_sites"] == 0:
                continue
            assert stats["v4_ge_v6"] >= 0.6
            assert stats["v4_perf"] > stats["v6_perf"]
        table6.run(small_data)

    def test_table7_v4_speed_decreases_with_hops(self, small_data):
        from repro.net.addresses import AddressFamily

        buckets = table7.hopcount_table(small_data, "Penn")
        v4 = buckets[AddressFamily.IPV4]
        speeds = [
            v4[b].mean_speed
            for b in ("2", "3", "4", ">=5")
            if v4[b].n_sites >= 3
        ]
        if len(speeds) >= 2:
            assert speeds[0] > speeds[-1]
        table7.run(small_data)

    def test_table9_sp_families_match(self, small_data):
        from repro.analysis.classify import SiteCategory
        from repro.analysis.hopcount import performance_by_hopcount
        from repro.net.addresses import AddressFamily

        context = small_data.context("Penn")
        buckets = performance_by_hopcount(
            context.db, context.sites_in(SiteCategory.SP)
        )
        for bucket in ("1", "2", "3", "4", ">=5"):
            v4 = buckets[AddressFamily.IPV4][bucket]
            v6 = buckets[AddressFamily.IPV6][bucket]
            assert v4.n_sites == v6.n_sites
            if v4.n_sites >= 3:
                assert v6.mean_speed == pytest.approx(v4.mean_speed, rel=0.25)
        table9.run(small_data)


class TestHypothesisTables:
    def test_table8_h1_shape(self, small_data):
        assert table8.h1_holds(small_data)
        table = table8.run(small_data)
        assert len(table.rows) == 7

    def test_table11_h2_shape(self, small_data):
        assert table11.h2_holds(small_data, gap=0.25)
        table11.run(small_data)

    def test_sp_comparable_beats_dp_comparable(self, small_data):
        from repro.analysis.hypotheses import ASVerdict, verdict_fractions

        for name in ("Penn", "Comcast", "LU", "UPCB"):
            context = small_data.context(name)
            sp = verdict_fractions(context.sp_evaluations.values())
            dp = verdict_fractions(context.dp_evaluations.values())
            assert sp[ASVerdict.COMPARABLE] > dp[ASVerdict.COMPARABLE]

    def test_table13_mass_not_all_at_extremes(self, small_data):
        coverage = table13.coverage_by_vantage(small_data)
        for name, shares in coverage.items():
            assert sum(shares.values()) in (0.0, pytest.approx(1.0))
        table13.run(small_data)

    def test_section55_runs(self, small_data):
        table = section55.run(small_data)
        assert len(table.rows) == 4


class TestWorldIpv6DayTables:
    def test_table10_participants_mostly_comparable(self, small_w6d):
        from repro.analysis.hypotheses import ASVerdict, verdict_fractions

        table = worldipv6day.run_table10(small_w6d)
        for name in worldipv6day.W6D_VANTAGES:
            evaluations = small_w6d.context(name).sp_evaluations
            if not evaluations:
                continue
            fractions = verdict_fractions(evaluations.values())
            assert fractions[ASVerdict.COMPARABLE] >= 0.5
        assert table.rows

    def test_table12_runs(self, small_w6d):
        table = worldipv6day.run_table12(small_w6d)
        assert len(table.rows) == 2


class TestTransitionMatrix:
    def test_empty_without_dns64(self, small_data):
        from repro.experiments import transition

        table = transition.run(small_data)
        assert not table.rows
        assert any("--transition" in note for note in table.notes)

    def test_dns64_campaign_fills_the_matrix(self, dns64_cfg, dns64_campaign):
        from repro.experiments import transition
        from repro.experiments.scenario import ExperimentData, build_contexts

        data = ExperimentData(
            config=dns64_cfg,
            campaign=dns64_campaign,
            contexts=build_contexts(dns64_cfg, dns64_campaign),
        )
        table = transition.run(data)
        assert table.rows
        header = table.columns
        assert "translated" in header and "native/NAT64" in header
        # the miniature world's sparse AAAA coverage makes NAT64 dominate
        penn = next(row for row in table.rows if row[0] == "Penn")
        assert int(penn[3]) > 0  # translated sites
