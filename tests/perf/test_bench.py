"""The benchmark + perf-regression subsystem (``repro bench``)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.perf import (
    SCHEMA,
    WORKLOADS,
    compare_reports,
    evaluate_gates,
    read_report,
    render_report,
    run_bench,
    wall_clock_deltas,
    write_report,
)

#: tiny configuration so the whole file stays CI-cheap; every workload
#: still exercises its real code path.
SEED = 11
SCALE = 0.05


@pytest.fixture(scope="module")
def report() -> dict:
    return run_bench(seed=SEED, scale=SCALE)


class TestRunBench:
    def test_registry_covers_the_hot_paths(self):
        assert set(WORKLOADS) == {
            "round_loop",
            "dns_phase",
            "fault_plan",
            "end_to_end",
            "query",
            "observers",
            "store_io",
            "dns64",
        }

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workloads"):
            run_bench(seed=SEED, scale=SCALE, workloads=["nope"])

    def test_report_shape(self, report):
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"seed": SEED, "scale": SCALE}
        assert set(report["workloads"]) == set(WORKLOADS)
        for data in report["workloads"].values():
            assert data["wall_seconds"] > 0
            assert data["counters"]
            assert data["derived"]

    def test_subset_runs_only_named_workloads(self):
        report = run_bench(seed=SEED, workloads=["fault_plan"])
        assert set(report["workloads"]) == {"fault_plan"}

    def test_end_to_end_carries_repository_digest(self, report):
        digest = report["workloads"]["end_to_end"]["meta"]["repository_digest"]
        assert isinstance(digest, str) and len(digest) == 64

    def test_counters_are_integral(self, report):
        """Work counters must be exact integers — that is what makes them
        gateable across machines, unlike wall-clock."""
        for data in report["workloads"].values():
            for name, value in data["counters"].items():
                assert value == int(value), name


class TestGates:
    def test_optimized_tree_passes_all_gates(self, report):
        gates = evaluate_gates(report)
        assert gates, "no gates evaluated"
        failed = [g.render() for g in gates if not g.passed]
        assert not failed

    def test_gate_catches_per_sample_endpoint_lookups(self, report):
        tampered = copy.deepcopy(report)
        data = tampered["workloads"]["round_loop"]
        # Simulate the pre-optimization shape: one lookup per sample.
        data["derived"]["endpoint_lookups_per_loop"] = 5.2
        failed = {
            (g.workload, g.gate)
            for g in evaluate_gates(tampered)
            if not g.passed
        }
        assert ("round_loop", "endpoint_lookups_per_loop") in failed

    def test_gate_catches_zone_walk_regression(self, report):
        tampered = copy.deepcopy(report)
        tampered["workloads"]["end_to_end"]["derived"]["zone_walks_per_site"] = 2.9
        failed = {
            (g.workload, g.gate)
            for g in evaluate_gates(tampered)
            if not g.passed
        }
        assert ("end_to_end", "zone_walks_per_site") in failed

    def test_gate_catches_rng_construction_in_fault_plan(self, report):
        tampered = copy.deepcopy(report)
        tampered["workloads"]["fault_plan"]["derived"][
            "rng_constructions_per_decision"
        ] = 1.0
        failed = {g.gate for g in evaluate_gates(tampered) if not g.passed}
        assert "rng_constructions_per_decision" in failed

    def test_gate_catches_observer_scan_regression(self, report):
        tampered = copy.deepcopy(report)
        data = tampered["workloads"]["observers"]
        loops = (
            data["counters"]["download.loops_converged"]
            + data["counters"]["download.loops_exhausted"]
            + data["counters"]["download.loops_gave_up"]
        )
        # Simulate an observer re-scanning the campaign per site-round.
        data["derived"]["rows_scanned_per_observer"] = 100.0 * loops
        data["derived"]["index_hit_fraction"] = 0.2
        failed = {
            (g.workload, g.gate)
            for g in evaluate_gates(tampered)
            if not g.passed
        }
        assert ("observers", "rows_scanned_per_observer") in failed
        assert ("observers", "index_hit_fraction") in failed

    def test_gate_catches_observer_errors(self, report):
        tampered = copy.deepcopy(report)
        tampered["workloads"]["observers"]["counters"]["observers.errors"] = 2.0
        failed = {g.gate for g in evaluate_gates(tampered) if not g.passed}
        assert "observer_errors" in failed


class TestCompareReports:
    def test_rerun_is_counter_identical(self, report):
        again = run_bench(seed=SEED, scale=SCALE)
        comparisons = compare_reports(again, report)
        assert comparisons
        failed = [c.render() for c in comparisons if not c.passed]
        assert not failed

    def test_counter_drift_is_flagged(self, report):
        drifted = copy.deepcopy(report)
        drifted["workloads"]["round_loop"]["counters"]["dns.zone_walks"] += 100
        mismatched = [c for c in compare_reports(drifted, report) if not c.passed]
        assert [c.gate for c in mismatched] == ["counter:dns.zone_walks"]

    def test_digest_drift_is_flagged(self, report):
        drifted = copy.deepcopy(report)
        drifted["workloads"]["end_to_end"]["meta"]["repository_digest"] = "0" * 64
        mismatched = [c for c in compare_reports(drifted, report) if not c.passed]
        assert [c.gate for c in mismatched] == ["repository_digest"]

    def test_observer_report_digest_drift_is_flagged(self, report):
        drifted = copy.deepcopy(report)
        digests = drifted["workloads"]["observers"]["meta"]["report_digests"]
        assert digests, "observers workload must pin its report digests"
        name = sorted(digests)[0]
        digests[name] = "0" * 64
        mismatched = [c for c in compare_reports(drifted, report) if not c.passed]
        assert [c.gate for c in mismatched] == [f"report_digest:{name}"]

    def test_config_mismatch_refuses_to_compare(self, report):
        other = copy.deepcopy(report)
        other["meta"]["scale"] = SCALE * 2
        comparisons = compare_reports(other, report)
        assert len(comparisons) == 1
        assert comparisons[0].gate == "baseline_config_matches"
        assert not comparisons[0].passed

    def test_missing_workload_is_flagged(self, report):
        partial = copy.deepcopy(report)
        del partial["workloads"]["dns_phase"]
        mismatched = [c for c in compare_reports(partial, report) if not c.passed]
        assert ("dns_phase", "present") in {
            (c.workload, c.gate) for c in mismatched
        }

    def test_wall_clock_is_informational_only(self, report):
        slower = copy.deepcopy(report)
        for data in slower["workloads"].values():
            data["wall_seconds"] *= 100
        # A 100x slowdown fails nothing...
        assert all(c.passed for c in compare_reports(slower, report))
        # ...but is surfaced to the humans.
        lines = wall_clock_deltas(slower, report)
        assert lines and all("informational" in line for line in lines)


class TestReportIo:
    def test_write_read_round_trip(self, report, tmp_path):
        path = write_report(report, tmp_path / "BENCH_rounds.json")
        assert read_report(path) == report
        # The on-disk form is plain indented JSON ending in a newline, so
        # checked-in baselines diff cleanly in review.
        text = path.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == report

    def test_render_mentions_every_workload(self, report):
        rendered = render_report(report)
        for name in WORKLOADS:
            assert name in rendered
        assert f"seed {SEED}" in rendered


class TestCli:
    def test_bench_smoke_passes(self, capsys):
        from repro.cli import main

        code = main(
            ["bench", "--smoke", "--scale", str(SCALE),
             "--workloads", "fault_plan", "dns_phase"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "structural gates:" in out
        assert "FAIL" not in out

    def test_bench_check_missing_baseline_fails(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["bench", "--check", "--baseline", str(tmp_path / "nope.json"),
             "--scale", str(SCALE), "--workloads", "fault_plan"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "not found" in out

    def test_bench_check_against_fresh_baseline_passes(self, capsys, tmp_path):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        assert main(
            ["bench", "--scale", str(SCALE), "--workloads", "fault_plan",
             "--out", str(baseline)]
        ) == 0
        code = main(
            ["bench", "--check", "--baseline", str(baseline),
             "--scale", str(SCALE), "--workloads", "fault_plan"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "counters match" in out


class TestComparison:
    def test_render_comparison_reports_speedups_and_deltas(self, report):
        from repro.perf import render_comparison

        old = copy.deepcopy(report)
        old_round = old["workloads"]["round_loop"]
        old_round["wall_seconds"] *= 2.0
        old_round["spans"]["campaign.round"]["median_s"] *= 2.0
        old_round["counters"]["dns.zone_walks"] += 5
        rendered = render_comparison(old, report)
        assert "campaign.round median" in rendered
        assert "(2.00x)" in rendered
        assert "dns.zone_walks" in rendered
        # Untouched workloads report unchanged counters, not noise.
        assert "counters: unchanged" in rendered

    def test_render_comparison_tolerates_pre_median_baselines(self, report):
        from repro.perf import render_comparison

        old = copy.deepcopy(report)
        for data in old["workloads"].values():
            for span in data["spans"].values():
                span.pop("median_s", None)
        rendered = render_comparison(old, report)
        assert "campaign.round median" in rendered

    def test_render_comparison_warns_on_config_mismatch(self, report):
        from repro.perf import render_comparison

        old = copy.deepcopy(report)
        old["meta"]["scale"] = 9.9
        assert "WARNING: configs differ" in render_comparison(old, report)

    def test_cli_compare_prints_summary(self, capsys, tmp_path):
        from repro.cli import main

        baseline = tmp_path / "old.json"
        assert main(
            ["bench", "--scale", str(SCALE), "--workloads", "fault_plan",
             "--out", str(baseline)]
        ) == 0
        code = main(
            ["bench", "--compare", str(baseline),
             "--scale", str(SCALE), "--workloads", "fault_plan"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "comparison vs baseline" in out

    def test_cli_compare_missing_report_fails(self, capsys, tmp_path):
        from repro.cli import main

        code = main(
            ["bench", "--compare", str(tmp_path / "gone.json"),
             "--scale", str(SCALE), "--workloads", "fault_plan"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "not found" in out
