"""Confidence intervals and the paper's 10% criteria."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import RunningStats
from repro.stats.intervals import (
    ConfidenceInterval,
    interval_from_stats,
    t_confidence_interval,
    t_critical,
    within_relative,
)


class TestTCritical:
    def test_matches_known_value(self):
        # t_{0.975, 4} = 2.776...
        assert t_critical(0.95, 4) == pytest.approx(2.776, abs=1e-3)

    def test_decreases_with_dof(self):
        assert t_critical(0.95, 2) > t_critical(0.95, 30)

    def test_bounds(self):
        with pytest.raises(ValueError):
            t_critical(1.5, 4)
        with pytest.raises(ValueError):
            t_critical(0.95, 0)


class TestConfidenceInterval:
    def test_low_high(self):
        ci = ConfidenceInterval(mean=10.0, half_width=2.0, confidence=0.95, n=5)
        assert ci.low == 8.0 and ci.high == 12.0
        assert ci.relative_half_width == pytest.approx(0.2)

    def test_zero_mean_relative_width_is_inf(self):
        ci = ConfidenceInterval(mean=0.0, half_width=1.0, confidence=0.95, n=5)
        assert ci.relative_half_width == float("inf")
        assert not ci.meets_target(0.1)

    def test_meets_target(self):
        ci = ConfidenceInterval(mean=100.0, half_width=9.0, confidence=0.95, n=5)
        assert ci.meets_target(0.10)
        assert not ci.meets_target(0.05)


class TestTConfidenceInterval:
    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            t_confidence_interval([1.0])

    def test_identical_samples_have_zero_width(self):
        ci = t_confidence_interval([5.0] * 10)
        assert ci.half_width == 0.0
        assert ci.meets_target(0.0001)

    def test_matches_manual_computation(self):
        data = [10.0, 12.0, 11.0, 9.0, 13.0]
        ci = t_confidence_interval(data, 0.95)
        acc = RunningStats()
        acc.extend(data)
        expected = t_critical(0.95, 4) * acc.stderr
        assert ci.half_width == pytest.approx(expected)

    def test_online_equals_batch(self):
        data = [10.0, 12.0, 11.0, 9.0, 13.0]
        acc = RunningStats()
        acc.extend(data)
        assert interval_from_stats(acc).half_width == pytest.approx(
            t_confidence_interval(data).half_width
        )

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_more_samples_of_same_data_tighten_interval(self, data):
        """Duplicating the sample can only shrink the t-interval."""
        one = t_confidence_interval(data)
        two = t_confidence_interval(data * 2)
        assert two.half_width <= one.half_width + 1e-9


class TestWithinRelative:
    def test_anchored_on_second_argument(self):
        assert within_relative(95.0, 100.0, 0.05)
        assert not within_relative(100.0, 95.0, 0.05)  # 5/95 > 5%

    def test_zero_anchor(self):
        assert within_relative(0.0, 0.0, 0.1)
        assert not within_relative(1.0, 0.0, 0.1)

    def test_exact_boundary(self):
        assert within_relative(90.0, 100.0, 0.10)
        assert not within_relative(89.999, 100.0, 0.10)
