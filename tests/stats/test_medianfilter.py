"""Median filtering and the paper's step detector."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.medianfilter import detect_step, median_filter


class TestMedianFilter:
    def test_constant_series_unchanged(self):
        assert median_filter([5.0] * 7, 3) == [5.0] * 7

    def test_removes_isolated_spike(self):
        series = [1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0]
        assert median_filter(series, 3) == [1.0] * 7

    def test_length_one_is_identity(self):
        series = [3.0, 1.0, 2.0]
        assert median_filter(series, 1) == series

    def test_edges_use_truncated_windows(self):
        series = [1.0, 9.0, 1.0, 1.0]
        filtered = median_filter(series, 3)
        assert filtered[0] == 5.0  # median of [1, 9]

    def test_even_length_rejected(self):
        with pytest.raises(ValueError):
            median_filter([1.0], 2)

    def test_empty_series(self):
        assert median_filter([], 3) == []

    @given(
        st.lists(st.floats(0.1, 100.0, allow_nan=False), min_size=1, max_size=40),
        st.sampled_from([1, 3, 5, 11]),
    )
    @settings(max_examples=80, deadline=None)
    def test_output_within_input_range(self, series, length):
        filtered = median_filter(series, length)
        assert len(filtered) == len(series)
        assert all(min(series) <= v <= max(series) for v in filtered)


def step_series(
    before: float, after: float, n_before: int = 12, n_after: int = 12, jitter=0.0
) -> list[float]:
    rng = random.Random(5)
    out = [before * (1 + rng.uniform(-jitter, jitter)) for _ in range(n_before)]
    out += [after * (1 + rng.uniform(-jitter, jitter)) for _ in range(n_after)]
    return out


class TestDetectStep:
    def test_detects_upward_step(self):
        detection = detect_step(step_series(10.0, 15.0))
        assert detection is not None
        assert detection.direction == 1
        assert detection.index == pytest.approx(12, abs=2)
        assert detection.magnitude == pytest.approx(0.5, rel=0.1)

    def test_detects_downward_step(self):
        detection = detect_step(step_series(15.0, 10.0))
        assert detection is not None
        assert detection.direction == -1

    def test_ignores_small_step(self):
        # 20% change is below the 30% threshold.
        assert detect_step(step_series(10.0, 12.0)) is None

    def test_ignores_transient_excursion(self):
        # A 3-sample excursion cannot satisfy persistence 6.
        series = [10.0] * 10 + [20.0] * 3 + [10.0] * 10
        assert detect_step(series) is None

    def test_detects_step_despite_jitter(self):
        detection = detect_step(step_series(10.0, 16.0, jitter=0.05))
        assert detection is not None and detection.direction == 1

    def test_stationary_noise_not_flagged(self):
        rng = random.Random(11)
        series = [10.0 * (1 + rng.uniform(-0.08, 0.08)) for _ in range(40)]
        assert detect_step(series) is None

    def test_short_series_returns_none(self):
        assert detect_step([10.0, 15.0, 15.0]) is None

    def test_persistence_validation(self):
        with pytest.raises(ValueError):
            detect_step([1.0] * 20, persistence=0)

    @given(
        st.floats(5.0, 50.0),
        st.floats(1.5, 3.0),
        st.integers(8, 15),
        st.integers(8, 15),
    )
    @settings(max_examples=60, deadline=None)
    def test_large_steps_always_detected(self, base, factor, n_before, n_after):
        series = step_series(base, base * factor, n_before, n_after)
        detection = detect_step(series)
        assert detection is not None
        assert detection.direction == 1
