"""Linear regression and trend detection."""

from __future__ import annotations

import random

import pytest

from repro.stats.regression import detect_trend, linear_regression


class TestLinearRegression:
    def test_exact_line(self):
        fit = linear_regression([0, 1, 2, 3], [1.0, 3.0, 5.0, 7.0])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_constant_series_has_no_trend_evidence(self):
        fit = linear_regression([0, 1, 2, 3], [5.0, 5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        assert fit.p_value == 1.0

    def test_needs_three_points(self):
        with pytest.raises(ValueError):
            linear_regression([0, 1], [1.0, 2.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            linear_regression([0, 1, 2], [1.0, 2.0])


class TestDetectTrend:
    def test_detects_steady_upward_trend(self):
        series = [100.0 * (1.01**i) for i in range(30)]
        trend = detect_trend(series)
        assert trend is not None
        assert trend.direction == 1
        assert trend.relative_slope == pytest.approx(0.01, rel=0.2)

    def test_detects_steady_downward_trend(self):
        series = [100.0 * (0.99**i) for i in range(30)]
        trend = detect_trend(series)
        assert trend is not None and trend.direction == -1

    def test_flat_noisy_series_not_flagged(self):
        rng = random.Random(3)
        series = [100.0 * (1 + rng.uniform(-0.05, 0.05)) for _ in range(40)]
        assert detect_trend(series) is None

    def test_tiny_slope_below_threshold(self):
        series = [100.0 + 0.01 * i for i in range(30)]
        assert detect_trend(series, slope_threshold=0.004) is None

    def test_noisy_trend_still_detected(self):
        rng = random.Random(3)
        series = [
            100.0 * (1.012**i) * (1 + rng.uniform(-0.03, 0.03)) for i in range(40)
        ]
        trend = detect_trend(series)
        assert trend is not None and trend.direction == 1

    def test_short_series_returns_none(self):
        assert detect_trend([1.0, 2.0]) is None

    def test_nonpositive_mean_returns_none(self):
        assert detect_trend([-1.0, -2.0, -3.0, -4.0]) is None
