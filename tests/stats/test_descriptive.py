"""Welford accumulator and simple descriptive statistics."""

from __future__ import annotations

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.descriptive import RunningStats, mean, stdev

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMeanStdev:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_matches_statistics(self):
        data = [3.1, 4.1, 5.9, 2.6, 5.3]
        assert stdev(data) == pytest.approx(statistics.stdev(data))

    def test_stdev_single_value_is_zero(self):
        assert stdev([4.2]) == 0.0

    def test_stdev_empty_raises(self):
        with pytest.raises(ValueError):
            stdev([])


class TestRunningStats:
    def test_matches_batch_statistics(self):
        data = [1.5, 2.5, 2.5, 9.0, -3.0]
        acc = RunningStats()
        acc.extend(data)
        assert acc.n == 5
        assert acc.mean == pytest.approx(statistics.mean(data))
        assert acc.stdev == pytest.approx(statistics.stdev(data))

    def test_empty_accumulator_raises(self):
        with pytest.raises(ValueError):
            RunningStats().mean
        with pytest.raises(ValueError):
            RunningStats().stderr

    def test_variance_below_two_samples(self):
        acc = RunningStats()
        acc.add(5.0)
        assert acc.variance == 0.0

    def test_stderr(self):
        acc = RunningStats()
        acc.extend([1.0, 2.0, 3.0, 4.0])
        assert acc.stderr == pytest.approx(statistics.stdev([1, 2, 3, 4]) / 2.0)

    @given(st.lists(finite_floats, min_size=2, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_welford_agrees_with_batch(self, data):
        acc = RunningStats()
        acc.extend(data)
        assert acc.mean == pytest.approx(statistics.mean(data), rel=1e-9, abs=1e-6)
        assert acc.stdev == pytest.approx(statistics.stdev(data), rel=1e-6, abs=1e-6)

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_concatenation(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        combined = RunningStats()
        combined.extend(left + right)
        assert merged.n == combined.n
        assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-6)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        assert a.merge(RunningStats()).mean == a.mean
        assert RunningStats().merge(a).mean == a.mean
