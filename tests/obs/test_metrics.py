"""Counters, gauges, histogram percentiles, and in-place reset."""

from __future__ import annotations

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_float_amounts(self):
        counter = Counter("seconds")
        counter.inc(0.25)
        counter.inc(0.5)
        assert counter.value == pytest.approx(0.75)


class TestGauge:
    def test_set_tracks_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.set(3)
        assert gauge.value == 3
        assert gauge.max_value == 10

    def test_update_max_keeps_peak_only(self):
        gauge = Gauge("g")
        gauge.update_max(5)
        gauge.update_max(2)
        gauge.update_max(9)
        assert gauge.max_value == 9

    def test_negative_initial_value_is_honoured(self):
        gauge = Gauge("g")
        gauge.set(-4)
        assert gauge.value == -4
        assert gauge.max_value == -4


class TestHistogram:
    def test_count_sum_mean(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.mean == 2.0

    def test_percentiles_interpolate(self):
        hist = Histogram("h")
        for value in range(1, 101):  # 1..100
            hist.observe(value)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(90) == pytest.approx(90.1)

    def test_single_value(self):
        hist = Histogram("h")
        hist.observe(7.0)
        assert hist.percentile(50) == 7.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(50) == 0.0

    def test_min_max_exact(self):
        hist = Histogram("h")
        for value in (5.0, -2.0, 9.0):
            hist.observe(value)
        assert hist.min_value == -2.0
        assert hist.max_value == 9.0

    def test_as_dict_summary(self):
        hist = Histogram("h")
        for value in (1.0, 3.0):
            hist.observe(value)
        snapshot = hist.as_dict()
        assert snapshot["type"] == "histogram"
        assert snapshot["count"] == 2
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 3.0


class TestRegistry:
    def test_lazily_creates_and_caches(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_reset_preserves_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        hist = registry.histogram("h")
        counter.inc(3)
        gauge.set(5)
        hist.observe(1.0)
        registry.reset()
        # Cached references stay live — the obs-instrumented modules cache
        # their metric objects at import time.
        assert registry.counter("c") is counter
        assert counter.value == 0
        assert gauge.value == 0 and gauge.max_value == 0
        assert hist.count == 0 and hist.values == []

    def test_as_dict_sorted_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.gauge("a").set(2)
        snapshot = registry.as_dict()
        assert list(snapshot) == ["a", "b"]
        assert snapshot["b"] == {"type": "counter", "value": 1.0}
