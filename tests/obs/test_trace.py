"""Span tracing: nesting, fake-clock determinism, disabled-mode cost."""

from __future__ import annotations

import pytest

from repro.obs.trace import _NULL_SPAN, Tracer


class FakeClock:
    """A deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestSpans:
    def test_single_span_times_against_injected_clock(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("work") as span:
            pass
        assert span.start == 0.0
        assert span.end == 1.0
        assert span.duration == 1.0

    def test_nesting_depth_recorded(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("innermost"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["innermost"].depth == 2

    def test_attrs_are_stored(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("campaign.round", round=3, vantage="Penn"):
            pass
        assert tracer.spans[0].attrs == {"round": 3, "vantage": "Penn"}

    def test_fake_clock_runs_are_deterministic(self):
        def run() -> list[tuple[str, float, float]]:
            tracer = Tracer(clock=FakeClock(step=0.5), enabled=True)
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
            return [(s.name, s.start, s.duration) for s in tracer.spans]

        assert run() == run()

    def test_current_tracks_the_open_span(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        assert tracer.current is None
        with tracer.span("outer"):
            assert tracer.current.name == "outer"
            with tracer.span("inner"):
                assert tracer.current.name == "inner"
            assert tracer.current.name == "outer"
        assert tracer.current is None

    def test_exception_closes_span_and_children(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                tracer.span("dangling").__enter__()  # never exited
                raise RuntimeError("boom")
        assert all(s.end is not None for s in tracer.spans)
        assert tracer.current is None

    def test_completed_filters_by_name(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        for _ in range(3):
            with tracer.span("x"):
                pass
        with tracer.span("y"):
            pass
        assert len(tracer.completed("x")) == 3
        assert tracer.total_seconds("x") == 3.0

    def test_max_spans_cap_counts_overflow(self):
        tracer = Tracer(clock=FakeClock(), enabled=True, max_spans=2)
        for _ in range(5):
            with tracer.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_reset(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.spans == []
        assert tracer.current is None


class TestDisabled:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a", key=1)
        second = tracer.span("b")
        assert first is _NULL_SPAN
        assert second is _NULL_SPAN
        with first:
            pass
        assert tracer.spans == []

    def test_disabled_tracer_never_reads_the_clock(self):
        reads = []

        def clock() -> float:
            reads.append(1)
            return 0.0

        tracer = Tracer(clock=clock, enabled=False)
        with tracer.span("a"):
            pass
        assert reads == []
