"""Structured logging: formatters, per-subsystem loggers, idempotence."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs.log import JsonFormatter, KeyValueFormatter, get_logger, setup_logging


@pytest.fixture()
def clean_root():
    """Restore the ``repro`` root logger after each test."""
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    yield root
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


class TestLoggers:
    def test_get_logger_namespaced(self):
        assert get_logger("core.world").name == "repro.core.world"
        assert get_logger("").name == "repro"

    def test_subsystem_loggers_inherit_root_level(self, clean_root):
        setup_logging(level="INFO", stream=io.StringIO())
        assert get_logger("monitor").isEnabledFor(logging.INFO)
        assert not get_logger("monitor").isEnabledFor(logging.DEBUG)


class TestFormatters:
    def _record(self, **extra) -> logging.LogRecord:
        record = logging.LogRecord(
            "repro.test", logging.INFO, "x.py", 1, "hello world", None, None
        )
        for key, value in extra.items():
            setattr(record, key, value)
        return record

    def test_key_value_line(self):
        line = KeyValueFormatter().format(self._record(round=3, vantage="Penn"))
        assert 'msg="hello world"' in line
        assert "level=INFO" in line
        assert "round=3" in line
        assert "vantage=Penn" in line

    def test_json_line_parses(self):
        line = JsonFormatter().format(self._record(round=3))
        payload = json.loads(line)
        assert payload["msg"] == "hello world"
        assert payload["logger"] == "repro.test"
        assert payload["round"] == 3


class TestSetup:
    def test_writes_structured_lines_to_stream(self, clean_root):
        stream = io.StringIO()
        setup_logging(level="DEBUG", stream=stream)
        get_logger("core").info("built", extra={"sites": 7})
        line = stream.getvalue().strip()
        assert 'msg="built"' in line
        assert "sites=7" in line

    def test_level_filters(self, clean_root):
        stream = io.StringIO()
        setup_logging(level="WARNING", stream=stream)
        get_logger("core").info("quiet")
        get_logger("core").warning("loud")
        assert "quiet" not in stream.getvalue()
        assert "loud" in stream.getvalue()

    def test_json_format(self, clean_root):
        stream = io.StringIO()
        setup_logging(level="INFO", fmt="json", stream=stream)
        get_logger("core").info("built")
        assert json.loads(stream.getvalue())["msg"] == "built"

    def test_idempotent_no_duplicate_handlers(self, clean_root):
        stream = io.StringIO()
        setup_logging(level="INFO", stream=stream)
        setup_logging(level="INFO", stream=stream)
        get_logger("core").info("once")
        assert stream.getvalue().count('msg="once"') == 1

    def test_unknown_format_rejected(self, clean_root):
        with pytest.raises(ValueError):
            setup_logging(fmt="xml")

    def test_unknown_level_rejected(self, clean_root):
        with pytest.raises(ValueError):
            setup_logging(level="NOISY")
