"""JSON report export: aggregation, phase breakdown, round-trip."""

from __future__ import annotations

from repro.obs.export import (
    SCHEMA,
    aggregate_spans,
    build_report,
    phase_breakdown,
    read_report,
    render_breakdown,
    write_report,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

from .test_trace import FakeClock


def _sample_tracer() -> Tracer:
    tracer = Tracer(clock=FakeClock(), enabled=True)
    with tracer.span("world.build", seed=7):
        pass
    with tracer.span("campaign.run", rounds=2):
        with tracer.span("campaign.round", round=0):
            pass
        with tracer.span("campaign.round", round=1):
            pass
    with tracer.span("analysis.contexts"):
        pass
    return tracer


class TestAggregation:
    def test_aggregate_spans_by_name(self):
        tracer = _sample_tracer()
        agg = aggregate_spans(tracer.spans)
        assert agg["campaign.round"]["count"] == 2
        assert agg["campaign.round"]["total_s"] == 2.0
        assert agg["campaign.round"]["mean_s"] == 1.0
        assert set(agg) == {
            "world.build",
            "campaign.run",
            "campaign.round",
            "analysis.contexts",
        }

    def test_open_spans_excluded(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        tracer.span("open").__enter__()
        assert aggregate_spans(tracer.spans) == {}


class TestPhaseBreakdown:
    def test_phases_from_spans(self):
        tracer = _sample_tracer()
        registry = MetricsRegistry()
        rows = {r["phase"]: r for r in phase_breakdown(tracer, registry)}
        assert rows["world build"]["seconds"] == 1.0
        assert rows["rounds"]["count"] == 1
        assert rows["analysis"]["seconds"] == 1.0

    def test_routing_falls_back_to_counter(self):
        # Route computations fire inside rounds; with no bgp.compute spans
        # the accumulated-seconds counter supplies the phase time.
        tracer = Tracer(clock=FakeClock(), enabled=True)
        registry = MetricsRegistry()
        registry.counter("bgp.compute_seconds").inc(0.75)
        rows = {r["phase"]: r for r in phase_breakdown(tracer, registry)}
        assert rows["routing"]["seconds"] == 0.75


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        tracer = _sample_tracer()
        registry = MetricsRegistry()
        registry.counter("monitor.sites_measured").inc(42)
        registry.gauge("monitor.slot_occupancy").update_max(25)
        registry.histogram("download.samples_per_loop").observe(5.0)

        path = write_report(
            tmp_path / "BENCH_test.json",
            bench="test",
            tracer=tracer,
            registry=registry,
            meta={"seed": 7},
        )
        report = read_report(path)
        direct = build_report(
            "test", tracer=tracer, registry=registry, meta={"seed": 7}
        )
        assert report == direct
        assert report["bench"] == "test"
        assert report["schema"] == SCHEMA
        assert report["meta"] == {"seed": 7}
        assert report["metrics"]["monitor.sites_measured"]["value"] == 42
        assert report["metrics"]["monitor.slot_occupancy"]["max"] == 25
        assert report["spans"]["campaign.round"]["count"] == 2

    def test_include_span_events(self, tmp_path):
        tracer = _sample_tracer()
        path = write_report(
            tmp_path / "r.json",
            bench="test",
            tracer=tracer,
            registry=MetricsRegistry(),
            include_spans=True,
        )
        report = read_report(path)
        names = [event["name"] for event in report["span_events"]]
        assert "campaign.round" in names


class TestRender:
    def test_render_breakdown_table(self):
        tracer = _sample_tracer()
        report = build_report("test", tracer=tracer, registry=MetricsRegistry())
        text = render_breakdown(report)
        assert "phase breakdown (test)" in text
        assert "world build" in text
        assert "campaign.round" in text
        # shares sum to 100% over the four phases (3 non-zero here).
        assert "%" in text
