"""Site catalog generation invariants."""

from __future__ import annotations

import random

import pytest

from repro.config import AdoptionConfig, PerformanceConfig, SiteConfig, TopologyConfig, DualStackConfig
from repro.dataplane.performance import ThroughputModel
from repro.net.addresses import AddressFamily
from repro.rng import RngStreams
from repro.sites.behaviour import BehaviourKind
from repro.sites.catalog import build_catalog
from repro.topology.dualstack import deploy_ipv6
from repro.topology.generator import generate_topology

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6

N_ROUNDS = 20


@pytest.fixture(scope="module")
def catalog_world():
    topo_config = TopologyConfig(
        n_tier1=3, n_transit=14, n_stub=40, n_content=25, n_cdn=2
    )
    topo = generate_topology(topo_config, random.Random(61))
    ds = deploy_ipv6(topo, DualStackConfig(), random.Random(62))
    model = ThroughputModel(PerformanceConfig(), RngStreams(63))
    site_config = SiteConfig(n_sites=800)
    adoption = AdoptionConfig(base_adoption=0.05)
    catalog = build_catalog(
        site_config, adoption, ds, model, n_rounds=N_ROUNDS, rng=random.Random(64)
    )
    return ds, catalog


class TestCatalogStructure:
    def test_universe_includes_churn_and_external_pools(self, catalog_world):
        _, catalog = catalog_world
        assert len(catalog) > 800
        assert catalog.ranking.list_size == 800
        assert catalog.ranking.universe_size < len(catalog)

    def test_names_are_unique(self, catalog_world):
        _, catalog = catalog_world
        names = {site.name for site in catalog.sites}
        assert len(names) == len(catalog)

    def test_by_name_roundtrip(self, catalog_world):
        _, catalog = catalog_world
        site = catalog.sites[17]
        assert catalog.by_name(site.name) is site
        with pytest.raises(KeyError):
            catalog.by_name("ghost.example")


class TestPlacement:
    def test_dual_stack_sites_live_in_v6_ases(self, catalog_world):
        ds, catalog = catalog_world
        for site in catalog.sites:
            if site.adoption_round is not None or site.w6d_event_round is not None:
                assert site.v6_origin_asn in ds.v6_enabled

    def test_cdn_sites_serve_v4_from_cdn_as(self, catalog_world):
        _, catalog = catalog_world
        cdn_sites = [s for s in catalog.sites if s.cdn is not None]
        assert cdn_sites, "expected some CDN-fronted sites"
        for site in cdn_sites:
            assert site.dest_asn(V4) == site.cdn.provider.asn
            assert site.dest_asn(V6) == site.v6_origin_asn
            assert site.is_dl()

    def test_split_hosting_sites_are_dl(self, catalog_world):
        _, catalog = catalog_world
        for site in catalog.sites:
            if site.cdn is None and site.v6_origin_asn != site.origin_asn:
                assert site.is_dl()


class TestBehaviourMix:
    def test_fractions_roughly_match_config(self, catalog_world):
        _, catalog = catalog_world
        kinds = [site.behaviour.kind for site in catalog.sites]
        stationary = sum(k is BehaviourKind.STATIONARY for k in kinds) / len(kinds)
        assert stationary == pytest.approx(0.86, abs=0.05)

    def test_participants_are_stationary_and_healthy(self, catalog_world):
        _, catalog = catalog_world
        for site in catalog.w6d_participants():
            assert site.behaviour.kind is BehaviourKind.STATIONARY
            assert site.server.v6_efficiency == 1.0

    def test_impaired_servers_only_where_dual_stack(self, catalog_world):
        _, catalog = catalog_world
        for site in catalog.sites:
            if site.server.v6_impaired:
                assert (
                    site.adoption_round is not None
                    or site.w6d_event_round is not None
                )


class TestAccessibility:
    def test_monotone_after_adoption(self, catalog_world):
        _, catalog = catalog_world
        site = next(
            s for s in catalog.sites
            if s.adoption_round is not None and s.adoption_round > 0
        )
        assert not site.v6_accessible_at(site.adoption_round - 1)
        assert site.v6_accessible_at(site.adoption_round)
        assert site.v6_accessible_at(N_ROUNDS)

    def test_event_only_participants_flicker(self, catalog_world):
        _, catalog = catalog_world
        flickers = [
            s for s in catalog.sites
            if s.w6d_event_round is not None and s.adoption_round is None
        ]
        if not flickers:
            pytest.skip("no event-only participants in this draw")
        site = flickers[0]
        event = site.w6d_event_round
        assert site.v6_accessible_at(event)
        assert not site.v6_accessible_at(event - 1)
        assert not site.v6_accessible_at(event + 1)

    def test_accessible_fraction_grows(self, catalog_world):
        _, catalog = catalog_world
        assert catalog.accessible_fraction(N_ROUNDS - 1) >= catalog.accessible_fraction(0)
