"""Site behaviour models."""

from __future__ import annotations

import pytest

from repro.net.addresses import AddressFamily
from repro.sites.behaviour import BehaviourKind, SiteBehaviour

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


class TestStationary:
    def test_multiplier_is_one(self):
        b = SiteBehaviour.stationary()
        assert b.multiplier(V4, 0) == 1.0
        assert b.multiplier(V6, 99) == 1.0
        assert not b.path_changes_at(V6, 5)


class TestSteps:
    def test_step_up(self):
        b = SiteBehaviour(kind=BehaviourKind.STEP_UP, change_round=5, magnitude=0.5)
        assert b.multiplier(V4, 4) == 1.0
        assert b.multiplier(V4, 5) == pytest.approx(1.5)
        assert b.multiplier(V4, 20) == pytest.approx(1.5)

    def test_step_down_is_reciprocal(self):
        b = SiteBehaviour(kind=BehaviourKind.STEP_DOWN, change_round=5, magnitude=0.5)
        assert b.multiplier(V4, 5) == pytest.approx(1 / 1.5)

    def test_affected_family_gating(self):
        b = SiteBehaviour(
            kind=BehaviourKind.STEP_DOWN,
            change_round=3,
            magnitude=0.5,
            path_change=True,
            affected_family=V6,
        )
        assert b.multiplier(V4, 10) == 1.0
        assert b.multiplier(V6, 10) < 1.0
        assert b.path_changes_at(V6, 3)
        assert not b.path_changes_at(V6, 2)
        assert not b.path_changes_at(V4, 10)

    def test_step_without_path_change(self):
        b = SiteBehaviour(kind=BehaviourKind.STEP_UP, change_round=3, magnitude=0.5)
        assert not b.path_changes_at(V4, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteBehaviour(kind=BehaviourKind.STEP_UP, magnitude=0.0)
        with pytest.raises(ValueError):
            SiteBehaviour(kind=BehaviourKind.TREND_UP, slope_per_round=0.0)
        with pytest.raises(ValueError):
            SiteBehaviour(
                kind=BehaviourKind.TREND_UP,
                slope_per_round=0.01,
                path_change=True,
            )


class TestTrends:
    def test_upward_geometric_drift(self):
        b = SiteBehaviour(kind=BehaviourKind.TREND_UP, slope_per_round=0.01)
        assert b.multiplier(V4, 0) == 1.0
        assert b.multiplier(V4, 10) == pytest.approx(1.01**10)

    def test_downward_stays_positive(self):
        b = SiteBehaviour(kind=BehaviourKind.TREND_DOWN, slope_per_round=0.02)
        assert 0 < b.multiplier(V4, 200) < 0.1

    def test_kind_flags(self):
        assert BehaviourKind.STEP_UP.is_step
        assert not BehaviourKind.STEP_UP.is_trend
        assert BehaviourKind.TREND_DOWN.is_trend
        assert not BehaviourKind.STATIONARY.is_step
