"""IPv6 adoption dynamics."""

from __future__ import annotations

import random

import pytest

from repro.config import AdoptionConfig
from repro.sites.adoption import AdoptionModel


@pytest.fixture()
def model() -> AdoptionModel:
    return AdoptionModel(AdoptionConfig(), population=100_000)


class TestProbability:
    def test_monotone_in_round(self, model):
        probs = [model.probability(500, r) for r in range(0, 40, 5)]
        assert probs == sorted(probs)

    def test_monotone_in_rank(self, model):
        config = model.config
        assert model.probability(1, 10) > model.probability(10_000, 10)

    def test_jumps_at_events(self, model):
        config = model.config
        before = model.probability(500, config.iana_depletion_round - 1)
        after = model.probability(500, config.iana_depletion_round)
        assert after > before * 1.2
        before_w6d = model.probability(500, config.world_ipv6_day_round - 1)
        after_w6d = model.probability(500, config.world_ipv6_day_round)
        assert after_w6d > before_w6d * 1.2

    def test_capped_at_one(self):
        config = AdoptionConfig(base_adoption=0.5, rank_decade_boost=3.0)
        model = AdoptionModel(config, population=100_000)
        assert model.probability(1, 40) == 1.0

    def test_rank_factor_bottom_is_unit(self, model):
        assert model.rank_factor(model.population) == pytest.approx(1.0)

    def test_bad_rank_rejected(self, model):
        with pytest.raises(ValueError):
            model.rank_factor(0)


class TestAdoptionRound:
    def test_monotone_accessibility(self, model):
        rng = random.Random(3)
        for _ in range(50):
            rank = rng.randrange(1, model.population)
            round_idx = model.adoption_round(rank, rng, horizon=40)
            if round_idx is not None:
                assert 0 <= round_idx <= 40

    def test_high_rank_adopts_more_often(self, model):
        def adoption_rate(rank: int) -> float:
            rng = random.Random(9)
            hits = sum(
                model.adoption_round(rank, rng, horizon=40) is not None
                for _ in range(800)
            )
            return hits / 800

        assert adoption_rate(1) > adoption_rate(90_000)

    def test_certain_adoption(self):
        config = AdoptionConfig(base_adoption=0.999)
        model = AdoptionModel(config, population=10)
        rng = random.Random(1)
        assert model.adoption_round(1, rng, horizon=5) == 0


class TestExpectedFraction:
    def test_grows_over_time(self, model):
        assert model.expected_fraction(39) > model.expected_fraction(0)

    def test_between_zero_and_one(self, model):
        for r in (0, 10, 39):
            assert 0.0 <= model.expected_fraction(r) <= 1.0

    def test_population_validation(self):
        with pytest.raises(ValueError):
            AdoptionModel(AdoptionConfig(), population=0)
