"""The ranked site list with churn."""

from __future__ import annotations

import random

import pytest

from repro.errors import ConfigError
from repro.sites.ranking import SiteRanking


def make_ranking(universe=200, list_size=100, churn=0.1, seed=5) -> SiteRanking:
    return SiteRanking(
        universe_size=universe,
        list_size=list_size,
        churn_rate=churn,
        rng=random.Random(seed),
    )


class TestSiteRanking:
    def test_round_zero_is_most_popular_prefix(self):
        ranking = make_ranking()
        assert ranking.list_at_round(0) == list(range(100))

    def test_lists_are_stable_once_generated(self):
        ranking = make_ranking()
        a = ranking.list_at_round(3)
        _ = ranking.list_at_round(7)
        assert ranking.list_at_round(3) == a

    def test_order_of_queries_does_not_matter(self):
        a = make_ranking()
        b = make_ranking()
        _ = a.list_at_round(5)  # generated forward
        later_first = b.list_at_round(5)
        assert a.list_at_round(5) == later_first

    def test_churn_replaces_expected_count(self):
        ranking = make_ranking(churn=0.1)
        r0 = set(ranking.list_at_round(0))
        r1 = set(ranking.list_at_round(1))
        assert len(r0 - r1) == 10
        assert len(r1 - r0) == 10

    def test_zero_churn_is_static(self):
        ranking = make_ranking(churn=0.0)
        assert ranking.list_at_round(0) == ranking.list_at_round(9)

    def test_list_size_is_constant(self):
        ranking = make_ranking()
        for r in range(8):
            listing = ranking.list_at_round(r)
            assert len(listing) == 100
            assert len(set(listing)) == 100

    def test_newcomers_come_from_reserve(self):
        ranking = make_ranking()
        seen = ranking.ever_listed(6)
        assert seen <= set(range(200))
        assert len(seen) > 100

    def test_reserve_exhaustion_stops_churn(self):
        ranking = make_ranking(universe=110, list_size=100, churn=0.1)
        # Only 10 reserve ids; churn stops after they are consumed.
        r1 = set(ranking.list_at_round(1))
        r2 = set(ranking.list_at_round(2))
        assert r2 == r1  # reserve empty -> no further churn

    def test_rank_of(self):
        ranking = make_ranking()
        listing = ranking.list_at_round(0)
        assert ranking.rank_of(listing[0], 0) == 1
        assert ranking.rank_of(listing[99], 0) == 100
        assert ranking.rank_of(199, 0) is None

    def test_first_appearance(self):
        ranking = make_ranking()
        assert ranking.first_appearance(0, 0) == 0
        # A reserve site appears when churned in (or never within bound).
        appearance = ranking.first_appearance(150, 10)
        assert appearance is None or appearance >= 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            make_ranking(universe=50, list_size=100)
        with pytest.raises(ConfigError):
            make_ranking(churn=1.0)
        ranking = make_ranking()
        with pytest.raises(ConfigError):
            ranking.list_at_round(-1)
