"""Caching resolver: positive/negative caching, CNAME chains, query_both."""

from __future__ import annotations

import pytest

from repro.dns.records import RecordType, ResourceRecord
from repro.dns.resolver import NEGATIVE_TTL, Resolver
from repro.dns.zone import ZoneStore
from repro.errors import DnsError, NoRecord, NxDomain
from repro.net.addresses import AddressFamily, IPv4Address, IPv6Address

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


@pytest.fixture()
def store() -> ZoneStore:
    store = ZoneStore()
    zone = store.zone_for("example.")
    zone.add(ResourceRecord("dual.example.", RecordType.A, IPv4Address(1), ttl=60))
    zone.add(ResourceRecord("dual.example.", RecordType.AAAA, IPv6Address(1), ttl=60))
    zone.add(ResourceRecord("v4only.example.", RecordType.A, IPv4Address(2), ttl=60))
    zone.add(ResourceRecord("alias.example.", RecordType.CNAME, "dual.example."))
    zone.add(ResourceRecord("loop-a.example.", RecordType.CNAME, "loop-b.example."))
    zone.add(ResourceRecord("loop-b.example.", RecordType.CNAME, "loop-a.example."))
    return store


@pytest.fixture()
def resolver(store) -> Resolver:
    return Resolver(store=store)


class TestResolve:
    def test_resolves_address(self, resolver):
        result = resolver.resolve("dual.example.", V4)
        assert result.addresses == (IPv4Address(1),)
        assert result.final_name == "dual.example."

    def test_name_is_case_folded(self, resolver):
        result = resolver.resolve("DUAL.example.", V4)
        assert result.addresses == (IPv4Address(1),)

    def test_missing_family_raises_norecord(self, resolver):
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6)

    def test_unknown_name_raises_nxdomain(self, resolver):
        with pytest.raises(NxDomain):
            resolver.resolve("ghost.example.", V4)

    def test_cname_chain_followed(self, resolver):
        result = resolver.resolve("alias.example.", V4)
        assert result.final_name == "dual.example."
        assert result.addresses == (IPv4Address(1),)

    def test_cname_loop_detected(self, resolver):
        with pytest.raises(DnsError):
            resolver.resolve("loop-a.example.", V4)


class TestCaching:
    def test_second_query_hits_cache(self, resolver):
        first = resolver.resolve("dual.example.", V4, now=0.0)
        second = resolver.resolve("dual.example.", V4, now=1.0)
        assert not first.from_cache
        assert second.from_cache
        assert resolver.hits >= 1

    def test_cache_expires_with_ttl(self, resolver):
        resolver.resolve("dual.example.", V4, now=0.0)
        later = resolver.resolve("dual.example.", V4, now=61.0)
        assert not later.from_cache

    def test_negative_answers_are_cached(self, resolver):
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6, now=0.0)
        misses_before = resolver.misses
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6, now=1.0)
        assert resolver.misses == misses_before  # served from negative cache

    def test_negative_cache_expires(self, resolver):
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6, now=0.0)
        misses_before = resolver.misses
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6, now=NEGATIVE_TTL + 1.0)
        assert resolver.misses > misses_before

    def test_cache_sees_new_records_after_expiry(self, resolver, store):
        """A site adopting IPv6 becomes visible once the negative TTL lapses."""
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6, now=0.0)
        store.zone_for("example.").add(
            ResourceRecord("v4only.example.", RecordType.AAAA, IPv6Address(9))
        )
        result = resolver.resolve("v4only.example.", V6, now=NEGATIVE_TTL + 1.0)
        assert result.addresses == (IPv6Address(9),)

    def test_flush(self, resolver):
        resolver.resolve("dual.example.", V4, now=0.0)
        resolver.flush()
        assert not resolver.resolve("dual.example.", V4, now=1.0).from_cache


class TestWholeNamePrefetch:
    """One authoritative walk answers A, AAAA, and CNAME for a name."""

    def test_second_family_answered_from_cache(self, resolver):
        resolver.resolve("dual.example.", V4, now=0.0)
        misses_before = resolver.misses
        result = resolver.resolve("dual.example.", V6, now=1.0)
        assert result.from_cache
        assert resolver.misses == misses_before

    def test_sites_sharing_cdn_target_hit_cache_within_round(self):
        """Two CDN customers CNAME to one edge name: the second site's
        queries only miss on its own CNAME — the shared edge answers
        both its families from cache."""
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(ResourceRecord("edge.cdn.example.", RecordType.A, IPv4Address(7)))
        zone.add(
            ResourceRecord("edge.cdn.example.", RecordType.AAAA, IPv6Address(7))
        )
        zone.add(
            ResourceRecord("site-a.example.", RecordType.CNAME, "edge.cdn.example.")
        )
        zone.add(
            ResourceRecord("site-b.example.", RecordType.CNAME, "edge.cdn.example.")
        )
        resolver = Resolver(store=store)
        first = resolver.query_both("site-a.example.", now=0.0)
        assert first[V4].final_name == "edge.cdn.example."
        misses_before = resolver.misses
        second = resolver.query_both("site-b.example.", now=1.0)
        assert second[V4].final_name == "edge.cdn.example."
        assert second[V6].addresses == (IPv6Address(7),)
        # Only site-b's own name missed; the shared edge was all hits.
        assert resolver.misses == misses_before + 1

    def test_aaaa_reuses_chain_resolved_for_a(self):
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(ResourceRecord("edge.cdn.example.", RecordType.A, IPv4Address(7)))
        zone.add(
            ResourceRecord("edge.cdn.example.", RecordType.AAAA, IPv6Address(7))
        )
        zone.add(
            ResourceRecord("www.example.", RecordType.CNAME, "edge.cdn.example.")
        )
        resolver = Resolver(store=store)
        resolver.resolve("www.example.", V4, now=0.0)
        misses_before = resolver.misses
        result = resolver.resolve("www.example.", V6, now=1.0)
        assert result.from_cache
        assert result.final_name == "edge.cdn.example."
        assert resolver.misses == misses_before

    def test_cached_nxdomain_stays_nxdomain(self, resolver):
        """The cached negative must keep NXDOMAIN and NoRecord distinct:
        an unknown name answers NXDOMAIN from cache, not NoRecord."""
        with pytest.raises(NxDomain):
            resolver.resolve("ghost.example.", V4, now=0.0)
        misses_before = resolver.misses
        with pytest.raises(NxDomain):
            resolver.resolve("ghost.example.", V6, now=1.0)
        assert resolver.misses == misses_before


class TestResolveQuiet:
    def test_negative_answers_return_none(self, resolver):
        assert resolver.resolve_quiet("v4only.example.", V6) is None
        assert resolver.resolve_quiet("ghost.example.", V4) is None

    def test_positive_answer_matches_resolve(self, resolver):
        quiet = resolver.resolve_quiet("dual.example.", V4, now=0.0)
        loud = resolver.resolve("dual.example.", V4, now=1.0)
        assert quiet.addresses == loud.addresses
        assert quiet.final_name == loud.final_name


class TestQueryBoth:
    def test_dual_stack_site(self, resolver):
        answers = resolver.query_both("dual.example.")
        assert answers[V4] is not None and answers[V6] is not None

    def test_v4_only_site(self, resolver):
        answers = resolver.query_both("v4only.example.")
        assert answers[V4] is not None
        assert answers[V6] is None

    def test_unknown_site(self, resolver):
        answers = resolver.query_both("ghost.example.")
        assert answers[V4] is None and answers[V6] is None


class TestDns64:
    """AAAA synthesis for v4-only names (RFC 6147)."""

    @pytest.fixture()
    def resolver64(self, store) -> Resolver:
        return Resolver(store=store, dns64=True)

    def test_v4_only_name_gets_synthesized_aaaa(self, resolver64):
        from repro.net.nat64 import is_nat64_mapped, synthesize_aaaa

        result = resolver64.resolve("v4only.example.", V6)
        assert result.rtype == RecordType.AAAA
        assert result.addresses == (synthesize_aaaa(IPv4Address(2)),)
        assert is_nat64_mapped(result.addresses[0])

    def test_real_aaaa_is_never_overridden(self, resolver64):
        from repro.net.nat64 import is_nat64_mapped

        result = resolver64.resolve("dual.example.", V6)
        assert result.addresses == (IPv6Address(1),)
        assert not is_nat64_mapped(result.addresses[0])

    def test_nxdomain_stays_nxdomain(self, resolver64):
        with pytest.raises(NxDomain):
            resolver64.resolve("ghost.example.", V6)

    def test_synthesis_follows_cname_chains(self, resolver64, store):
        from repro.net.nat64 import is_nat64_mapped

        store.zone_for("example.").add(
            ResourceRecord("alias4.example.", RecordType.CNAME, "v4only.example.")
        )
        result = resolver64.resolve("alias4.example.", V6)
        assert result.final_name == "v4only.example."
        assert is_nat64_mapped(result.addresses[0])

    def test_ipv4_answers_untouched(self, resolver64):
        result = resolver64.resolve("v4only.example.", V4)
        assert result.addresses == (IPv4Address(2),)

    def test_disabled_resolver_still_raises(self, resolver):
        with pytest.raises(NoRecord):
            resolver.resolve("v4only.example.", V6)

    def test_synthesis_counter_increments(self, resolver64):
        from repro.obs import metrics

        before = metrics.counter("dns.dns64.synthesized").value
        resolver64.resolve("v4only.example.", V6)
        assert metrics.counter("dns.dns64.synthesized").value == before + 1

    def test_query_both_sees_both_families(self, resolver64):
        from repro.net.nat64 import is_nat64_mapped

        answers = resolver64.query_both("v4only.example.")
        assert answers[V4].addresses == (IPv4Address(2),)
        assert is_nat64_mapped(answers[V6].addresses[0])
