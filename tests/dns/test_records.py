"""DNS record types and RRSets."""

from __future__ import annotations

import pytest

from repro.dns.records import RecordType, ResourceRecord, RRSet
from repro.errors import DnsError
from repro.net.addresses import AddressFamily, IPv4Address, IPv6Address


class TestRecordType:
    def test_for_family(self):
        assert RecordType.for_family(AddressFamily.IPV4) is RecordType.A
        assert RecordType.for_family(AddressFamily.IPV6) is RecordType.AAAA

    def test_family_roundtrip(self):
        assert RecordType.A.family is AddressFamily.IPV4
        assert RecordType.AAAA.family is AddressFamily.IPV6

    def test_cname_has_no_family(self):
        with pytest.raises(DnsError):
            RecordType.CNAME.family


class TestResourceRecord:
    def test_a_record(self):
        r = ResourceRecord("www.example.", RecordType.A, IPv4Address.parse("1.2.3.4"))
        assert str(r.address) == "1.2.3.4"

    def test_aaaa_record(self):
        r = ResourceRecord("www.example.", RecordType.AAAA, IPv6Address.parse("::1"))
        assert str(r.address) == "::1"

    def test_type_value_mismatch_rejected(self):
        with pytest.raises(DnsError):
            ResourceRecord("www.example.", RecordType.A, IPv6Address.parse("::1"))
        with pytest.raises(DnsError):
            ResourceRecord("www.example.", RecordType.AAAA, IPv4Address.parse("1.2.3.4"))
        with pytest.raises(DnsError):
            ResourceRecord("www.example.", RecordType.CNAME, IPv4Address.parse("1.2.3.4"))

    def test_uppercase_name_rejected(self):
        with pytest.raises(DnsError):
            ResourceRecord("WWW.example.", RecordType.A, IPv4Address.parse("1.2.3.4"))

    def test_negative_ttl_rejected(self):
        with pytest.raises(DnsError):
            ResourceRecord(
                "www.example.", RecordType.A, IPv4Address.parse("1.2.3.4"), ttl=-1
            )

    def test_cname_has_no_address(self):
        r = ResourceRecord("www.example.", RecordType.CNAME, "cdn.example.")
        with pytest.raises(DnsError):
            r.address


class TestRRSet:
    def test_ttl_is_minimum(self):
        records = (
            ResourceRecord("a.example.", RecordType.A, IPv4Address(1), ttl=100),
            ResourceRecord("a.example.", RecordType.A, IPv4Address(2), ttl=50),
        )
        rrset = RRSet("a.example.", RecordType.A, records)
        assert rrset.ttl == 50
        assert len(rrset) == 2
        assert bool(rrset)

    def test_empty_set_is_falsy(self):
        rrset = RRSet("a.example.", RecordType.A, ())
        assert not rrset
        assert rrset.ttl == 0.0

    def test_mismatched_member_rejected(self):
        stray = ResourceRecord("b.example.", RecordType.A, IPv4Address(1))
        with pytest.raises(DnsError):
            RRSet("a.example.", RecordType.A, (stray,))

    def test_addresses(self):
        records = (
            ResourceRecord("a.example.", RecordType.A, IPv4Address(7)),
        )
        assert RRSet("a.example.", RecordType.A, records).addresses() == [IPv4Address(7)]
