"""Authoritative zones."""

from __future__ import annotations

import pytest

from repro.dns.records import RecordType, ResourceRecord
from repro.dns.zone import Zone, ZoneStore
from repro.errors import DnsError, NxDomain
from repro.net.addresses import IPv4Address, IPv6Address


def a_record(name: str, value: int = 1) -> ResourceRecord:
    return ResourceRecord(name, RecordType.A, IPv4Address(value))


class TestZone:
    def test_lookup_existing(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        rrset = zone.lookup("www.example.", RecordType.A)
        assert len(rrset) == 1

    def test_nxdomain_for_unknown_name(self):
        zone = Zone("example.")
        with pytest.raises(NxDomain):
            zone.lookup("nope.example.", RecordType.A)

    def test_empty_set_for_missing_type(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        rrset = zone.lookup("www.example.", RecordType.AAAA)
        assert not rrset

    def test_duplicate_record_rejected(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        with pytest.raises(DnsError):
            zone.add(a_record("www.example."))

    def test_multiple_distinct_records_allowed(self):
        zone = Zone("example.")
        zone.add(a_record("www.example.", 1))
        zone.add(a_record("www.example.", 2))
        assert len(zone.lookup("www.example.", RecordType.A)) == 2

    def test_cname_exclusivity(self):
        zone = Zone("example.")
        zone.add(ResourceRecord("www.example.", RecordType.CNAME, "cdn.example."))
        with pytest.raises(DnsError):
            zone.add(a_record("www.example."))

    def test_no_second_cname(self):
        zone = Zone("example.")
        zone.add(ResourceRecord("www.example.", RecordType.CNAME, "cdn.example."))
        with pytest.raises(DnsError):
            zone.add(ResourceRecord("www.example.", RecordType.CNAME, "x.example."))

    def test_cname_cannot_join_existing_records(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        with pytest.raises(DnsError):
            zone.add(ResourceRecord("www.example.", RecordType.CNAME, "x.example."))

    def test_remove(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        assert zone.remove("www.example.", RecordType.A) == 1
        with pytest.raises(NxDomain):
            zone.lookup("www.example.", RecordType.A)

    def test_remove_keeps_name_if_other_types_remain(self):
        zone = Zone("example.")
        zone.add(a_record("www.example."))
        zone.add(
            ResourceRecord("www.example.", RecordType.AAAA, IPv6Address(1))
        )
        zone.remove("www.example.", RecordType.AAAA)
        # Name still exists: A lookup succeeds, AAAA gives empty set.
        assert zone.lookup("www.example.", RecordType.A)
        assert not zone.lookup("www.example.", RecordType.AAAA)

    def test_names_and_len(self):
        zone = Zone("example.")
        zone.add(a_record("a.example."))
        zone.add(a_record("b.example."))
        assert zone.names() == {"a.example.", "b.example."}
        assert len(zone) == 2


class TestZoneStore:
    def test_zone_for_creates_once(self):
        store = ZoneStore()
        assert store.zone_for("example.") is store.zone_for("example.")

    def test_authoritative_lookup_across_zones(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        store.zone_for("cdn.").add(a_record("edge.cdn.", 9))
        assert store.authoritative_lookup("edge.cdn.", RecordType.A)

    def test_authoritative_nxdomain(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        with pytest.raises(NxDomain):
            store.authoritative_lookup("nope.example.", RecordType.A)

    def test_missing_type_returns_empty(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        assert not store.authoritative_lookup("www.example.", RecordType.AAAA)

    def test_len(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        assert len(store) == 1


class TestZoneView:
    """Per-name memoisation with push-based, per-name invalidation."""

    def test_view_object_is_stable(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        assert store.view() is store.view()

    def test_entry_memoised_across_lookups(self):
        store = ZoneStore()
        store.zone_for("example.").add(a_record("www.example."))
        view = store.view()
        assert view.entry("www.example.") is view.entry("www.example.")

    def test_entry_collects_all_types_in_one_walk(self):
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(a_record("www.example."))
        zone.add(ResourceRecord("www.example.", RecordType.AAAA, IPv6Address(1)))
        entry = store.view().entry("www.example.")
        assert entry.exists
        assert set(entry.rrsets) == {RecordType.A, RecordType.AAAA}

    def test_mutation_evicts_only_that_name(self):
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(a_record("www.example."))
        zone.add(a_record("other.example.", 2))
        view = store.view()
        stale = view.entry("www.example.")
        other = view.entry("other.example.")
        zone.add(ResourceRecord("www.example.", RecordType.AAAA, IPv6Address(1)))
        # Same view object; only the mutated name was recomputed.
        assert store.view() is view
        fresh = view.entry("www.example.")
        assert fresh is not stale
        assert RecordType.AAAA in fresh.rrsets
        assert view.entry("other.example.") is other

    def test_negative_entry_evicted_on_add(self):
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(a_record("www.example."))
        view = store.view()
        assert not view.entry("new.example.").exists
        zone.add(a_record("new.example.", 3))
        assert view.entry("new.example.").exists

    def test_remove_evicts_name(self):
        store = ZoneStore()
        zone = store.zone_for("example.")
        zone.add(a_record("www.example."))
        view = store.view()
        assert view.entry("www.example.").exists
        zone.remove("www.example.", RecordType.A)
        assert not view.entry("www.example.").exists
