"""Quickstart: build a synthetic dual-stack Internet, run the monitoring
campaign, and check the paper's two headline findings.

Run with::

    python examples/quickstart.py [--seed 11]

Takes ~15-60 seconds depending on scale.
"""

from __future__ import annotations

import argparse
import time

from repro import build_world, run_campaign, small_config
from repro.analysis.classify import SiteCategory
from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.experiments.scenario import build_contexts
from repro.net.addresses import AddressFamily


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    config = small_config(seed=args.seed)
    print("Building the world (topology, IPv6 overlay, DNS, sites)...")
    t0 = time.time()
    world = build_world(config)
    summary = world.dualstack.summary()
    print(
        f"  {summary['ases']} ASes ({summary['v6_enabled']} v6-enabled), "
        f"{summary['v4_links']} v4 links / {summary['v6_links']} v6 links, "
        f"{summary['tunnels']} tunnels, {len(world.catalog)} sites "
        f"[{time.time() - t0:.1f}s]"
    )

    print(f"Running {config.campaign.n_rounds} weekly monitoring rounds "
          f"from {len(world.vantages)} vantage points...")
    t0 = time.time()
    result = run_campaign(world)
    print(f"  done in {time.time() - t0:.1f}s, "
          f"{result.total_measurements()} download statistics recorded")

    print("\nPer-vantage view:")
    contexts = build_contexts(config, result)
    for name, context in contexts.items():
        reach = context.db.v6_reachability(config.campaign.n_rounds - 1)
        print(
            f"  {name:8s} dual-stack sites: {len(context.dual_stack_sites):4d} "
            f"kept: {len(context.kept):4d} "
            f"DL/SP/DP: {len(context.sites_in(SiteCategory.DL)):3d}/"
            f"{len(context.sites_in(SiteCategory.SP)):3d}/"
            f"{len(context.sites_in(SiteCategory.DP)):3d} "
            f"IPv6 reachability: {100 * reach:.1f}%"
        )

    print("\nHypothesis checks (the paper's findings):")
    for name, context in contexts.items():
        sp = verdict_fractions(context.sp_evaluations.values())
        dp = verdict_fractions(context.dp_evaluations.values())
        print(
            f"  {name:8s} SP comparable: {100 * sp[ASVerdict.COMPARABLE]:5.1f}%   "
            f"DP comparable: {100 * dp[ASVerdict.COMPARABLE]:5.1f}%"
        )
    print(
        "\nH1: on shared paths IPv6 performs on par with IPv4 "
        "(SP column high).\n"
        "H2: routing differences drive poorer IPv6 performance "
        "(DP column low)."
    )

    # Bonus: look at one dual-stack site's paths.
    penn = world.vantages[0]
    db = result.repository.database(penn.name)
    dual = db.dual_stack_sites()
    if dual:
        sid = dual[0]
        site = world.catalog.site(sid)
        print(f"\nExample site {site.name} from {penn.name}:")
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            path = db.as_path(sid, family)
            speeds = db.speeds(sid, family)
            mean = sum(speeds) / len(speeds) if speeds else float("nan")
            print(f"  {family}: path={path} mean speed={mean:.1f} kB/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
