"""The World IPv6 Day experiment (paper Section 5.3/5.4, Tables 10 & 12).

On June 8, 2011 hundreds of major websites enabled IPv6 for 24 hours.
The paper's monitors switched to 30-minute rounds against the
participant roster.  This example reruns that day in the simulator and
prints the two W6D tables next to the paper's numbers.

Run with::

    python examples/world_ipv6_day.py
"""

from __future__ import annotations

import time

from repro import build_world, run_campaign, run_world_ipv6_day, small_config
from repro.experiments.scenario import ExperimentData, build_contexts
from repro.experiments import worldipv6day


def main() -> int:
    config = small_config(seed=23)
    print("Building the world and running the regular campaign first")
    print("(the event happens inside an ongoing monitoring effort)...")
    t0 = time.time()
    world = build_world(config)
    run_campaign(world)
    print(f"  regular campaign done in {time.time() - t0:.1f}s")

    participants = world.catalog.w6d_participants()
    print(
        f"\n{len(participants)} sites advertised World IPv6 Day participation; "
        f"{sum(p.w6d_good_v6 for p in participants)} provisioned their IPv6 "
        "presence at parity with IPv4."
    )

    t0 = time.time()
    campaign = run_world_ipv6_day(world, n_rounds=24)
    print(f"24 half-hour monitoring rounds done in {time.time() - t0:.1f}s")

    data = ExperimentData(
        config=config,
        campaign=campaign,
        contexts=build_contexts(config, campaign),
    )
    print()
    print(worldipv6day.run_table10(data).render())
    print()
    print(worldipv6day.run_table12(data).render())
    print(
        "\nReading: SP participants are almost all comparable (H1, and no "
        "zero-mode - participants fixed their servers); DP participants "
        "fare far better than the everyday DP population (Table 11) but "
        "still lag SP - consistent with H2."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
