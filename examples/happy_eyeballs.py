"""Extension: what would Happy Eyeballs have made of the 2011 Internet?

The paper closes by asking how IPv6's routing deficits would affect
users.  RFC 6555 ("Happy Eyeballs", 2012) was the ecosystem's answer:
browsers race IPv6 against (delayed) IPv4 and take whichever connects
first.  This example runs that race against every dual-stack destination
of the synthetic 2011 Internet and reports how often users would still
land on IPv6 — per SP/DP category — and what the fallback costs.

Run with::

    python examples/happy_eyeballs.py
"""

from __future__ import annotations

import random

from repro import build_world, run_campaign, small_config
from repro.analysis.classify import SiteCategory
from repro.dataplane.latency import LatencyConfig, LatencyModel
from repro.experiments.scenario import build_contexts
from repro.net.addresses import AddressFamily
from repro.web.happyeyeballs import HappyEyeballsClient, summarise_races

V4, V6 = AddressFamily.IPV4, AddressFamily.IPV6


def main() -> int:
    config = small_config(seed=11)
    world = build_world(config)
    result = run_campaign(world)
    contexts = build_contexts(config, result)

    latency = LatencyModel(LatencyConfig(), world.rngs)
    client = HappyEyeballsClient(latency)
    rng = random.Random(2012)

    print("Happy Eyeballs (RFC 6555) over the synthetic 2011 Internet")
    print(f"IPv6 preference delay: {client.preference_delay_ms:.0f} ms\n")
    print(f"{'vantage':9s} {'category':9s} {'races':>6s} {'IPv6 share':>11s} "
          f"{'mean connect':>13s} {'fallback cost':>14s}")

    for name, context in contexts.items():
        vantage_asn = context.vantage.asn
        for category in (SiteCategory.SP, SiteCategory.DP):
            outcomes = []
            for sid in context.sites_in(category):
                site = world.catalog.site(sid)
                v4_path = world.forwarding_path(
                    vantage_asn, site.dest_asn(V4), V4, alternate=False
                )
                v6_path = world.forwarding_path(
                    vantage_asn, site.dest_asn(V6), V6, alternate=False
                )
                if v4_path is None:
                    continue
                outcomes.append(client.race(v4_path, v6_path, rng))
            stats = summarise_races(outcomes)
            if stats.n_races == 0:
                continue
            print(
                f"{name:9s} {category.value:9s} {stats.n_races:6d} "
                f"{100 * stats.v6_share:10.1f}% "
                f"{stats.mean_connect_ms:10.1f} ms "
                f"{stats.mean_fallback_penalty_ms:11.1f} ms"
            )

    print(
        "\nReading: with a 300 ms head start IPv6 wins almost every race, "
        "even over the longer DP detours - Happy Eyeballs made dual-stack "
        "safe for users while hiding exactly the performance gaps this "
        "paper set out to measure."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
