"""Vantage-point anatomy: why the same Internet looks different per vantage.

The paper's Table 4 shows wildly different SP/DP splits per vantage
point (Penn saw 6% SP; UPC Broadband 66%).  The split is a property of
the *vantage's neighbourhood*: how much of its upstream peering fabric
is mirrored in IPv6.  This example dissects each vantage point: its AS,
its v6 uplinks, its SP/DP/DL mix, and a side-by-side of the same
destination's v4/v6 paths from two different vantage points.

Run with::

    python examples/vantage_point_study.py
"""

from __future__ import annotations

from repro import build_world, run_campaign, small_config
from repro.analysis.classify import SiteCategory
from repro.dataplane.path import ForwardingPath
from repro.experiments.scenario import build_contexts
from repro.net.addresses import AddressFamily

V4, V6 = AddressFamily.IPV4, AddressFamily.IPV6


def main() -> int:
    config = small_config(seed=31)
    world = build_world(config)
    result = run_campaign(world)
    contexts = build_contexts(config, result)

    print("Vantage-point anatomy")
    print("=" * 70)
    for vantage in world.vantages:
        ds = world.dualstack
        v4_up = sorted(ds.providers_of(vantage.asn, V4))
        v6_up = sorted(ds.providers_of(vantage.asn, V6))
        v6_peers_of_providers = sum(
            len(ds.peers_of(p, V6)) for p in v6_up
        )
        line = (
            f"{vantage.name:9s} AS{vantage.asn:<5d} "
            f"v4 uplinks: {len(v4_up)}  v6 uplinks: {len(v6_up)}  "
            f"v6 peering behind providers: {v6_peers_of_providers}"
        )
        context = contexts.get(vantage.name)
        if context is not None:
            sp = len(context.sites_in(SiteCategory.SP))
            dp = len(context.sites_in(SiteCategory.DP))
            dl = len(context.sites_in(SiteCategory.DL))
            total = max(1, sp + dp)
            line += f"  | DL/SP/DP: {dl}/{sp}/{dp} (SP share {100 * sp / total:.0f}%)"
        print(line)

    # Pick a destination measured from two AS_PATH vantages and compare.
    names = [n for n in contexts]
    if len(names) >= 2:
        a, b = contexts[names[0]], contexts[names[1]]
        common = sorted(set(a.kept) & set(b.kept))
        if common:
            sid = common[0]
            site = world.catalog.site(sid)
            print(f"\nSame destination, two vantage points: {site.name}")
            for context in (a, b):
                print(f"  from {context.vantage.name}:")
                for family in (V4, V6):
                    as_path = context.db.as_path(sid, family)
                    if as_path is None:
                        print(f"    {family}: unreachable")
                        continue
                    path = ForwardingPath.from_as_path(
                        world.dualstack, as_path, family
                    )
                    speeds = context.db.speeds(sid, family)
                    mean = sum(speeds) / len(speeds)
                    print(f"    {path.describe()}  mean {mean:.1f} kB/s")
    print(
        "\nReading: the vantage with the richest v6 peering neighbourhood "
        "sees the highest SP share - its v6 routes simply coincide with v4."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
