"""Ablation: how IPv6/IPv4 peering parity shapes performance parity.

The paper's headline recommendation is that "promoting IPv6 and IPv4
peering parity is probably the single most effective step towards equal
IPv6 and IPv4 performance".  This experiment tests that claim in the
simulator: sweep the probability that an IPv4 peering link is mirrored
in IPv6 and watch (a) the share of destinations reached over identical
paths (SP) and (b) the share of destination ASes with comparable
performance.

Run with::

    python examples/peering_parity_sweep.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import build_world, run_campaign, small_config
from repro.analysis.classify import SiteCategory
from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.experiments.scenario import build_contexts

PARITIES = (0.0, 0.25, 0.5, 0.75, 1.0)
SEEDS = (11, 12, 13)


def run_at_parity(parity: float) -> dict[str, float]:
    """Average SP share and comparable-AS share over several seeds.

    Multiple seeds matter: in a small world only a handful of peering
    links sit on the vantage points' paths, so a single draw responds to
    the parity knob in coarse steps.
    """
    sp_share_sum = comparable_sum = 0.0
    for seed in SEEDS:
        config = small_config(seed=seed)
        config = replace(
            config, dualstack=replace(config.dualstack, peering_parity=parity)
        )
        world = build_world(config)
        result = run_campaign(world)
        contexts = build_contexts(config, result)

        sp_sites = dp_sites = 0
        comparable = total_ases = 0
        for context in contexts.values():
            sp_sites += len(context.sites_in(SiteCategory.SP))
            dp_sites += len(context.sites_in(SiteCategory.DP))
            for evaluations in (context.sp_evaluations, context.dp_evaluations):
                fractions = verdict_fractions(evaluations.values())
                comparable += fractions[ASVerdict.COMPARABLE] * len(evaluations)
                total_ases += len(evaluations)
        sl = sp_sites + dp_sites
        sp_share_sum += sp_sites / sl if sl else 0.0
        comparable_sum += comparable / total_ases if total_ases else 0.0
    return {
        "sp_share": sp_share_sum / len(SEEDS),
        "comparable_share": comparable_sum / len(SEEDS),
    }


def main() -> int:
    print("peering parity -> identical paths -> comparable performance")
    print(f"{'parity':>8s}  {'SP share of SL sites':>22s}  {'comparable ASes':>16s}")
    rows = []
    for parity in PARITIES:
        stats = run_at_parity(parity)
        rows.append((parity, stats))
        print(
            f"{parity:8.2f}  {100 * stats['sp_share']:21.1f}%  "
            f"{100 * stats['comparable_share']:15.1f}%"
        )
    # The paper's claim, checked:
    low_sp, high_sp = rows[0][1]["sp_share"], rows[-1][1]["sp_share"]
    low_cmp, high_cmp = (
        rows[0][1]["comparable_share"],
        rows[-1][1]["comparable_share"],
    )
    print(
        f"\nfull parity lifts the identical-path (SP) share from "
        f"{100 * low_sp:.1f}% to {100 * high_sp:.1f}% and the "
        f"comparable-AS share from {100 * low_cmp:.1f}% to "
        f"{100 * high_cmp:.1f}%."
    )
    print(
        "note: this quick sweep runs a deliberately small world where few "
        "v4 paths traverse peering links at all; at larger scales (see "
        "benchmarks/) the parity lever moves both shares much further."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
