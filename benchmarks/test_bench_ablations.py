"""Ablation benchmarks for the design choices DESIGN.md calls out.

* peering parity - the paper's remedy: more mirrored peering must mean
  more identical paths and more comparable destinations;
* tunnel prevalence - Table 7's low-hop anomaly should track how many
  v6-stranded ASes tunnel instead of staying dark;
* the 10% comparability band - Table 8/11 shares must respond smoothly
  (not cliff-like) to the threshold choice;
* the zero-mode rule - widening the band can only grow the zero-mode.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.analysis.classify import SiteCategory
from repro.analysis.hypotheses import ASVerdict, evaluate_groups, verdict_fractions
from repro.config import small_config
from repro.core import build_world, run_campaign
from repro.experiments.scenario import build_contexts


def _campaign_stats(config) -> dict[str, float]:
    campaign = run_campaign(build_world(config))
    contexts = build_contexts(config, campaign)
    sp_sites = dp_sites = 0
    comparable = total = 0
    tunneled = len(campaign.world.dualstack.tunnels)
    for context in contexts.values():
        sp_sites += len(context.sites_in(SiteCategory.SP))
        dp_sites += len(context.sites_in(SiteCategory.DP))
        for evaluations in (context.sp_evaluations, context.dp_evaluations):
            for evaluation in evaluations.values():
                total += 1
                comparable += evaluation.verdict is ASVerdict.COMPARABLE
    sl = max(1, sp_sites + dp_sites)
    return {
        "sp_share": sp_sites / sl,
        "comparable": comparable / max(1, total),
        "tunnels": tunneled,
    }


class TestPeeringParityAblation:
    def test_bench_parity_sweep(self, benchmark):
        def sweep():
            out = {}
            for parity in (0.1, 0.9):
                config = small_config(seed=11)
                config = replace(
                    config,
                    dualstack=replace(config.dualstack, peering_parity=parity),
                )
                out[parity] = _campaign_stats(config)
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # The paper's remedy: parity raises the identical-path share.
        assert results[0.9]["sp_share"] > results[0.1]["sp_share"]


class TestTunnelPrevalenceAblation:
    def test_bench_tunnel_sweep(self, benchmark):
        def sweep():
            out = {}
            for prob in (0.0, 0.9):
                config = small_config(seed=11)
                config = replace(
                    config, dualstack=replace(config.dualstack, tunnel_prob=prob)
                )
                out[prob] = _campaign_stats(config)
            return out

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert results[0.0]["tunnels"] == 0
        assert results[0.9]["tunnels"] > 0


class TestComparabilityThresholdAblation:
    def test_bench_threshold_sensitivity(self, benchmark, data):
        context = data.context("Penn")
        sp_groups = context.groups_in(SiteCategory.SP)

        def comparable_share(threshold: float) -> float:
            cfg = replace(data.config.analysis, comparable_threshold=threshold)
            evaluations = evaluate_groups(context.db, sp_groups, cfg)
            return verdict_fractions(evaluations.values())[ASVerdict.COMPARABLE]

        def sweep():
            return {t: comparable_share(t) for t in (0.05, 0.10, 0.20)}

        shares = benchmark(sweep)
        # Monotone in the threshold, and no cliff around the paper's 10%.
        assert shares[0.05] <= shares[0.10] <= shares[0.20]
        assert shares[0.20] - shares[0.05] < 0.5


class TestZeroModeRuleAblation:
    def test_bench_zero_mode_band(self, benchmark, data):
        from repro.analysis.zeromode import relative_differences, zero_mode_sites

        context = data.context("Penn")
        diffs = relative_differences(context.db, context.kept)

        def sweep():
            return {
                t: len(zero_mode_sites(diffs, t)) for t in (0.05, 0.10, 0.20)
            }

        counts = benchmark(sweep)
        assert counts[0.05] <= counts[0.10] <= counts[0.20]
        assert counts[0.10] > 0
