"""Benchmarks regenerating Tables 1-5 (inventory, profiles, sanitisation)."""

from __future__ import annotations

from repro.experiments import table1, table2, table3, table4, table5

from .conftest import save_report


class TestTable1:
    def test_bench_table1_vantages(self, benchmark, data, report_dir):
        table = benchmark(table1.run, data)
        save_report(report_dir, "table1", table)
        assert len(table.rows) == 6


class TestTable2:
    def test_bench_table2_profiles(self, benchmark, data, report_dir):
        table = benchmark(table2.run, data)
        save_report(report_dir, "table2", table)
        rows = table2.profile_rows(data)
        totals = rows["Sites (total)"][:-1]
        assert totals[0] == max(totals)  # Penn leads
        assert rows["ASes crossed (IPv6)"][-1] <= rows["ASes crossed (IPv4)"][-1]


class TestTable3:
    def test_bench_table3_failure_causes(self, benchmark, data, report_dir):
        table = benchmark(table3.run, data)
        save_report(report_dir, "table3", table)
        for row in table.rows:
            assert row[1] >= max(row[2:7])  # insufficient dominates


class TestTable4:
    def test_bench_table4_classification(self, benchmark, data, report_dir):
        table = benchmark(table4.run, data)
        save_report(report_dir, "table4", table)
        for row in table.rows:
            assert sum(row[1:]) > 0


class TestTable5:
    def test_bench_table5_removed_audit(self, benchmark, data, report_dir):
        table = benchmark(table5.run, data)
        save_report(report_dir, "table5", table)
        assert len(table.rows) == 6
