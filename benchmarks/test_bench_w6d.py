"""Benchmarks regenerating Tables 10 and 12 (World IPv6 Day)."""

from __future__ import annotations

from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.experiments import worldipv6day

from .conftest import save_report


class TestTable10:
    def test_bench_table10_w6d_sp(self, benchmark, w6d_data, report_dir):
        table = benchmark(worldipv6day.run_table10, w6d_data)
        save_report(report_dir, "table10", table)
        for name in worldipv6day.W6D_VANTAGES:
            evaluations = w6d_data.context(name).sp_evaluations
            if not evaluations:
                continue
            fractions = verdict_fractions(evaluations.values())
            assert fractions[ASVerdict.COMPARABLE] >= 0.6


class TestTable12:
    def test_bench_table12_w6d_dp(self, benchmark, w6d_data, data, report_dir):
        table = benchmark(worldipv6day.run_table12, w6d_data)
        save_report(report_dir, "table12", table)
        # W6D DP participants fare far better than the everyday DP
        # population (Table 12 vs Table 11), yet below SP levels.
        total_w6d = []
        for name in worldipv6day.W6D_VANTAGES:
            evaluations = w6d_data.context(name).dp_evaluations
            if evaluations:
                fractions = verdict_fractions(evaluations.values())
                total_w6d.append(fractions[ASVerdict.COMPARABLE])
        if total_w6d:
            everyday = verdict_fractions(
                data.context("Penn").dp_evaluations.values()
            )[ASVerdict.COMPARABLE]
            assert max(total_w6d) > everyday
