"""Substrate benchmarks: topology, routing, DNS, monitoring throughput.

These time the building blocks rather than a paper artifact — useful to
track where campaign time goes and to catch regressions in the hot paths
(route computation and the per-site monitoring step dominate).
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.routing import PathOracle, compute_routes_to
from repro.config import DualStackConfig, TopologyConfig, small_config
from repro.core.campaign import run_campaign
from repro.core.world import build_world
from repro.net.addresses import AddressFamily
from repro.topology.dualstack import deploy_ipv6
from repro.topology.generator import generate_topology

V4 = AddressFamily.IPV4


@pytest.fixture(scope="module")
def medium_dualstack():
    config = TopologyConfig(n_tier1=6, n_transit=60, n_stub=300, n_content=150, n_cdn=4)
    topo = generate_topology(config, random.Random(41))
    return deploy_ipv6(topo, DualStackConfig(), random.Random(42))


class TestTopologyBench:
    def test_bench_generate_topology(self, benchmark):
        config = TopologyConfig(
            n_tier1=6, n_transit=60, n_stub=300, n_content=150, n_cdn=4
        )
        topo = benchmark(generate_topology, config, random.Random(7))
        assert topo.is_connected()

    def test_bench_deploy_ipv6(self, benchmark, medium_dualstack):
        base = medium_dualstack.base
        ds = benchmark(deploy_ipv6, base, DualStackConfig(), random.Random(1))
        assert ds.v6_enabled


class TestRoutingBench:
    def test_bench_routes_to_one_destination(self, benchmark, medium_dualstack):
        dest = medium_dualstack.asn_list[-1]
        state = benchmark(compute_routes_to, medium_dualstack, dest, V4)
        assert state.best

    def test_bench_paths_to_many_destinations(self, benchmark, medium_dualstack):
        ds = medium_dualstack
        source = ds.asn_list[len(ds.asn_list) // 2]

        def compute_all():
            oracle = PathOracle(ds, sources=[source])
            return sum(
                1
                for dest in ds.asn_list[:150]
                if oracle.as_path(source, dest, V4) is not None
            )

        reached = benchmark(compute_all)
        assert reached == 150


class TestWorldBench:
    def test_bench_build_world(self, benchmark):
        cfg = small_config(seed=5)
        world = benchmark(build_world, cfg)
        assert world.vantages

    def test_bench_one_monitoring_round(self, benchmark):
        cfg = small_config(seed=6)
        world = build_world(cfg)
        world.advance_to_round(0)
        from repro.monitor.tool import MonitoringTool

        def one_round():
            vantage = world.vantages[0]
            tool = MonitoringTool(
                vantage=vantage,
                env=world.environment_for(vantage),
                config=cfg.monitor,
                rng=random.Random(3),
            )
            return tool.run_round(0)

        report = benchmark(one_round)
        assert report.n_monitored > 0

    def test_bench_full_small_campaign(self, benchmark):
        # One iteration only - this is the end-to-end smoke benchmark.
        cfg = small_config(seed=8)

        def campaign():
            return run_campaign(build_world(cfg), n_rounds=4)

        result = benchmark.pedantic(campaign, rounds=1, iterations=1)
        assert result.total_measurements() > 0
