"""Benchmarks regenerating Figures 1, 3a, and 3b."""

from __future__ import annotations

from repro.experiments import fig1, fig3a, fig3b

from .conftest import save_report


class TestFig1:
    def test_bench_fig1_reachability_series(self, benchmark, data, report_dir):
        table = benchmark(fig1.run, data)
        save_report(report_dir, "fig1", table)
        # Shape: the series grows and jumps at World IPv6 Day.
        series = fig1.reachability_series(data)
        w6d = data.config.adoption.world_ipv6_day_round
        assert series[-1][1] > series[0][1]
        assert series[w6d][1] > series[w6d - 1][1]


class TestFig3a:
    def test_bench_fig3a_rank_buckets(self, benchmark, data, report_dir):
        table = benchmark(fig3a.run, data)
        save_report(report_dir, "fig3a", table)
        buckets = fig3a.reachability_by_rank(data)
        assert buckets[0][1] >= buckets[-1][1]


class TestFig3b:
    def test_bench_fig3b_sample_comparison(self, benchmark, data, report_dir):
        table = benchmark(fig3b.run, data)
        save_report(report_dir, "fig3b", table)
        top, extended = fig3b.v6_faster_by_sample(data)
        assert abs(top - extended) < 0.2
