"""Benchmarks regenerating Tables 6, 7, and 9 (performance tables)."""

from __future__ import annotations

from repro.experiments import table6, table7, table9
from repro.net.addresses import AddressFamily

from .conftest import save_report

V4 = AddressFamily.IPV4
V6 = AddressFamily.IPV6


class TestTable6:
    def test_bench_table6_dl_performance(self, benchmark, data, report_dir):
        table = benchmark(table6.run, data)
        save_report(report_dir, "table6", table)
        for name in ("Penn", "Comcast", "LU", "UPCB"):
            stats = table6.dl_statistics(data, name)
            if stats["n_sites"] >= 5:
                assert stats["v4_ge_v6"] >= 0.6
                assert stats["v4_perf"] > stats["v6_perf"]


class TestTable7:
    def test_bench_table7_dl_dp_hopcount(self, benchmark, data, report_dir):
        table = benchmark(table7.run, data)
        save_report(report_dir, "table7", table)
        buckets = table7.hopcount_table(data, "Penn")
        speeds = [
            buckets[V4][b].mean_speed
            for b in ("2", "3", "4", ">=5")
            if buckets[V4][b].n_sites >= 3
        ]
        if len(speeds) >= 2:
            assert speeds[0] > speeds[-1]  # v4 slows down with hops


class TestTable9:
    def test_bench_table9_sp_hopcount(self, benchmark, data, report_dir):
        table = benchmark(table9.run, data)
        save_report(report_dir, "table9", table)
        # SP rows pair up: same site counts per bucket for both families.
        from repro.analysis.classify import SiteCategory
        from repro.analysis.hopcount import performance_by_hopcount

        context = data.context("Comcast")
        buckets = performance_by_hopcount(
            context.db, context.sites_in(SiteCategory.SP)
        )
        for bucket in ("1", "2", "3", "4", ">=5"):
            assert buckets[V4][bucket].n_sites == buckets[V6][bucket].n_sites
