"""Benchmark fixtures.

The campaign powering every table/figure benchmark is built once per
session at the experiment scale; each benchmark then times its *analysis*
step (the paper's tables were all derived from one measurement
repository).  Rendered tables are written to ``benchmarks/reports/`` so
the paper-vs-measured comparison is inspectable after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.report import Table
from repro.experiments.scenario import (
    ExperimentData,
    experiment_config,
    get_experiment_data,
    get_w6d_data,
)

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def data() -> ExperimentData:
    return get_experiment_data(experiment_config())


@pytest.fixture(scope="session")
def w6d_data() -> ExperimentData:
    return get_w6d_data(experiment_config())


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


def save_report(report_dir: pathlib.Path, name: str, table: Table) -> None:
    path = report_dir / f"{name}.txt"
    path.write_text(table.render() + "\n", encoding="utf-8")
    print(f"\n{table.render()}")
