"""Benchmarks regenerating Tables 8, 11, 13 (H1, H2, good-AS coverage)."""

from __future__ import annotations

from repro.analysis.hypotheses import ASVerdict, verdict_fractions
from repro.experiments import table8, table11, table13

from .conftest import save_report

VANTAGES = ("Penn", "Comcast", "LU", "UPCB")


class TestTable8:
    def test_bench_table8_h1(self, benchmark, data, report_dir):
        table = benchmark(table8.run, data)
        save_report(report_dir, "table8", table)
        assert table8.h1_holds(data)
        for name in VANTAGES:
            fractions = verdict_fractions(data.context(name).sp_evaluations.values())
            assert fractions[ASVerdict.COMPARABLE] >= 0.5


class TestTable11:
    def test_bench_table11_h2(self, benchmark, data, report_dir):
        table = benchmark(table11.run, data)
        save_report(report_dir, "table11", table)
        assert table11.h2_holds(data, gap=0.3)
        for name in VANTAGES:
            fractions = verdict_fractions(data.context(name).dp_evaluations.values())
            assert fractions[ASVerdict.COMPARABLE] <= 0.45


class TestTable13:
    def test_bench_table13_good_as_coverage(self, benchmark, data, report_dir):
        table = benchmark(table13.run, data)
        save_report(report_dir, "table13", table)
        coverage = table13.coverage_by_vantage(data)
        for name, shares in coverage.items():
            # Paper's shape: most DP paths consist mostly of good ASes
            # (mass above 50% coverage).  Full coverage is more common
            # here than in the paper - see EXPERIMENTS.md.
            low = shares["[0%,25%)"] + shares["[25%,50%)"]
            assert low <= 0.3, f"{name}: {shares}"
