"""Benchmark for the Section 5.5 trait scan."""

from __future__ import annotations

from repro.experiments import section55

from .conftest import save_report


class TestSection55:
    def test_bench_trait_analysis(self, benchmark, data, report_dir):
        table = benchmark(section55.run, data)
        save_report(report_dir, "section55", table)
        assert len(table.rows) == 4
