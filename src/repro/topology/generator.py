"""AS-level topology generation.

Builds a Gao-Rexford-consistent hierarchy:

* a clique of tier-1 ASes (all mutually peering, no providers);
* transit ASes buying from tier-1s and earlier (larger) transits, with
  regional peering between transits;
* stub and content ASes multihomed to transits in their region, content
  ASes sometimes peering directly with transits (content players were
  early aggressive peerers);
* CDN ASes attached to many transits across regions, modelling anycast
  footprints.

The resulting graph is connected, valley-free-routable, and annotated
with per-AS data-plane quality factors drawn identically for IPv4 and
IPv6 — which is precisely the paper's hypothesis H1 (comparable data
planes); hypothesis H2 effects come from the *dual-stack overlay* in
:mod:`repro.topology.dualstack`, not from here.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..config import TopologyConfig
from ..errors import TopologyError
from .asys import ASType, AutonomousSystem
from .relationships import Link, Relationship


@dataclass
class Topology:
    """The IPv4 Internet graph: ASes plus typed links, with adjacency views."""

    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    links: list[Link] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._providers: dict[int, set[int]] = {}
        self._customers: dict[int, set[int]] = {}
        self._peers: dict[int, set[int]] = {}
        self._link_keys: set[tuple[int, int]] = set()
        for link in list(self.links):
            self._index_link(link)

    # -- construction -----------------------------------------------------

    def add_as(self, asys: AutonomousSystem) -> None:
        if asys.asn in self.ases:
            raise TopologyError(f"duplicate AS{asys.asn}")
        self.ases[asys.asn] = asys
        self._providers.setdefault(asys.asn, set())
        self._customers.setdefault(asys.asn, set())
        self._peers.setdefault(asys.asn, set())

    def add_link(self, link: Link) -> None:
        for end in link.endpoints:
            if end not in self.ases:
                raise TopologyError(f"link references unknown AS{end}")
        key = (min(link.a, link.b), max(link.a, link.b))
        if key in self._link_keys:
            raise TopologyError(f"duplicate link AS{link.a}-AS{link.b}")
        self.links.append(link)
        self._index_link(link)

    def _index_link(self, link: Link) -> None:
        key = (min(link.a, link.b), max(link.a, link.b))
        self._link_keys.add(key)
        if link.relationship is Relationship.CUSTOMER_PROVIDER:
            self._providers.setdefault(link.a, set()).add(link.b)
            self._customers.setdefault(link.b, set()).add(link.a)
            self._peers.setdefault(link.a, set())
            self._peers.setdefault(link.b, set())
        else:
            self._peers.setdefault(link.a, set()).add(link.b)
            self._peers.setdefault(link.b, set()).add(link.a)
            self._providers.setdefault(link.a, set())
            self._providers.setdefault(link.b, set())

    def has_link(self, x: int, y: int) -> bool:
        return (min(x, y), max(x, y)) in self._link_keys

    # -- adjacency views ---------------------------------------------------

    def providers_of(self, asn: int) -> frozenset[int]:
        """ASes that ``asn`` buys transit from."""
        return frozenset(self._providers.get(asn, ()))

    def customers_of(self, asn: int) -> frozenset[int]:
        """ASes that buy transit from ``asn``."""
        return frozenset(self._customers.get(asn, ()))

    def peers_of(self, asn: int) -> frozenset[int]:
        """Settlement-free peers of ``asn``."""
        return frozenset(self._peers.get(asn, ()))

    def neighbors_of(self, asn: int) -> frozenset[int]:
        return self.providers_of(asn) | self.customers_of(asn) | self.peers_of(asn)

    def ases_of_type(self, as_type: ASType) -> list[AutonomousSystem]:
        return [a for a in self.ases.values() if a.type is as_type]

    # -- whole-graph queries -----------------------------------------------

    def undirected_hop_distance(self, source: int) -> dict[int, int]:
        """BFS hop distances over the undirected graph (tunnel sizing)."""
        if source not in self.ases:
            raise TopologyError(f"unknown AS{source}")
        dist = {source: 0}
        frontier = [source]
        while frontier:
            nxt: list[int] = []
            for asn in frontier:
                for nb in self.neighbors_of(asn):
                    if nb not in dist:
                        dist[nb] = dist[asn] + 1
                        nxt.append(nb)
            frontier = nxt
        return dist

    def is_connected(self) -> bool:
        if not self.ases:
            return True
        first = next(iter(self.ases))
        return len(self.undirected_hop_distance(first)) == len(self.ases)

    def provider_depth(self, asn: int) -> int:
        """Length of the shortest provider chain from ``asn`` to a tier-1."""
        if self.ases[asn].type is ASType.TIER1:
            return 0
        depth = 0
        frontier = {asn}
        seen = set(frontier)
        while frontier:
            depth += 1
            nxt: set[int] = set()
            for a in frontier:
                for p in self.providers_of(a):
                    if p in seen:
                        continue
                    if self.ases[p].type is ASType.TIER1:
                        return depth
                    seen.add(p)
                    nxt.add(p)
            frontier = nxt
        raise TopologyError(f"AS{asn} has no provider chain to a tier-1")

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (relationship on edges)."""
        import networkx as nx

        graph = nx.Graph()
        for asn, asys in self.ases.items():
            graph.add_node(asn, type=asys.type.value, region=asys.region)
        for link in self.links:
            graph.add_edge(link.a, link.b, relationship=link.relationship.value)
        return graph


def _sample_count(rng: random.Random, mean: float, lo: int, hi: int) -> int:
    """A small integer around ``mean``, clamped to ``[lo, hi]``."""
    value = int(round(rng.gauss(mean, mean * 0.4)))
    return max(lo, min(hi, value))


def _quality(rng: random.Random, sigma: float) -> float:
    """A per-AS data-plane quality factor, lognormal around 1."""
    if sigma <= 0:
        return 1.0
    return math.exp(rng.gauss(0.0, sigma))


def generate_topology(config: TopologyConfig, rng: random.Random) -> Topology:
    """Generate the IPv4 Internet per ``config`` using ``rng``.

    Deterministic given ``(config, rng state)``.  The returned graph is
    guaranteed connected and every non-tier-1 AS has at least one provider
    (so valley-free routing can always reach the core).
    """
    config.validate()
    topo = Topology()
    next_asn = 1

    def new_as(as_type: ASType, region: int) -> AutonomousSystem:
        nonlocal next_asn
        # One base quality per AS; each family deviates only slightly
        # from it.  This encodes H1 into the world: an AS that forwards
        # IPv4 well forwards IPv6 (almost exactly) as well.
        base_quality = _quality(rng, config.link_quality_sigma)
        asys = AutonomousSystem(
            asn=next_asn,
            type=as_type,
            region=region,
            v4_quality=base_quality * _quality(rng, config.family_quality_sigma),
            v6_quality=base_quality * _quality(rng, config.family_quality_sigma),
        )
        next_asn += 1
        topo.add_as(asys)
        return asys

    # Tier-1 clique.
    tier1 = [new_as(ASType.TIER1, i % config.n_regions) for i in range(config.n_tier1)]
    for i, x in enumerate(tier1):
        for y in tier1[i + 1:]:
            topo.add_link(Link.peering(x.asn, y.asn))

    # Transit ASes: providers drawn mostly from tier-1s (shallow
    # hierarchy), sometimes from earlier (larger) transits.
    transits: list[AutonomousSystem] = []
    for i in range(config.n_transit):
        region = rng.randrange(config.n_regions)
        asys = new_as(ASType.TRANSIT, region)
        upstream_pool = tier1 + transits
        same_region = [u for u in upstream_pool if u.region == region]
        n_providers = _sample_count(rng, config.transit_provider_mean, 1, 4)
        chosen: set[int] = set()
        for _ in range(n_providers):
            if not transits or rng.random() < config.transit_tier1_attachment:
                pool = tier1
            elif same_region and rng.random() < 0.7:
                pool = same_region
            else:
                pool = upstream_pool
            pick = rng.choice(pool)
            if pick.asn not in chosen:
                chosen.add(pick.asn)
                topo.add_link(Link.customer_provider(asys.asn, pick.asn))
        transits.append(asys)

    # Transit-transit peering (denser within a region).
    for i, x in enumerate(transits):
        for y in transits[i + 1:]:
            if topo.has_link(x.asn, y.asn):
                continue
            prob = (
                config.transit_peering_prob
                if x.region == y.region
                else config.transit_interregion_peering_prob
            )
            if rng.random() < prob:
                topo.add_link(Link.peering(x.asn, y.asn))

    # Edge ASes (stubs and content).
    def attach_edge(as_type: ASType) -> AutonomousSystem:
        region = rng.randrange(config.n_regions)
        asys = new_as(as_type, region)
        regional = [t for t in transits if t.region == region] or transits
        n_providers = _sample_count(rng, config.edge_provider_mean, 1, 3)
        chosen: set[int] = set()
        for _ in range(n_providers):
            pick = rng.choice(regional)
            if pick.asn not in chosen:
                chosen.add(pick.asn)
                topo.add_link(Link.customer_provider(asys.asn, pick.asn))
        return asys

    for _ in range(config.n_stub):
        attach_edge(ASType.STUB)
    for _ in range(config.n_content):
        content = attach_edge(ASType.CONTENT)
        if rng.random() < config.content_peering_prob:
            candidates = [
                t for t in transits
                if t.region == content.region and not topo.has_link(content.asn, t.asn)
            ]
            if candidates:
                topo.add_link(Link.peering(content.asn, rng.choice(candidates).asn))

    # CDN ASes: wide, multi-region attachment.
    for _ in range(config.n_cdn):
        region = rng.randrange(config.n_regions)
        cdn = new_as(ASType.CDN, region)
        attach_pool = list(transits)
        rng.shuffle(attach_pool)
        attached = 0
        for transit in attach_pool:
            if attached >= config.cdn_attachments:
                break
            if topo.has_link(cdn.asn, transit.asn):
                continue
            # CDNs buy transit from a couple of ASes and peer with the rest.
            if attached < 2:
                topo.add_link(Link.customer_provider(cdn.asn, transit.asn))
            else:
                topo.add_link(Link.peering(cdn.asn, transit.asn))
            attached += 1
        if attached == 0:
            topo.add_link(Link.customer_provider(cdn.asn, rng.choice(tier1).asn))

    if not topo.is_connected():  # pragma: no cover - guaranteed by design
        raise TopologyError("generated topology is not connected")
    return topo
