"""Inter-AS business relationships.

The model follows Gao-Rexford: every link is either customer-to-provider
(the customer pays) or settlement-free peering.  Valley-free routing and
export rules in :mod:`repro.bgp.routing` are defined over these types.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import TopologyError


class Relationship(Enum):
    """Business relationship of a link, read in the ``(a, b)`` direction."""

    #: ``a`` is a customer of ``b`` (a pays b for transit).
    CUSTOMER_PROVIDER = "c2p"
    #: settlement-free peering between ``a`` and ``b``.
    PEER = "p2p"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Link:
    """An adjacency between two ASes.

    For :attr:`Relationship.CUSTOMER_PROVIDER` links, ``a`` is the customer
    and ``b`` the provider.  Peering links are symmetric; they are stored
    with ``a < b`` to keep them unique.
    """

    a: int
    b: int
    relationship: Relationship

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link at AS{self.a}")
        if self.relationship is Relationship.PEER and self.a > self.b:
            raise TopologyError("peering links must be stored with a < b")

    @property
    def endpoints(self) -> tuple[int, int]:
        return (self.a, self.b)

    def involves(self, asn: int) -> bool:
        return asn in (self.a, self.b)

    def peer_of(self, asn: int) -> int:
        """The other endpoint, given one endpoint."""
        if asn == self.a:
            return self.b
        if asn == self.b:
            return self.a
        raise TopologyError(f"AS{asn} is not on link {self.a}-{self.b}")

    @staticmethod
    def peering(x: int, y: int) -> "Link":
        """Construct a canonical peering link between ``x`` and ``y``."""
        lo, hi = (x, y) if x < y else (y, x)
        return Link(lo, hi, Relationship.PEER)

    @staticmethod
    def customer_provider(customer: int, provider: int) -> "Link":
        """Construct a c2p link (``customer`` pays ``provider``)."""
        return Link(customer, provider, Relationship.CUSTOMER_PROVIDER)
