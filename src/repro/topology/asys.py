"""Autonomous Systems.

An AS is the unit of the paper's path analysis: AS paths come from BGP,
sites live in destination ASes, and performance is attributed per AS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class ASType(Enum):
    """Coarse AS roles used by the topology generator."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"
    CONTENT = "content"
    CDN = "cdn"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_edge(self) -> bool:
        """Edge ASes originate content / eyeballs but sell no transit."""
        return self in (ASType.STUB, ASType.CONTENT, ASType.CDN)


@dataclass
class AutonomousSystem:
    """One AS in the synthetic Internet.

    ``v4_quality`` / ``v6_quality`` are multiplicative data-plane quality
    factors for traffic *crossing* this AS (1.0 = nominal).  A handful of
    ASes with poor IPv6 forwarding would show up here; by default the two
    are drawn from the same distribution, which is exactly hypothesis H1.
    """

    asn: int
    type: ASType
    region: int
    v4_quality: float = 1.0
    v6_quality: float = 1.0
    v6_enabled: bool = False
    #: filled by the dual-stack overlay when this AS reaches v6 via a tunnel.
    tunnel: object | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError(f"ASN must be positive, got {self.asn}")
        if self.v4_quality <= 0 or self.v6_quality <= 0:
            raise ValueError("link quality factors must be positive")

    def quality(self, family) -> float:
        """Quality factor for the given :class:`AddressFamily`."""
        from ..net.addresses import AddressFamily

        if family is AddressFamily.IPV4:
            return self.v4_quality
        return self.v6_quality

    def __hash__(self) -> int:
        return hash(self.asn)
