"""IPv6 deployment on top of the IPv4 topology.

This module is where hypothesis **H2**'s root cause is planted.  The IPv6
"Internet" of 2011 was not a separate network — it was a *subset overlay*
of the IPv4 one:

* only some ASes enabled IPv6 at all (rates differ by AS type);
* of the links between two v6-enabled ASes, customer-provider links were
  usually mirrored (providers sell v6 transit) but **peering links often
  were not** — that missing *peering parity* forces IPv6 traffic onto
  longer transit detours, which is exactly what the paper blames for
  poorer IPv6 performance;
* v6-enabled ASes left without any native v6 uplink either tunnel (6to4
  or broker) over IPv4, or give up on v6.

The overlay therefore exposes, per family, the adjacency views that the
route computation consumes, plus the tunnel inventory the data plane
charges for.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..config import DualStackConfig
from ..errors import TopologyError
from ..net.addresses import AddressFamily
from ..net.allocation import PrefixAllocator
from ..net.tunnels import Tunnel, TunnelKind
from .asys import ASType, AutonomousSystem
from .generator import Topology
from .relationships import Link, Relationship

#: Per-AS-type v6 enablement probability config attribute names.
_ENABLE_ATTR = {
    ASType.TIER1: "v6_enable_prob_tier1",
    ASType.TRANSIT: "v6_enable_prob_transit",
    ASType.STUB: "v6_enable_prob_stub",
    ASType.CONTENT: "v6_enable_prob_content",
    ASType.CDN: "v6_enable_prob_cdn",
}


@dataclass
class DualStackTopology:
    """The dual-stack Internet: IPv4 base plus the IPv6 overlay.

    ``v6_links`` contains only native IPv6 adjacencies; tunnels live in
    ``tunnels`` and are exposed to routing as virtual customer-provider
    adjacencies (client = customer of the relay).
    """

    base: Topology
    v6_enabled: frozenset[int]
    v6_links: list[Link]
    tunnels: dict[int, Tunnel]
    allocator: PrefixAllocator
    config: DualStackConfig

    def __post_init__(self) -> None:
        self._v6_providers: dict[int, set[int]] = {}
        self._v6_customers: dict[int, set[int]] = {}
        self._v6_peers: dict[int, set[int]] = {}
        for link in self.v6_links:
            if link.relationship is Relationship.CUSTOMER_PROVIDER:
                self._v6_providers.setdefault(link.a, set()).add(link.b)
                self._v6_customers.setdefault(link.b, set()).add(link.a)
            else:
                self._v6_peers.setdefault(link.a, set()).add(link.b)
                self._v6_peers.setdefault(link.b, set()).add(link.a)
        for tunnel in self.tunnels.values():
            self._v6_providers.setdefault(tunnel.client_asn, set()).add(
                tunnel.relay_asn
            )
            self._v6_customers.setdefault(tunnel.relay_asn, set()).add(
                tunnel.client_asn
            )

    # -- per-family adjacency ----------------------------------------------

    def providers_of(self, asn: int, family: AddressFamily) -> frozenset[int]:
        if family is AddressFamily.IPV4:
            return self.base.providers_of(asn)
        return frozenset(self._v6_providers.get(asn, ()))

    def customers_of(self, asn: int, family: AddressFamily) -> frozenset[int]:
        if family is AddressFamily.IPV4:
            return self.base.customers_of(asn)
        return frozenset(self._v6_customers.get(asn, ()))

    def peers_of(self, asn: int, family: AddressFamily) -> frozenset[int]:
        if family is AddressFamily.IPV4:
            return self.base.peers_of(asn)
        return frozenset(self._v6_peers.get(asn, ()))

    def reaches(self, asn: int, family: AddressFamily) -> bool:
        """True if ``asn`` participates in the ``family`` Internet at all."""
        if family is AddressFamily.IPV4:
            return asn in self.base.ases
        return asn in self.v6_enabled

    def tunnel_of(self, asn: int) -> Tunnel | None:
        """The tunnel ``asn`` uses for its v6 uplink, if any."""
        return self.tunnels.get(asn)

    def tunnel_on_edge(self, a: int, b: int) -> Tunnel | None:
        """The tunnel realising the v6 adjacency ``a``-``b``, if any."""
        for asn in (a, b):
            tunnel = self.tunnels.get(asn)
            if tunnel is not None and {tunnel.client_asn, tunnel.relay_asn} == {a, b}:
                return tunnel
        return None

    @property
    def asn_list(self) -> list[int]:
        return sorted(self.base.ases)

    def summary(self) -> dict[str, int]:
        """Headline overlay statistics (handy for reports and tests)."""
        return {
            "ases": len(self.base.ases),
            "v6_enabled": len(self.v6_enabled),
            "v4_links": len(self.base.links),
            "v6_links": len(self.v6_links),
            "tunnels": len(self.tunnels),
        }


def valley_free_distances(topo: Topology, dest: int) -> dict[int, int]:
    """Valley-free (Gao-Rexford) AS-path lengths from every AS to ``dest``.

    Used to size tunnels: the IPv4 forwarding underneath a tunnel follows
    BGP policy routing, so the hop count hidden inside a tunnel is the
    valley-free distance between relay and client, not the undirected
    graph distance (which ignores business relationships and badly
    underestimates real detours).
    """
    import heapq as _heapq

    # Sweep 1: customer routes - BFS up provider links from dest.
    dist_c: dict[int, int] = {dest: 0}
    frontier = [dest]
    while frontier:
        nxt: list[int] = []
        for asn in frontier:
            for provider in topo.providers_of(asn):
                if provider not in dist_c:
                    dist_c[provider] = dist_c[asn] + 1
                    nxt.append(provider)
        frontier = nxt
    # Preference classes: customer(0) < peer(1) < provider(2).
    best: dict[int, tuple[int, int]] = {
        asn: (0, d) for asn, d in dist_c.items() if asn != dest
    }
    # Sweep 2: one peering hop into the customer cone.
    for asn, d in dist_c.items():
        for peer in topo.peers_of(asn):
            if peer == dest:
                continue
            cand = (1, d + 1)
            if peer not in best or cand < best[peer]:
                best[peer] = cand
    # Sweep 3: provider routes propagate down customer links.
    heap = [(length, asn) for asn, (_, length) in best.items()]
    heap.append((0, dest))
    _heapq.heapify(heap)
    settled: set[int] = set()
    while heap:
        length, asn = _heapq.heappop(heap)
        if asn in settled:
            continue
        settled.add(asn)
        exported = 0 if asn == dest else best[asn][1]
        for customer in topo.customers_of(asn):
            if customer == dest:
                continue
            cand = (2, exported + 1)
            if customer not in best or cand < best[customer]:
                best[customer] = cand
                _heapq.heappush(heap, (cand[1], customer))
    out = {asn: length for asn, (_, length) in best.items()}
    out[dest] = 0
    return out


def _v6_core_reachable(
    enabled: set[int],
    links: list[Link],
    topo: Topology,
) -> set[int]:
    """ASes with a native v6 provider chain ending at a v6 tier-1."""
    providers: dict[int, set[int]] = {}
    for link in links:
        if link.relationship is Relationship.CUSTOMER_PROVIDER:
            providers.setdefault(link.a, set()).add(link.b)
    reachable = {
        asn for asn in enabled if topo.ases[asn].type is ASType.TIER1
    }
    changed = True
    while changed:
        changed = False
        for asn in enabled:
            if asn in reachable:
                continue
            if providers.get(asn, set()) & reachable:
                reachable.add(asn)
                changed = True
    return reachable


def select_nat64_gateways(
    topo: DualStackTopology, count: int, rng: random.Random
) -> tuple[int, ...]:
    """Pick the ASes that deploy NAT64 translators (RFC 6146).

    A gateway must sit on both Internets: natively v6-connected (it
    announces 64:ff9b::/96 into v6 BGP) and v4-connected (it originates
    the translated flows), so the pool is the v6-enabled, untunneled
    core — the same TIER1/TRANSIT stratum that hosts tunnel relays.
    Selection draws from the ``rng`` stream, so gateway placement is a
    pure function of the scenario seed.
    """
    pool = sorted(
        asn
        for asn in topo.v6_enabled
        if topo.base.ases[asn].type in (ASType.TIER1, ASType.TRANSIT)
        and topo.tunnel_of(asn) is None
    )
    if not pool:
        raise TopologyError(
            "no v6-enabled core AS can host a NAT64 gateway - raise the "
            "tier-1/transit v6 enablement probabilities"
        )
    picks = rng.sample(pool, min(count, len(pool)))
    return tuple(sorted(picks))


def deploy_ipv6(
    topo: Topology,
    config: DualStackConfig,
    rng: random.Random,
    allocator: PrefixAllocator | None = None,
) -> DualStackTopology:
    """Deploy IPv6 on ``topo`` per ``config``.

    Returns a :class:`DualStackTopology` whose every v6-enabled AS either
    has a native provider chain to a v6 tier-1 or a tunnel; ASes that end
    up with neither are disabled (they stay v4-only).
    """
    config.validate()
    if allocator is None:
        allocator = PrefixAllocator()

    # Every AS gets an IPv4 block.
    for asn in sorted(topo.ases):
        allocator.allocate(asn, AddressFamily.IPV4)

    # Phase 1: per-type enablement coin flips.
    enabled: set[int] = set()
    for asn in sorted(topo.ases):
        asys = topo.ases[asn]
        if rng.random() < getattr(config, _ENABLE_ATTR[asys.type]):
            enabled.add(asn)
    if not any(topo.ases[a].type is ASType.TIER1 for a in enabled):
        # The v6 core must exist: force-enable one tier-1.
        tier1s = sorted(a.asn for a in topo.ases_of_type(ASType.TIER1))
        if not tier1s:
            raise TopologyError("topology has no tier-1 AS")
        enabled.add(tier1s[0])

    # Phase 2: mirror links with family-specific parity.
    v6_links: list[Link] = []
    for link in topo.links:
        if link.a not in enabled or link.b not in enabled:
            continue
        both_tier1 = (
            topo.ases[link.a].type is ASType.TIER1
            and topo.ases[link.b].type is ASType.TIER1
        )
        if link.relationship is Relationship.CUSTOMER_PROVIDER:
            keep = rng.random() < config.c2p_parity
        elif both_tier1:
            keep = True  # the v6 core peers fully, else v6 partitions
        else:
            keep = rng.random() < config.peering_parity
        if keep:
            v6_links.append(link)

    # Phase 2b: an AS that enabled IPv6 and has a v6-capable provider buys
    # v6 transit from (at least) one of them - enabling v6 without any
    # uplink would be pointless.  This keeps provider chains intact and
    # leaves tunnels for genuinely stranded ASes, as in the 2011 Internet.
    mirrored_up: set[int] = {
        link.a for link in v6_links
        if link.relationship is Relationship.CUSTOMER_PROVIDER
    }
    mirrored_pairs = {(link.a, link.b) for link in v6_links}
    for asn in sorted(enabled):
        if asn in mirrored_up or topo.ases[asn].type is ASType.TIER1:
            continue
        enabled_providers = sorted(
            p for p in topo.providers_of(asn) if p in enabled
        )
        if not enabled_providers:
            continue
        provider = rng.choice(enabled_providers)
        if (asn, provider) not in mirrored_pairs:
            v6_links.append(Link.customer_provider(asn, provider))
            mirrored_pairs.add((asn, provider))
        mirrored_up.add(asn)

    # Phase 3: connectivity repair via tunnels (or disablement).
    reachable = _v6_core_reachable(enabled, v6_links, topo)
    tunnels: dict[int, Tunnel] = {}
    relay_pool = sorted(
        asn for asn in reachable
        if topo.ases[asn].type in (ASType.TIER1, ASType.TRANSIT)
    )
    distance_cache: dict[int, dict[int, int]] = {}
    for asn in sorted(enabled - reachable):
        if relay_pool and rng.random() < config.tunnel_prob:
            relay = rng.choice(relay_pool)
            # The encapsulated traffic crosses the IPv4 (policy-routed)
            # path between relay and client.
            distances = distance_cache.get(asn)
            if distances is None:
                distances = valley_free_distances(topo, asn)
                distance_cache[asn] = distances
            hops = distances.get(relay, 3)
            kind = (
                TunnelKind.SIX_TO_FOUR
                if rng.random() < config.six_to_four_fraction
                else TunnelKind.BROKER
            )
            tunnels[asn] = Tunnel(
                client_asn=asn,
                relay_asn=relay,
                kind=kind,
                hidden_hops=max(1, hops),
            )
        else:
            enabled.discard(asn)

    # Drop v6 links that now dangle on a disabled endpoint.
    v6_links = [
        link for link in v6_links if link.a in enabled and link.b in enabled
    ]

    # Phase 4: v6 address allocation (6to4 clients derive, others native).
    for asn in sorted(enabled):
        tunnel = tunnels.get(asn)
        if tunnel is not None and tunnel.kind is TunnelKind.SIX_TO_FOUR:
            allocator.register_6to4(asn)
        else:
            allocator.allocate(asn, AddressFamily.IPV6)

    return DualStackTopology(
        base=topo,
        v6_enabled=frozenset(enabled),
        v6_links=v6_links,
        tunnels=tunnels,
        allocator=allocator,
        config=config,
    )
