"""The synthetic AS-level Internet: ASes, links, and IPv6 deployment."""

from .asys import ASType, AutonomousSystem
from .relationships import Link, Relationship
from .generator import Topology, generate_topology
from .dualstack import DualStackTopology, deploy_ipv6

__all__ = [
    "ASType",
    "AutonomousSystem",
    "Link",
    "Relationship",
    "Topology",
    "generate_topology",
    "DualStackTopology",
    "deploy_ipv6",
]
