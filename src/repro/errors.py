"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem and
carry enough context in their message to diagnose a failure without a
debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """A scenario or subsystem configuration is inconsistent or out of range."""


class AddressError(ReproError):
    """An IP address or prefix could not be parsed or is malformed."""


class AllocationError(ReproError):
    """The address allocator ran out of space or received a bad request."""


class TopologyError(ReproError):
    """The AS-level topology is malformed (unknown AS, duplicate link, ...)."""


class RoutingError(ReproError):
    """Route computation failed (unknown destination, no valley-free path)."""


class DnsError(ReproError):
    """Base class for DNS resolution failures."""


class NxDomain(DnsError):
    """The queried name does not exist in any authoritative zone."""


class NoRecord(DnsError):
    """The name exists but has no record of the requested type."""


class DnsTimeout(DnsError):
    """A lookup attempt timed out (injected by the fault plan).

    ``seconds`` is the simulated wall-clock the timed-out attempt burned.
    """

    def __init__(self, message: str, seconds: float = 0.0) -> None:
        super().__init__(message)
        self.seconds = seconds


class DownloadError(ReproError):
    """A simulated page download could not be performed."""


class UnreachableError(DownloadError):
    """No forwarding path exists from the vantage point to the server."""


class MonitorError(ReproError):
    """The monitoring tool was driven incorrectly (bad round order, ...)."""


class AnalysisError(ReproError):
    """An analysis step received data it cannot process."""


class EngineError(ReproError):
    """The execution engine was misused or a shard could not be executed."""


class DataError(ReproError):
    """A columnar payload or query is malformed or references unknown data."""
