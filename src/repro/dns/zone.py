"""Authoritative DNS zones.

A :class:`ZoneStore` is the world's authoritative namespace: every site's
A/AAAA (and CNAME, for CDN customers) records live here.  The resolver
queries the store; there is no delegation tree because the paper's tool
only ever issues direct A/AAAA lookups for site names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DnsError, NxDomain
from .records import RecordType, ResourceRecord, RRSet


@dataclass
class Zone:
    """One authoritative zone: a bag of records grouped by (name, type)."""

    origin: str
    _records: dict[tuple[str, RecordType], list[ResourceRecord]] = field(
        default_factory=dict
    )
    #: names with at least one record (O(1) NXDOMAIN checks).
    _names: set[str] = field(default_factory=set)

    def add(self, record: ResourceRecord) -> None:
        key = (record.name, record.rtype)
        existing = self._records.setdefault(key, [])
        if record.rtype is RecordType.CNAME and existing:
            raise DnsError(f"{record.name} already has a CNAME")
        if record in existing:
            raise DnsError(f"duplicate record {record}")
        other_types = [
            rt for (name, rt) in self._records
            if name == record.name and self._records[(name, rt)]
        ]
        if record.rtype is RecordType.CNAME and any(
            rt is not RecordType.CNAME for rt in other_types
        ):
            raise DnsError(f"{record.name}: CNAME cannot coexist with other records")
        if record.rtype is not RecordType.CNAME and any(
            rt is RecordType.CNAME for rt in other_types
        ):
            raise DnsError(f"{record.name}: other records cannot coexist with CNAME")
        existing.append(record)
        self._names.add(record.name)

    def remove(self, name: str, rtype: RecordType) -> int:
        """Delete all records of (name, type); returns how many were removed."""
        removed = self._records.pop((name, rtype), [])
        if removed and not any(key[0] == name for key in self._records):
            self._names.discard(name)
        return len(removed)

    def lookup(self, name: str, rtype: RecordType) -> RRSet:
        """The RRSet for (name, type); empty set if the name exists but the
        type does not; raises :class:`NxDomain` if the name is unknown."""
        records = self._records.get((name, rtype))
        if records:
            return RRSet(name=name, rtype=rtype, records=tuple(records))
        if name in self._names:
            return RRSet(name=name, rtype=rtype, records=())
        raise NxDomain(f"{name} does not exist in zone {self.origin}")

    def names(self) -> set[str]:
        return set(self._names)

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())


@dataclass
class ZoneStore:
    """The union of all authoritative zones, queried by exact name."""

    zones: dict[str, Zone] = field(default_factory=dict)

    def zone_for(self, origin: str) -> Zone:
        """Get or create the zone with the given origin."""
        zone = self.zones.get(origin)
        if zone is None:
            zone = Zone(origin=origin)
            self.zones[origin] = zone
        return zone

    def authoritative_lookup(self, name: str, rtype: RecordType) -> RRSet:
        """Find (name, type) in whichever zone holds the name."""
        missing_type = None
        for zone in self.zones.values():
            try:
                rrset = zone.lookup(name, rtype)
            except NxDomain:
                continue
            if rrset:
                return rrset
            missing_type = rrset
        if missing_type is not None:
            return missing_type
        raise NxDomain(f"{name} does not exist in any zone")

    def __len__(self) -> int:
        return sum(len(zone) for zone in self.zones.values())
