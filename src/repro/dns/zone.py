"""Authoritative DNS zones.

A :class:`ZoneStore` is the world's authoritative namespace: every site's
A/AAAA (and CNAME, for CDN customers) records live here.  The resolver
queries the store; there is no delegation tree because the paper's tool
only ever issues direct A/AAAA lookups for site names.

Lookups go through a :class:`ZoneView`: a per-name index over the store
that collects *all* of a name's record sets in one pass ("one zone walk")
and memoises the result.  Invalidation is per-name and push-based: a zone
mutation evicts only that name's entry, so a round that publishes AAAA
records for a handful of adopting sites re-walks those names alone — the
rest of the namespace stays warm across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DnsError, NxDomain
from ..obs import metrics
from .records import RecordType, ResourceRecord, RRSet

#: per-name authoritative walks (the deterministic DNS work counter the
#: perf-regression gate tracks; module-cached, ``obs`` resets in place).
_ZONE_WALKS = metrics.counter("dns.zone_walks")


@dataclass
class Zone:
    """One authoritative zone: a bag of records grouped by (name, type)."""

    origin: str
    _records: dict[tuple[str, RecordType], list[ResourceRecord]] = field(
        default_factory=dict
    )
    #: record types present per name (O(1) NXDOMAIN and CNAME-exclusivity
    #: checks; replaces a full-zone scan per add).
    _types_by_name: dict[str, set[RecordType]] = field(default_factory=dict)
    #: bumped on every successful mutation.
    version: int = 0
    #: owning store, set by :meth:`ZoneStore.zone_for`; mutations push a
    #: per-name eviction to the store's view instead of the view polling
    #: a store-wide version on every lookup.
    _store: "ZoneStore | None" = field(default=None, repr=False, compare=False)

    def add(self, record: ResourceRecord) -> None:
        key = (record.name, record.rtype)
        existing = self._records.get(key)
        if record.rtype is RecordType.CNAME and existing:
            raise DnsError(f"{record.name} already has a CNAME")
        if existing and record in existing:
            raise DnsError(f"duplicate record {record}")
        other_types = self._types_by_name.get(record.name, ())
        if record.rtype is RecordType.CNAME and any(
            rt is not RecordType.CNAME for rt in other_types
        ):
            raise DnsError(f"{record.name}: CNAME cannot coexist with other records")
        if record.rtype is not RecordType.CNAME and (
            RecordType.CNAME in other_types
        ):
            raise DnsError(f"{record.name}: other records cannot coexist with CNAME")
        self._records.setdefault(key, []).append(record)
        self._types_by_name.setdefault(record.name, set()).add(record.rtype)
        self.version += 1
        if self._store is not None:
            self._store._invalidate(record.name)

    def remove(self, name: str, rtype: RecordType) -> int:
        """Delete all records of (name, type); returns how many were removed."""
        removed = self._records.pop((name, rtype), [])
        if removed:
            types = self._types_by_name.get(name)
            if types is not None:
                types.discard(rtype)
                if not types:
                    del self._types_by_name[name]
            self.version += 1
            if self._store is not None:
                self._store._invalidate(name)
        return len(removed)

    def lookup(self, name: str, rtype: RecordType) -> RRSet:
        """The RRSet for (name, type); empty set if the name exists but the
        type does not; raises :class:`NxDomain` if the name is unknown."""
        records = self._records.get((name, rtype))
        if records:
            return RRSet(name=name, rtype=rtype, records=tuple(records))
        if name in self._types_by_name:
            return RRSet(name=name, rtype=rtype, records=())
        raise NxDomain(f"{name} does not exist in zone {self.origin}")

    def knows(self, name: str) -> bool:
        """Whether the zone holds any record for ``name``."""
        return name in self._types_by_name

    def rrsets_of(self, name: str) -> dict[RecordType, RRSet]:
        """All non-empty record sets of ``name`` (empty dict if unknown)."""
        out: dict[RecordType, RRSet] = {}
        for rtype in self._types_by_name.get(name, ()):
            records = self._records.get((name, rtype))
            if records:
                out[rtype] = RRSet(name=name, rtype=rtype, records=tuple(records))
        return out

    def names(self) -> set[str]:
        return set(self._types_by_name)

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())


@dataclass(frozen=True)
class NameEntry:
    """Everything the store knows about one name, gathered in one walk."""

    name: str
    exists: bool
    #: non-empty record sets by type (A / AAAA / CNAME).
    rrsets: dict[RecordType, RRSet]

    def rrset(self, rtype: RecordType) -> RRSet | None:
        return self.rrsets.get(rtype)


class ZoneView:
    """A memoised per-name index over a :class:`ZoneStore`.

    One :meth:`entry` computation walks every zone for the name once and
    captures *all* its record sets — so a resolver can answer the A, AAAA,
    and CNAME questions of one site from a single authoritative walk.
    Entries persist until the specific name mutates: zones push per-name
    evictions through :meth:`ZoneStore._invalidate`, so publishing AAAA
    records for adopting sites leaves every other cached name warm.
    """

    def __init__(self, store: "ZoneStore") -> None:
        self._store = store
        self._entries: dict[str, NameEntry] = {}

    def cached(self, name: str) -> NameEntry | None:
        """The memoised entry for ``name``, or None — never walks.

        Entry objects are immutable and replaced (never mutated) when a
        name is re-walked after invalidation, so *object identity* of a
        cached entry proves the underlying zone data is unchanged.
        Derived caches (the batch plane's per-name DNS answers) pin the
        entry objects they were computed from and revalidate with one
        ``is`` check per chain element.
        """
        return self._entries.get(name)

    def entry(self, name: str) -> NameEntry:
        cached = self._entries.get(name)
        if cached is not None:
            return cached
        _ZONE_WALKS.inc()
        exists = False
        rrsets: dict[RecordType, RRSet] = {}
        for zone in self._store.zones.values():
            if not zone.knows(name):
                continue
            exists = True
            for rtype, rrset in zone.rrsets_of(name).items():
                # First zone holding a non-empty set wins (store order),
                # matching the legacy multi-zone walk.
                rrsets.setdefault(rtype, rrset)
        entry = NameEntry(name=name, exists=exists, rrsets=rrsets)
        self._entries[name] = entry
        return entry


@dataclass
class ZoneStore:
    """The union of all authoritative zones, queried by exact name."""

    zones: dict[str, Zone] = field(default_factory=dict)
    _view: ZoneView | None = field(default=None, repr=False, compare=False)

    def zone_for(self, origin: str) -> Zone:
        """Get or create the zone with the given origin."""
        zone = self.zones.get(origin)
        if zone is None:
            zone = Zone(origin=origin, _store=self)
            self.zones[origin] = zone
        return zone

    @property
    def version(self) -> int:
        """Monotone store version (moves on any zone mutation or creation)."""
        return len(self.zones) + sum(z.version for z in self.zones.values())

    def _invalidate(self, name: str) -> None:
        """Evict one name from the live view (called by mutating zones)."""
        view = self._view
        if view is not None:
            view._entries.pop(name, None)

    def view(self) -> ZoneView:
        """The store's per-name view (created once, evicted name-by-name).

        Zones placed in :attr:`zones` without :meth:`zone_for` are adopted
        here so their later mutations push evictions too.
        """
        view = self._view
        if view is None:
            for zone in self.zones.values():
                zone._store = self
            view = self._view = ZoneView(self)
        return view

    def authoritative_lookup(self, name: str, rtype: RecordType) -> RRSet:
        """Find (name, type) in whichever zone holds the name."""
        entry = self.view().entry(name)
        if not entry.exists:
            raise NxDomain(f"{name} does not exist in any zone")
        rrset = entry.rrset(rtype)
        if rrset is not None:
            return rrset
        return RRSet(name=name, rtype=rtype, records=())

    def __len__(self) -> int:
        return sum(len(zone) for zone in self.zones.values())
