"""A caching recursive resolver.

Each vantage point runs one resolver instance.  It follows CNAME chains
(bounded depth), caches positive and negative answers by TTL against the
simulation clock, and reports whether an answer came from cache — which
the tests use to verify cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import DnsError, DnsTimeout, NoRecord, NxDomain
from ..net.addresses import Address, AddressFamily
from ..net.nat64 import synthesize_aaaa
from ..obs import metrics
from .records import RecordType, RRSet
from .zone import ZoneStore

#: Maximum CNAME chain length before we declare a loop.
MAX_CNAME_DEPTH = 8
#: TTL used to cache negative answers (NXDOMAIN / no such type).
NEGATIVE_TTL = 900.0

#: process-wide cache counters (per-resolver ``hits``/``misses`` remain).
_CACHE_HITS = metrics.counter("dns.cache_hits")
_CACHE_MISSES = metrics.counter("dns.cache_misses")
#: DNS64 synthesis counters (RFC 6147): AAAA answers fabricated from A
#: records, and AAAA queries that stayed negative because the name had
#: no A record to map either.
_DNS64_SYNTHESIZED = metrics.counter("dns.dns64.synthesized")
_DNS64_NO_MAPPING = metrics.counter("dns.dns64.no_mapping")


@dataclass(frozen=True, slots=True)
class ResolutionResult:
    """The outcome of one query: final name, addresses, cache provenance."""

    query_name: str
    final_name: str
    rtype: RecordType
    addresses: tuple[Address, ...]
    from_cache: bool

    def __bool__(self) -> bool:
        return bool(self.addresses)


#: record types the prefetch populates together from one zone walk.
_PREFETCH_TYPES = (RecordType.A, RecordType.AAAA, RecordType.CNAME)

#: family → address record type, as a dict (one identity-hash lookup on
#: the per-query path instead of a classmethod call).
_RTYPE_FOR = {
    AddressFamily.IPV4: RecordType.A,
    AddressFamily.IPV6: RecordType.AAAA,
}


@dataclass(slots=True)
class _CacheEntry:
    rrset: RRSet | None  # None encodes a negative answer
    expires_at: float
    #: True when the *name* is unknown (NXDOMAIN), as opposed to the name
    #: existing without this record type (NoRecord).  Without the flag a
    #: cached-NXDOMAIN name would misreport as NoRecord on later queries.
    nxdomain: bool = False


@dataclass
class Resolver:
    """Caching resolver over a :class:`ZoneStore`."""

    store: ZoneStore
    _cache: dict[tuple[str, RecordType], _CacheEntry] = field(default_factory=dict)
    #: statistics: (hits, misses) for observability and tests.
    hits: int = 0
    misses: int = 0
    #: optional fault hook ``(name, family, now, attempt) -> seconds or
    #: None``; a non-None return makes the lookup attempt raise
    #: :class:`DnsTimeout` (carrying that cost) before touching the cache —
    #: a timeout is transient, not an answer.
    fault_check: Callable[[str, AddressFamily, float, int], float | None] | None = (
        None
    )
    #: DNS64 mode (RFC 6147): when a AAAA query finds a name with no AAAA
    #: record, synthesize one from the name's A record by embedding the
    #: IPv4 address in the NAT64 well-known prefix.  NXDOMAIN is never
    #: synthesized (no A record to map), matching the RFC.
    dns64: bool = False

    def _prefetch(self, name: str, now: float) -> None:
        """One authoritative walk caches the whole name: A, AAAA and CNAME.

        The monitor always asks both families of every site, so fetching
        the name once and answering the second family (and any CNAME hop)
        from cache halves the authoritative traffic.
        """
        entry = self.store.view().entry(name)
        cache = self._cache
        if not entry.exists:
            expires = now + NEGATIVE_TTL
            for rtype in _PREFETCH_TYPES:
                cache[(name, rtype)] = _CacheEntry(
                    rrset=None, expires_at=expires, nxdomain=True
                )
            return
        rrsets = entry.rrsets
        for rtype in _PREFETCH_TYPES:
            rrset = rrsets.get(rtype)
            # view entries only hold non-empty sets, so None is the only
            # negative shape here.
            ttl = NEGATIVE_TTL if rrset is None else rrset.ttl
            cache[(name, rtype)] = _CacheEntry(rrset=rrset, expires_at=now + ttl)

    def _lookup_one(
        self, name: str, rtype: RecordType, now: float
    ) -> tuple[RRSet | None, bool, bool]:
        """One non-recursive lookup step, via cache then authority.

        Returns ``(rrset, was_cached, nxdomain)``; raising is left to the
        caller so the monitor's negative-heavy hot path (every v4-only
        site answers "no AAAA" every round) can stay exception-free.
        """
        entry = self._cache.get((name, rtype))
        if entry is not None and entry.expires_at > now:
            self.hits += 1
            _CACHE_HITS.inc()
            return entry.rrset, True, entry.nxdomain
        self.misses += 1
        _CACHE_MISSES.inc()
        self._prefetch(name, now)
        entry = self._cache[(name, rtype)]
        return entry.rrset, False, entry.nxdomain

    def resolve(
        self,
        name: str,
        family: AddressFamily,
        now: float = 0.0,
        attempt: int = 0,
    ) -> ResolutionResult:
        """Resolve ``name`` to addresses of ``family`` at time ``now``.

        Raises :class:`NxDomain` for unknown names and :class:`NoRecord`
        when the name exists but has no address of the family (a site with
        an A record but no AAAA raises NoRecord for IPv6 — that is exactly
        the "not IPv6 accessible" signal of the paper's first phase).
        With a ``fault_check`` installed, an attempt may instead raise
        :class:`DnsTimeout`; ``attempt`` distinguishes retries so they are
        fresh draws from the fault plan.
        """
        result = self.resolve_quiet(name, family, now, attempt)
        if result is None:
            rtype = _RTYPE_FOR[family]
            current = name.lower()
            for _ in range(MAX_CNAME_DEPTH):
                entry = self._cache.get((current, rtype))
                if entry is None or entry.nxdomain:
                    raise NxDomain(current + " does not exist in any zone")
                if entry.rrset is not None:  # pragma: no cover - defensive
                    break
                cname = self._cache.get((current, RecordType.CNAME))
                if cname is None or cname.nxdomain:
                    raise NxDomain(current + " does not exist in any zone")
                if cname.rrset is None:
                    raise NoRecord(current + " has no " + rtype.value + " record")
                current = str(cname.rrset.records[0].value)
            raise NoRecord(current + " has no " + rtype.value + " record")
        return result

    def resolve_quiet(
        self,
        name: str,
        family: AddressFamily,
        now: float = 0.0,
        attempt: int = 0,
    ) -> ResolutionResult | None:
        """:meth:`resolve`, with negative answers returned as ``None``.

        The monitor's per-site hot path calls this: most site-rounds
        answer "no AAAA", and raising :class:`NoRecord` ~150k times per
        campaign just to catch it one frame up is measurable overhead.
        An injected :class:`DnsTimeout` still propagates (it is a
        transient fault, not an answer).
        """
        rtype = _RTYPE_FOR[family]
        if self.fault_check is not None:
            timeout = self.fault_check(name, family, now, attempt)
            if timeout is not None:
                raise DnsTimeout(
                    f"lookup of {name} {rtype.value} timed out", seconds=timeout
                )
        current = name.lower()
        from_cache = True
        cache = self._cache
        cname_type = RecordType.CNAME
        for _ in range(MAX_CNAME_DEPTH):
            # _lookup_one, inlined twice: this loop runs ~450k times per
            # full-scale campaign and the call overhead alone is visible
            # in the round profile.
            entry = cache.get((current, rtype))
            if entry is not None and entry.expires_at > now:
                self.hits += 1
                _CACHE_HITS.inc()
            else:
                self.misses += 1
                _CACHE_MISSES.inc()
                self._prefetch(current, now)
                entry = cache[(current, rtype)]
                from_cache = False
            if entry.nxdomain:
                return None
            rrset = entry.rrset
            if rrset is not None:
                return ResolutionResult(
                    query_name=name,
                    final_name=current,
                    rtype=rtype,
                    addresses=rrset.address_tuple,
                    from_cache=from_cache,
                )
            # No address record: try a CNAME hop.
            entry = cache.get((current, cname_type))
            if entry is not None and entry.expires_at > now:
                self.hits += 1
                _CACHE_HITS.inc()
            else:
                self.misses += 1
                _CACHE_MISSES.inc()
                self._prefetch(current, now)
                entry = cache[(current, cname_type)]
                from_cache = False
            if entry.nxdomain:
                return None
            cname_set = entry.rrset
            if cname_set is None:
                # The name exists but has neither an address of this
                # family nor a CNAME — the DNS64 synthesis point: a AAAA
                # query against a v4-only name.
                if self.dns64 and family is AddressFamily.IPV6:
                    return self._dns64_synthesize(name, current, now, from_cache)
                return None
            current = str(cname_set.records[0].value)
        raise DnsError(f"CNAME chain too deep resolving {name}")

    def _dns64_synthesize(
        self, query_name: str, final_name: str, now: float, from_cache: bool
    ) -> ResolutionResult | None:
        """Fabricate a AAAA answer from ``final_name``'s A record.

        Called only when ``final_name`` exists without a AAAA record
        (RFC 6147 §5.1.6: synthesis never overrides a real AAAA, and
        NXDOMAIN stays NXDOMAIN).  Returns ``None`` when there is no A
        record to map either.
        """
        rrset, was_cached, nxdomain = self._lookup_one(
            final_name, RecordType.A, now
        )
        if nxdomain or rrset is None:
            _DNS64_NO_MAPPING.inc()
            return None
        _DNS64_SYNTHESIZED.inc()
        return ResolutionResult(
            query_name=query_name,
            final_name=final_name,
            rtype=RecordType.AAAA,
            addresses=tuple(synthesize_aaaa(a) for a in rrset.address_tuple),
            from_cache=from_cache and was_cached,
        )

    def query_both(
        self, name: str, now: float = 0.0, attempt: int = 0
    ) -> dict[AddressFamily, ResolutionResult | None]:
        """The monitor's first phase: A and AAAA queries for one site.

        Negative answers (NXDOMAIN, no record of the type) map to ``None``;
        an injected :class:`DnsTimeout` propagates so the caller can retry.
        """
        return {
            family: self.resolve_quiet(name, family, now, attempt)
            for family in (AddressFamily.IPV4, AddressFamily.IPV6)
        }

    def flush(self) -> None:
        """Drop the whole cache (used between monitoring rounds)."""
        self._cache.clear()
