"""A caching recursive resolver.

Each vantage point runs one resolver instance.  It follows CNAME chains
(bounded depth), caches positive and negative answers by TTL against the
simulation clock, and reports whether an answer came from cache — which
the tests use to verify cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import DnsError, DnsTimeout, NoRecord, NxDomain
from ..net.addresses import Address, AddressFamily
from ..obs import metrics
from .records import RecordType, RRSet
from .zone import ZoneStore

#: Maximum CNAME chain length before we declare a loop.
MAX_CNAME_DEPTH = 8
#: TTL used to cache negative answers (NXDOMAIN / no such type).
NEGATIVE_TTL = 900.0

#: process-wide cache counters (per-resolver ``hits``/``misses`` remain).
_CACHE_HITS = metrics.counter("dns.cache_hits")
_CACHE_MISSES = metrics.counter("dns.cache_misses")


@dataclass(frozen=True)
class ResolutionResult:
    """The outcome of one query: final name, addresses, cache provenance."""

    query_name: str
    final_name: str
    rtype: RecordType
    addresses: tuple[Address, ...]
    from_cache: bool

    def __bool__(self) -> bool:
        return bool(self.addresses)


@dataclass
class _CacheEntry:
    rrset: RRSet | None  # None encodes a negative answer
    expires_at: float


@dataclass
class Resolver:
    """Caching resolver over a :class:`ZoneStore`."""

    store: ZoneStore
    _cache: dict[tuple[str, RecordType], _CacheEntry] = field(default_factory=dict)
    #: statistics: (hits, misses) for observability and tests.
    hits: int = 0
    misses: int = 0
    #: optional fault hook ``(name, family, now, attempt) -> seconds or
    #: None``; a non-None return makes the lookup attempt raise
    #: :class:`DnsTimeout` (carrying that cost) before touching the cache —
    #: a timeout is transient, not an answer.
    fault_check: Callable[[str, AddressFamily, float, int], float | None] | None = (
        None
    )

    def _cached(
        self, name: str, rtype: RecordType, now: float
    ) -> tuple[bool, RRSet | None]:
        entry = self._cache.get((name, rtype))
        if entry is None or entry.expires_at <= now:
            return False, None
        return True, entry.rrset

    def _store_cache(
        self, name: str, rtype: RecordType, rrset: RRSet | None, now: float
    ) -> None:
        ttl = rrset.ttl if rrset else NEGATIVE_TTL
        self._cache[(name, rtype)] = _CacheEntry(
            rrset=rrset, expires_at=now + ttl
        )

    def _lookup_one(
        self, name: str, rtype: RecordType, now: float
    ) -> tuple[RRSet | None, bool]:
        """One non-recursive lookup step, via cache then authority."""
        hit, rrset = self._cached(name, rtype, now)
        if hit:
            self.hits += 1
            _CACHE_HITS.inc()
            return rrset, True
        self.misses += 1
        _CACHE_MISSES.inc()
        try:
            rrset = self.store.authoritative_lookup(name, rtype)
        except NxDomain:
            self._store_cache(name, rtype, None, now)
            raise
        result = rrset if rrset else None
        self._store_cache(name, rtype, result, now)
        return result, False

    def resolve(
        self,
        name: str,
        family: AddressFamily,
        now: float = 0.0,
        attempt: int = 0,
    ) -> ResolutionResult:
        """Resolve ``name`` to addresses of ``family`` at time ``now``.

        Raises :class:`NxDomain` for unknown names and :class:`NoRecord`
        when the name exists but has no address of the family (a site with
        an A record but no AAAA raises NoRecord for IPv6 — that is exactly
        the "not IPv6 accessible" signal of the paper's first phase).
        With a ``fault_check`` installed, an attempt may instead raise
        :class:`DnsTimeout`; ``attempt`` distinguishes retries so they are
        fresh draws from the fault plan.
        """
        rtype = RecordType.for_family(family)
        if self.fault_check is not None:
            timeout = self.fault_check(name, family, now, attempt)
            if timeout is not None:
                raise DnsTimeout(
                    f"lookup of {name} {rtype.value} timed out", seconds=timeout
                )
        current = name.lower()
        from_cache = True
        for _ in range(MAX_CNAME_DEPTH):
            rrset, was_cached = self._lookup_one(current, rtype, now)
            from_cache = from_cache and was_cached
            if rrset is not None:
                return ResolutionResult(
                    query_name=name,
                    final_name=current,
                    rtype=rtype,
                    addresses=tuple(rrset.addresses()),
                    from_cache=from_cache,
                )
            # No address record: try a CNAME hop.
            cname_set, was_cached = self._lookup_one(current, RecordType.CNAME, now)
            from_cache = from_cache and was_cached
            if cname_set is None:
                raise NoRecord(f"{current} has no {rtype} record")
            current = str(cname_set.records[0].value)
        raise DnsError(f"CNAME chain too deep resolving {name}")

    def query_both(
        self, name: str, now: float = 0.0, attempt: int = 0
    ) -> dict[AddressFamily, ResolutionResult | None]:
        """The monitor's first phase: A and AAAA queries for one site.

        Negative answers (NXDOMAIN, no record of the type) map to ``None``;
        an injected :class:`DnsTimeout` propagates so the caller can retry.
        """
        results: dict[AddressFamily, ResolutionResult | None] = {}
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            try:
                results[family] = self.resolve(name, family, now, attempt)
            except (NxDomain, NoRecord):
                results[family] = None
        return results

    def flush(self) -> None:
        """Drop the whole cache (used between monitoring rounds)."""
        self._cache.clear()
