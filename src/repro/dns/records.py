"""DNS resource records.

Only the record types the monitoring pipeline touches are modelled: A and
AAAA (the accessibility probe of Fig 2) plus CNAME, which is how CDN-hosted
sites point their web name at the CDN's edge name.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property

from ..errors import DnsError
from ..net.addresses import Address, AddressFamily, IPv4Address, IPv6Address


class RecordType(Enum):
    """Supported DNS record types."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"

    # Members are singletons, so identity hashing is equivalent to the
    # default ``hash(self._name_)`` — and skips a string hash on every
    # enum-keyed dict access in the resolver/zone hot path.
    __hash__ = object.__hash__

    @classmethod
    def for_family(cls, family: AddressFamily) -> "RecordType":
        """The address record type of a family (A for v4, AAAA for v6)."""
        if family is AddressFamily.IPV4:
            return cls.A
        return cls.AAAA

    @property
    def family(self) -> AddressFamily:
        if self is RecordType.A:
            return AddressFamily.IPV4
        if self is RecordType.AAAA:
            return AddressFamily.IPV6
        raise DnsError(f"{self} records carry no address family")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS record: ``name TTL type value``."""

    name: str
    rtype: RecordType
    value: object  # Address for A/AAAA, str target for CNAME
    ttl: float = 3600.0

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise DnsError(f"record names must be non-empty lowercase: {self.name!r}")
        if self.ttl < 0:
            raise DnsError("TTL must be non-negative")
        if self.rtype is RecordType.A and not isinstance(self.value, IPv4Address):
            raise DnsError(f"A record for {self.name} needs an IPv4 address")
        if self.rtype is RecordType.AAAA and not isinstance(self.value, IPv6Address):
            raise DnsError(f"AAAA record for {self.name} needs an IPv6 address")
        if self.rtype is RecordType.CNAME and not isinstance(self.value, str):
            raise DnsError(f"CNAME record for {self.name} needs a target name")

    @property
    def address(self) -> Address:
        """The address payload (A/AAAA only)."""
        if self.rtype is RecordType.CNAME:
            raise DnsError(f"CNAME record for {self.name} has no address")
        return self.value  # type: ignore[return-value]


@dataclass(frozen=True)
class RRSet:
    """All records of one (name, type), as returned by a query."""

    name: str
    rtype: RecordType
    records: tuple[ResourceRecord, ...]

    def __post_init__(self) -> None:
        for record in self.records:
            if record.name != self.name or record.rtype is not self.rtype:
                raise DnsError(
                    f"record {record} does not belong in RRSet "
                    f"({self.name}, {self.rtype})"
                )

    @cached_property
    def ttl(self) -> float:
        """Effective TTL of the set (minimum over members)."""
        if not self.records:
            return 0.0
        return min(record.ttl for record in self.records)

    @cached_property
    def address_tuple(self) -> tuple[Address, ...]:
        """The address payloads, memoised (RRSets are immutable and the
        zone view hands the same instance to every round's resolution)."""
        return tuple(record.address for record in self.records)

    def addresses(self) -> list[Address]:
        return list(self.address_tuple)

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)
