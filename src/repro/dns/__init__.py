"""DNS substrate: records, authoritative zones, caching resolver."""

from .records import RecordType, ResourceRecord, RRSet
from .zone import Zone, ZoneStore
from .resolver import Resolver, ResolutionResult

__all__ = [
    "RecordType",
    "ResourceRecord",
    "RRSet",
    "Zone",
    "ZoneStore",
    "Resolver",
    "ResolutionResult",
]
