"""Deterministic random-number streams.

Every stochastic subsystem (topology generation, site adoption, measurement
noise, ...) draws from its own named stream derived from a single master
seed.  This keeps scenarios fully reproducible while letting subsystems
evolve independently: adding a draw in one stream does not perturb any
other stream.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache
from typing import Iterable, Iterator

from .obs import metrics

#: generator constructions (the deterministic RNG work counter the
#: perf-regression gate tracks; module-cached, ``obs`` resets in place).
_CONSTRUCTIONS = metrics.counter("rng.constructions")

#: seed-derivation cache size: comfortably holds every named stream of a
#: full-scale campaign while bounding memory for adversarial key spaces.
_DERIVE_CACHE_SIZE = 1 << 16


@lru_cache(maxsize=_DERIVE_CACHE_SIZE)
def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for a named stream.

    Uses SHA-256 over the master seed and the stream name, so the mapping is
    stable across Python versions and processes (unlike ``hash()``).  The
    derivation is memoised: hot paths re-derive the same few stream names
    every round, and a pure function of hashable arguments caches for free.
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_uniform(master_seed: int, name: str) -> float:
    """Derive a stable uniform draw in ``[0, 1)`` for a named decision.

    One SHA-256, no generator object: for schedules that consume exactly
    one uniform per coordinate (fault plans), this replaces the
    ``Random(derive_seed(...)).random()`` idiom at a fraction of the cost
    while staying just as stable across Python versions and processes.
    The 53 bits a ``random.Random`` would deliver are taken from the same
    8 leading digest bytes :func:`derive_seed` uses.
    """
    return (derive_seed(master_seed, name) >> 11) * (2.0**-53)


def derive_uniform_block(master_seed: int, names: Iterable[str]) -> list[float]:
    """Bulk :func:`derive_uniform`: one uniform per coordinate name.

    Element-for-element identical to calling :func:`derive_uniform` on
    each name in turn.  The block form hashes directly instead of going
    through the memoised :func:`derive_seed`, because batched callers
    (fault plans sweeping per-attempt coordinates) ask each key exactly
    once — caching one-shot keys would only churn the LRU that the hot
    per-round stream names rely on.
    """
    sha256 = hashlib.sha256
    prefix = f"{master_seed}:"
    scale = 2.0**-53
    return [
        (
            int.from_bytes(
                sha256((prefix + name).encode("utf-8")).digest()[:8], "big"
            )
            >> 11
        )
        * scale
        for name in names
    ]


class RngStreams:
    """A factory of independent, named :class:`random.Random` streams.

    Streams are created lazily and cached, so asking for the same name twice
    returns the same generator object (and therefore a single consistent
    sequence for that subsystem).
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            _CONSTRUCTIONS.inc()
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fresh(self, name: str) -> random.Random:
        """Return a brand-new generator for ``name``, not cached.

        Useful when a caller needs a throwaway stream whose consumption must
        not affect the shared stream of the same name.
        """
        _CONSTRUCTIONS.inc()
        return random.Random(derive_seed(self.master_seed, name))

    def uniforms(self, name: str, n: int) -> list[float]:
        """Draw ``n`` uniforms from the named stream in one call.

        Consumes the *same* cached stream :meth:`stream` returns, so the
        result is element-for-element identical to ``n`` sequential
        ``stream(name).random()`` calls — the batched execution plane
        leans on this to hoist per-draw call overhead out of the round
        loop without perturbing any sequence.
        """
        if n < 0:
            raise ValueError("n must be >= 0")
        rand = self.stream(name).random
        return [rand() for _ in range(n)]

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(self._streams)
