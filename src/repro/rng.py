"""Deterministic random-number streams.

Every stochastic subsystem (topology generation, site adoption, measurement
noise, ...) draws from its own named stream derived from a single master
seed.  This keeps scenarios fully reproducible while letting subsystems
evolve independently: adding a draw in one stream does not perturb any
other stream.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for a named stream.

    Uses SHA-256 over the master seed and the stream name, so the mapping is
    stable across Python versions and processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """A factory of independent, named :class:`random.Random` streams.

    Streams are created lazily and cached, so asking for the same name twice
    returns the same generator object (and therefore a single consistent
    sequence for that subsystem).
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng

    def fresh(self, name: str) -> random.Random:
        """Return a brand-new generator for ``name``, not cached.

        Useful when a caller needs a throwaway stream whose consumption must
        not affect the shared stream of the same name.
        """
        return random.Random(derive_seed(self.master_seed, name))

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RngStreams(derive_seed(self.master_seed, f"spawn:{name}"))

    def names(self) -> Iterator[str]:
        """Iterate over the names of streams created so far."""
        return iter(self._streams)
