"""Execute phase of the batched round: schedule, draws, loops, bulk writes.

The execute phase walks the planned batch in dispatch order and performs
exactly the order-sensitive work the plan deferred: the 25-slot worker
pool schedule (which stamps every observation), the shared-RNG draws
(identity probes, then the repeated-download loops), and the database
writes.  Per-site draw accounting is the whole game — a DNS-filtered
site consumes nothing, a v6-unreachable site still burns the IPv4
probe's Gaussian, a measured site runs two converging loops — so the
per-vantage stream advances through the batch precisely as the scalar
``_monitor_site`` chain did, and the pinned content digests hold.

Faulty worlds route through :func:`execute_faulted_round` instead: site
fates there depend on injected failures (a DNS-exhausted family flips a
site to single-stack, probe retries consume extra draws), so the walk
classifies at execute time — still on the batched spine, with server
fault decisions prefetched per probe/loop span through
:meth:`HttpClient.fault_batch`.
"""

from __future__ import annotations

import heapq
import math

from ..errors import UnreachableError
from ..monitor.database import (
    DnsObservation,
    DownloadObservation,
    PageCheck,
    PathObservation,
    TransitionObservation,
)
from ..monitor.download import run_converging_loop
from ..monitor.tool import DNS_PHASE_SECONDS, PAGE_CHECK_SECONDS, RoundReport
from ..net.addresses import AddressFamily
from ..obs import get_logger, metrics
from .plan import (
    IDENTITY_FAILED,
    UNREACHABLE_V4,
    UNREACHABLE_V6,
    RoundPlan,
    build_round_plan,
)

_LOG = get_logger("batch.execute")

#: the monitor's per-phase counters (same registry objects tool.py holds).
_SITES_MONITORED = metrics.counter("monitor.sites_monitored")
_DNS_FILTERED = metrics.counter("monitor.dns_filtered")
_UNREACHABLE = metrics.counter("monitor.unreachable")
_IDENTITY_FAILED = metrics.counter("monitor.identity_failed")
_DUAL_STACK = metrics.counter("monitor.dual_stack")
_MEASURED = metrics.counter("monitor.sites_measured")
_SLOT_OCCUPANCY = metrics.gauge("monitor.slot_occupancy")
_DOWNLOADS = metrics.counter("download.samples")
_CONVERGED = metrics.counter("download.loops_converged")
_EXHAUSTED = metrics.counter("download.loops_exhausted")
_LOOP_SAMPLES = metrics.histogram("download.samples_per_loop")
#: batch-plane phase widths (satellite gauges: how many sites each
#: phase's arrays carried this round — the batched analogue of the
#: legacy per-dispatch slot occupancy).
_BATCH_DNS_WIDTH = metrics.gauge("monitor.batch.dns_width")
_BATCH_IDENTITY_WIDTH = metrics.gauge("monitor.batch.identity_width")
_BATCH_DOWNLOAD_WIDTH = metrics.gauge("monitor.batch.download_width")

#: duration of a dual-stack site that proved unreachable, as the scalar
#: path computes it faults-off: (0.2 + 0.0) + 1.0.
_UNREACH_SECONDS = DNS_PHASE_SECONDS + PAGE_CHECK_SECONDS


def run_batched_round(
    tool,
    round_idx: int,
    order: list[str],
    listed_now: set[str],
    n_new: int,
    round_start: float,
) -> RoundReport:
    """One monitoring round on the batched spine (the run_round back end)."""
    env = tool.env
    if env.resolver.fault_check is None and not env.client.has_fault_hook:
        plan = build_round_plan(tool, round_idx, order, listed_now)
        return _execute_plan(tool, plan, n_new, round_start)
    return _execute_faulted(
        tool, round_idx, order, listed_now, n_new, round_start
    )


def _execute_plan(
    tool, plan: RoundPlan, n_new: int, round_start: float
) -> RoundReport:
    """Fault-free execute: bulk draws and inline loops over the plan."""
    cfg = tool.config
    rng = tool.rng
    round_idx = plan.round_idx
    sigma = tool.env.client.model.config.measurement_noise_sigma
    gauss = rng.gauss
    exp = math.exp
    heappush = heapq.heappush
    heappop = heapq.heappop

    slots = [(round_start, slot) for slot in range(cfg.max_concurrent)]
    heapq.heapify(slots)
    busy: list[float] = []
    occupancy_max = 0
    makespan = round_start
    n_dns_filtered = n_dual = n_unreachable = n_identity_failed = n_measured = 0
    total_samples = n_converged = n_exhausted = 0
    download_rows: list[DownloadObservation] = []
    path_rows: list[PathObservation] = []
    record_transitions = tool.env.record_transitions
    transition_rows: list[TransitionObservation] = []

    for site in plan.sites:
        free_at, slot = heappop(slots)
        while busy and busy[0] <= free_at:
            heappop(busy)
        occupancy = 1 + len(busy)
        if occupancy > occupancy_max:
            occupancy_max = occupancy
        if site is None:
            n_dns_filtered += 1
            duration = DNS_PHASE_SECONDS
        elif (kind := site.kind) == UNREACHABLE_V4:
            n_dual += 1
            n_unreachable += 1
            duration = _UNREACH_SECONDS
        elif kind == UNREACHABLE_V6:
            n_dual += 1
            n_unreachable += 1
            if sigma > 0:
                # The IPv4 identity probe ran (and drew) before the
                # scalar path discovered the v6 endpoint was dark.
                gauss(0.0, sigma)
            duration = _UNREACH_SECONDS
        else:
            n_dual += 1
            session_v4 = site.session_v4
            session_v6 = site.session_v6
            # Identity probes: one GET per family, v4 then v6 (the
            # session.get float expressions, inlined).
            if sigma > 0:
                v4_seconds = session_v4._page_kbytes / (
                    session_v4.round_mean * exp(gauss(0.0, sigma))
                )
                v6_seconds = session_v6._page_kbytes / (
                    session_v6.round_mean * exp(gauss(0.0, sigma))
                )
            else:
                v4_seconds = session_v4._page_kbytes / session_v4.round_mean
                v6_seconds = session_v6._page_kbytes / session_v6.round_mean
            duration = v4_seconds + v6_seconds + DNS_PHASE_SECONDS
            if kind == IDENTITY_FAILED:
                n_identity_failed += 1
            else:
                n_measured += 1
                for family, session in (
                    (AddressFamily.IPV4, session_v4),
                    (AddressFamily.IPV6, session_v6),
                ):
                    n, mean, half, loop_seconds, converged = (
                        run_converging_loop(session, rng, cfg)
                    )
                    duration += loop_seconds
                    total_samples += n
                    _LOOP_SAMPLES.observe(n)
                    if converged:
                        n_converged += 1
                    else:
                        n_exhausted += 1
                    download_rows.append(
                        DownloadObservation(
                            site_id=site.site_id,
                            round_idx=round_idx,
                            family=family,
                            n_samples=n,
                            mean_speed=mean,
                            ci_half_width=half,
                            converged=converged,
                            page_bytes=session.endpoint.page_bytes,
                            timestamp=free_at,
                        )
                    )
                    as_path = session.path.as_path
                    path_rows.append(
                        PathObservation(
                            site_id=site.site_id,
                            round_idx=round_idx,
                            family=family,
                            dest_asn=as_path[-1],
                            as_path=as_path,
                        )
                    )
                if record_transitions:
                    transition_rows.append(
                        TransitionObservation(
                            site_id=site.site_id,
                            round_idx=round_idx,
                            kind=session_v6.path.transition_kind,
                        )
                    )
        finish = free_at + duration
        heappush(slots, (finish, slot))
        heappush(busy, finish)
        if finish > makespan:
            makespan = finish

    database = tool.database
    database.add_dns_round(round_idx, plan.listed_counts, plan.dns_rows)
    database.add_page_checks(plan.page_rows)
    database.add_downloads(download_rows)
    database.add_paths(path_rows)
    database.add_transitions(transition_rows)
    tool._pair_resolver.flush_counters()

    _SITES_MONITORED.inc(len(plan.sites))
    _DNS_FILTERED.inc(n_dns_filtered)
    _DUAL_STACK.inc(n_dual)
    _UNREACHABLE.inc(n_unreachable)
    _IDENTITY_FAILED.inc(n_identity_failed)
    _MEASURED.inc(n_measured)
    _DOWNLOADS.inc(total_samples)
    _CONVERGED.inc(n_converged)
    _EXHAUSTED.inc(n_exhausted)
    _record_phase_widths(len(plan.sites), n_dual, n_measured, occupancy_max)
    _LOG.debug(
        "batched round done",
        extra={
            "vantage": tool.vantage.name,
            "round": round_idx,
            "monitored": len(plan.sites),
            "new": n_new,
            "dual_stack": n_dual,
            "measured": n_measured,
            "failures": 0,
        },
    )
    return RoundReport(
        round_idx=round_idx,
        n_monitored=len(plan.sites),
        n_new=n_new,
        n_dual_stack=n_dual,
        n_measured=n_measured,
        makespan_seconds=makespan - round_start,
        n_failures=0,
    )


def _record_phase_widths(
    dns_width: int, identity_width: int, download_width: int, occupancy_max: int
) -> None:
    """Per-phase batch gauges, plus the legacy occupancy high-water mark.

    Under batching there is no per-dispatch pool scan, so the legacy
    ``monitor.slot_occupancy`` gauge would freeze at whatever the last
    scalar round left behind; the execute walk tracks the same
    dispatch-instant occupancy and records the round's maximum here.
    """
    _BATCH_DNS_WIDTH.set(dns_width)
    _BATCH_IDENTITY_WIDTH.set(identity_width)
    _BATCH_DOWNLOAD_WIDTH.set(download_width)
    if occupancy_max:
        _SLOT_OCCUPANCY.update_max(occupancy_max)


def _execute_faulted(
    tool,
    round_idx: int,
    order: list[str],
    listed_now: set[str],
    n_new: int,
    round_start: float,
) -> RoundReport:
    """Execute a round whose fates depend on injected faults.

    Classification happens site by site (a DNS-exhausted family flips a
    site to single-stack; an exhausted probe abandons it), but the
    expensive lookups stay batched: server fault decisions are
    prefetched per probe span and per loop block.  Rows land through the
    scalar ``add_*`` writes because fault rows interleave with the
    per-site tables in dispatch order.
    """
    cfg = tool.config
    slots = [(round_start, slot) for slot in range(cfg.max_concurrent)]
    heapq.heapify(slots)
    busy: list[float] = []
    occupancy_max = 0
    makespan = round_start
    n_dual = 0
    n_measured = 0
    for name in order:
        free_at, slot = heapq.heappop(slots)
        while busy and busy[0] <= free_at:
            heapq.heappop(busy)
        occupancy = 1 + len(busy)
        if occupancy > occupancy_max:
            occupancy_max = occupancy
        duration, dual_stack, measured = _monitor_site_faulted(
            tool, name, round_idx, free_at, listed=name in listed_now
        )
        finish = free_at + duration
        heapq.heappush(slots, (finish, slot))
        heapq.heappush(busy, finish)
        makespan = max(makespan, finish)
        n_dual += int(dual_stack)
        n_measured += int(measured)
    _record_phase_widths(len(order), n_dual, n_measured, occupancy_max)
    _LOG.debug(
        "batched round done",
        extra={
            "vantage": tool.vantage.name,
            "round": round_idx,
            "monitored": len(order),
            "new": n_new,
            "dual_stack": n_dual,
            "measured": n_measured,
            "failures": tool._round_faults,
        },
    )
    return RoundReport(
        round_idx=round_idx,
        n_monitored=len(order),
        n_new=n_new,
        n_dual_stack=n_dual,
        n_measured=n_measured,
        makespan_seconds=makespan - round_start,
        n_failures=tool._round_faults,
    )


def _probe_prefetched(
    tool, session, family: AddressFamily, site_id: int, round_idx: int, decisions
) -> tuple[bool, float]:
    """One identity probe against prefetched fault decisions.

    The retry loop, backoff accounting, fault recording, and shared-RNG
    draw (exactly one Gaussian, on the first non-faulted attempt) mirror
    ``MonitoringTool._probe_with_retry`` + ``DownloadSession.get``;
    returns (succeeded, simulated seconds spent).
    """
    rng = tool.rng
    seconds = 0.0
    for attempt in range(tool.config.max_retries + 1):
        fault = decisions[attempt]
        if fault is None:
            sigma = session._noise_sigma
            if sigma > 0:
                speed = session.round_mean * math.exp(rng.gauss(0.0, sigma))
            else:
                speed = session.round_mean
            seconds += session._page_kbytes / speed
            return True, seconds
        seconds += fault.seconds
        tool._record_fault(site_id, round_idx, family, fault.kind)
        if attempt < tool.config.max_retries:
            seconds += tool._backoff_seconds(attempt)
    tool._record_fault(site_id, round_idx, family, "exhausted")
    return False, seconds


def _monitor_site_faulted(
    tool, name: str, round_idx: int, now: float, listed: bool
) -> tuple[float, bool, bool]:
    """One site under injected faults (``_monitor_site`` on the batch spine)."""
    _SITES_MONITORED.inc()
    site_id = tool._site_ids.get(name)
    if site_id is None:
        site_id = tool._site_ids[name] = tool.env.site_id_of(name)
    answers, dns_extra = tool._query_both_with_retry(
        name, site_id, round_idx, now
    )
    v4 = answers[AddressFamily.IPV4]
    v6 = answers[AddressFamily.IPV6]
    database = tool.database
    database.add_dns(
        DnsObservation(
            site_id=site_id,
            name=name,
            round_idx=round_idx,
            has_v4=v4 is not None,
            has_v6=v6 is not None,
            listed=listed,
        )
    )
    if v4 is None or v6 is None:
        _DNS_FILTERED.inc()
        return DNS_PHASE_SECONDS + dns_extra, False, False
    _DUAL_STACK.inc()

    client = tool.env.client
    probe_keys = [f"probe:{idx}" for idx in range(tool.config.max_retries + 1)]
    try:
        session_v4 = client.open(
            v4.final_name, v4.addresses[0], AddressFamily.IPV4, round_idx
        )
        probe_v4_ok, v4_seconds = _probe_prefetched(
            tool,
            session_v4,
            AddressFamily.IPV4,
            site_id,
            round_idx,
            client.fault_batch(
                site_id, AddressFamily.IPV4, round_idx, probe_keys
            ),
        )
        session_v6 = client.open(
            v6.final_name, v6.addresses[0], AddressFamily.IPV6, round_idx
        )
        probe_v6_ok, v6_seconds = _probe_prefetched(
            tool,
            session_v6,
            AddressFamily.IPV6,
            site_id,
            round_idx,
            client.fault_batch(
                site_id, AddressFamily.IPV6, round_idx, probe_keys
            ),
        )
    except UnreachableError:
        _UNREACHABLE.inc()
        return DNS_PHASE_SECONDS + dns_extra + PAGE_CHECK_SECONDS, True, False
    if not probe_v4_ok or not probe_v6_ok:
        return (
            DNS_PHASE_SECONDS + dns_extra + v4_seconds + v6_seconds,
            True,
            False,
        )
    v4_bytes = session_v4.endpoint.page_bytes
    v6_bytes = session_v6.endpoint.page_bytes
    larger = max(v4_bytes, v6_bytes)
    identical = abs(v4_bytes - v6_bytes) / larger <= tool.config.identity_threshold
    database.add_page_check(
        PageCheck(
            site_id=site_id,
            round_idx=round_idx,
            v4_bytes=v4_bytes,
            v6_bytes=v6_bytes,
            identical=identical,
        )
    )
    duration = v4_seconds + v6_seconds + DNS_PHASE_SECONDS + dns_extra
    if not identical:
        _IDENTITY_FAILED.inc()
        return duration, True, False

    fully_measured = True
    for family, session in (
        (AddressFamily.IPV4, session_v4),
        (AddressFamily.IPV6, session_v6),
    ):
        outcome = tool.downloader.run_batched(session, tool.rng)
        duration += outcome.total_seconds
        for _ in range(outcome.n_timeouts):
            tool._record_fault(site_id, round_idx, family, "timeout")
        for _ in range(outcome.n_resets):
            tool._record_fault(site_id, round_idx, family, "reset")
        if outcome.gave_up:
            tool._record_fault(site_id, round_idx, family, "exhausted")
        if outcome.first_result is None:
            fully_measured = False
            continue
        database.add_download(
            DownloadObservation(
                site_id=site_id,
                round_idx=round_idx,
                family=family,
                n_samples=outcome.n_samples,
                mean_speed=outcome.mean_speed,
                ci_half_width=outcome.ci_half_width,
                converged=outcome.converged,
                page_bytes=outcome.page_bytes,
                timestamp=now,
            )
        )
        database.add_path(
            PathObservation(
                site_id=site_id,
                round_idx=round_idx,
                family=family,
                dest_asn=outcome.first_result.as_path[-1],
                as_path=outcome.first_result.as_path,
            )
        )
        if family is AddressFamily.IPV6 and tool.env.record_transitions:
            database.add_transition(
                TransitionObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    kind=session.path.transition_kind,
                )
            )
    if fully_measured:
        _MEASURED.inc()
    return duration, True, fully_measured
