"""Plan phase of the batched round: enumerate the site batch, no RNG.

On a fault-free world everything that decides a site's fate this round —
its A/AAAA answers, whether both families have forwarding paths, whether
the two pages are byte-identical — is a pure function of (site, round):
none of it touches the vantage's shared RNG stream or the simulated
clock.  :func:`build_round_plan` therefore resolves the whole batch up
front: one :class:`~repro.batch.dnsplan.PairResolver` sweep for the DNS
phase, two :meth:`~repro.web.http.HttpClient.open_many` sweeps for the
sessions (IPv4 for every dual-stack site, then IPv6 only where IPv4 was
reachable, exactly the order the scalar opens probed reachability in),
and the page-identity comparison straight off the pinned endpoints.

What remains for the execute phase is everything order-sensitive: the
worker-pool schedule, the shared-RNG draws, and the download loops.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..monitor.database import DnsObservation, PageCheck
from ..net.addresses import AddressFamily
from ..web.http import DownloadSession
from .dnsplan import PairResolver

#: site classifications, in scalar-bailout order.  UNREACHABLE_V6 differs
#: from UNREACHABLE_V4 only in draw accounting: the scalar path discovers
#: a v6-dark destination *after* the IPv4 identity probe consumed its
#: shared-RNG draw, so the execute phase must burn that draw too.
DNS_FILTERED = 0
UNREACHABLE_V4 = 1
UNREACHABLE_V6 = 2
IDENTITY_FAILED = 3
MEASURED = 4


@dataclass(slots=True)
class SitePlan:
    """One site's planned fate this round (sessions pinned where opened)."""

    name: str
    site_id: int
    kind: int
    session_v4: DownloadSession | None = None
    session_v6: DownloadSession | None = None


@dataclass(slots=True)
class RoundPlan:
    """The whole round, planned: per-site fates plus the rows they imply.

    ``sites`` holds one slot per dispatched site in dispatch order; a
    DNS-filtered site's slot is ``None`` — the execute phase charges it
    the fixed DNS-phase duration and nothing else, so carrying a name or
    id for it would be pure allocation overhead (the vast majority of a
    top list is single-stack, per the paper's Fig 1).
    """

    round_idx: int
    sites: list[SitePlan | None]
    #: pre-aggregated top-list tallies: (queried, has_v4, has_v6).
    listed_counts: tuple[int, int, int]
    #: dual-stack DNS rows, dispatch order (bulk-added at round end).
    dns_rows: list[DnsObservation]
    #: rows for sites that reached the identity comparison, dispatch order.
    page_rows: list[PageCheck]


def build_round_plan(
    tool, round_idx: int, order: list[str], listed_now: set[str]
) -> RoundPlan:
    """Plan one fault-free round over ``order`` (the shuffled dispatch order)."""
    env = tool.env
    pair_resolver: PairResolver | None = tool._pair_resolver
    if pair_resolver is None:
        pair_resolver = tool._pair_resolver = PairResolver(env.resolver)
    site_ids = tool._site_ids
    site_id_of = env.site_id_of
    resolve_pair = pair_resolver.resolve_pair

    sites: list[SitePlan | None] = []
    dns_rows: list[DnsObservation] = []
    dual: list[tuple[SitePlan, object, object]] = []
    n_listed = n_listed_v4 = n_listed_v6 = 0
    for name in order:
        site_id = site_ids.get(name)
        if site_id is None:
            site_id = site_ids[name] = site_id_of(name)
        res4, res6 = resolve_pair(name)
        has_v4 = res4 is not None
        has_v6 = res6 is not None
        listed = name in listed_now
        if listed:
            n_listed += 1
            n_listed_v4 += has_v4
            n_listed_v6 += has_v6
        if has_v4 and has_v6:
            dns_rows.append(
                DnsObservation(
                    site_id=site_id,
                    name=name,
                    round_idx=round_idx,
                    has_v4=True,
                    has_v6=True,
                    listed=listed,
                )
            )
            plan = SitePlan(name=name, site_id=site_id, kind=DNS_FILTERED)
            sites.append(plan)
            dual.append((plan, res4, res6))
        else:
            sites.append(None)

    client = env.client
    sessions_v4 = client.open_many(
        [
            (res4.final_name, res4.addresses[0], AddressFamily.IPV4, round_idx)
            for _plan, res4, _res6 in dual
        ]
    )
    # IPv6 sessions only where IPv4 was reachable: the scalar path bails
    # on a v4-dark site before ever looking its v6 endpoint up, and the
    # work counters must tell the same story.
    pending: list[tuple[SitePlan, object]] = []
    for (plan, _res4, res6), session_v4 in zip(dual, sessions_v4):
        if session_v4 is None:
            plan.kind = UNREACHABLE_V4
        else:
            plan.session_v4 = session_v4
            pending.append((plan, res6))
    sessions_v6 = client.open_many(
        [
            (res6.final_name, res6.addresses[0], AddressFamily.IPV6, round_idx)
            for _plan, res6 in pending
        ]
    )

    page_rows: list[PageCheck] = []
    threshold = tool.config.identity_threshold
    for (plan, _res6), session_v6 in zip(pending, sessions_v6):
        if session_v6 is None:
            plan.kind = UNREACHABLE_V6
            continue
        plan.session_v6 = session_v6
        v4_bytes = plan.session_v4.endpoint.page_bytes
        v6_bytes = session_v6.endpoint.page_bytes
        larger = max(v4_bytes, v6_bytes)
        identical = abs(v4_bytes - v6_bytes) / larger <= threshold
        page_rows.append(
            PageCheck(
                site_id=plan.site_id,
                round_idx=round_idx,
                v4_bytes=v4_bytes,
                v6_bytes=v6_bytes,
                identical=identical,
            )
        )
        plan.kind = MEASURED if identical else IDENTITY_FAILED
    return RoundPlan(
        round_idx=round_idx,
        sites=sites,
        listed_counts=(n_listed, n_listed_v4, n_listed_v6),
        dns_rows=dns_rows,
        page_rows=page_rows,
    )
