"""The batched round execution plane.

The monitor's legacy hot path walks one site at a time; this package
restructures a round into a *plan* step that enumerates the whole site
batch (DNS answers, sessions, fault schedules) and an *execute* step
that walks the dispatch schedule consuming bulk draws and materializing
observation rows in columnar order.  Both steps are engineered to be
bit-identical to the scalar path: same shared-RNG draw order, same
float expressions, same database row order, so the pinned faults-off
digest and serial-vs-process parity are preserved.

``REPRO_BATCH=0`` forces the legacy scalar path (kept as the reference
implementation the parity tests compare against).
"""

from __future__ import annotations

import os

from .sampling import gauss_block, uniform_block


def batching_enabled() -> bool:
    """Whether rounds run on the batched plane (default) or scalar."""
    return os.environ.get("REPRO_BATCH", "1").lower() not in ("0", "false", "no")


__all__ = ["batching_enabled", "gauss_block", "uniform_block"]
