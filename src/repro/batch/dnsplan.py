"""Batched DNS planning: per-name A+AAAA answer pairs with push-validated memos.

Within one monitoring round the authoritative zones are fixed (the
publisher advances them at round start) and every record's TTL is far
shorter than the gap between rounds, so the resolver's *answers* are
pure functions of (name, current zone state) — only its hit/miss
accounting depends on query timestamps.  The batch plan exploits that:
:class:`PairResolver` computes both families' answers from one CNAME
chase over the zone view and memoises them across rounds, revalidating
with entry-object identity (one ``is`` check per chain element) so any
zone mutation — AAAA adoption, W6D events — transparently recomputes
exactly the names it touched.
"""

from __future__ import annotations

from ..dns.records import RecordType
from ..dns.resolver import (
    MAX_CNAME_DEPTH,
    _CACHE_HITS,
    _CACHE_MISSES,
    _DNS64_SYNTHESIZED,
    ResolutionResult,
    Resolver,
)
from ..errors import DnsError
from ..net.nat64 import synthesize_aaaa

#: one memo row: (v4 answer, v6 answer, ((name, entry), ...) chain).
_PairRow = tuple[ResolutionResult | None, ResolutionResult | None, tuple]


class PairResolver:
    """A+AAAA answer pairs for site names, memoised across rounds.

    Answers are byte-identical to what the scalar resolver produces for
    the same zone state: the chase below follows the same CNAME hops
    (zone invariants guarantee a name holds either a CNAME or terminal
    records, never both, so both families share one chain) and builds
    :class:`ResolutionResult` rows from the same record sets.

    Cache accounting: a memo hit counts as both families answered from
    cache (+2 hits), a rebuild as two authoritative misses (+2 misses).
    The totals are flushed in bulk by :meth:`flush_counters` once per
    round, keeping the ``dns.cache_hits > 0`` perf gate meaningful
    without a per-site metrics call.
    """

    __slots__ = (
        "_view",
        "_memo",
        "_view_entries_get",
        "_dns64",
        "pending_hits",
        "pending_misses",
        "pending_dns64",
    )

    def __init__(self, resolver: Resolver) -> None:
        self._view = resolver.store.view()
        self._memo: dict[str, _PairRow] = {}
        # The view's entry dict is mutated in place (push invalidation
        # pops names), so its bound ``get`` stays valid for the view's
        # lifetime — the validation loop below runs per site per round.
        self._view_entries_get = self._view._entries.get
        self._dns64 = resolver.dns64
        self.pending_hits = 0
        self.pending_misses = 0
        self.pending_dns64 = 0

    def resolve_pair(
        self, name: str
    ) -> tuple[ResolutionResult | None, ResolutionResult | None]:
        """Both families' answers for ``name`` against the current zones."""
        row = self._memo.get(name)
        if row is not None:
            cached = self._view_entries_get
            for chain_name, chain_entry in row[2]:
                if cached(chain_name) is not chain_entry:
                    break
            else:
                self.pending_hits += 2
                return row[0], row[1]
        self.pending_misses += 2
        row = self._chase(name)
        self._memo[name] = row
        return row[0], row[1]

    def _chase(self, name: str) -> _PairRow:
        """One CNAME chase answering both families (the scalar walk's shape)."""
        view_entry = self._view.entry
        a_type, aaaa_type, cname_type = (
            RecordType.A,
            RecordType.AAAA,
            RecordType.CNAME,
        )
        current = name.lower()
        chain: list[tuple] = []
        res4: ResolutionResult | None = None
        res6: ResolutionResult | None = None
        for _ in range(MAX_CNAME_DEPTH):
            entry = view_entry(current)
            chain.append((current, entry))
            if not entry.exists:
                break
            rrsets = entry.rrsets
            a_set = rrsets.get(a_type)
            aaaa_set = rrsets.get(aaaa_type)
            if a_set is not None or aaaa_set is not None:
                if a_set is not None:
                    res4 = ResolutionResult(
                        query_name=name,
                        final_name=current,
                        rtype=a_type,
                        addresses=a_set.address_tuple,
                        from_cache=False,
                    )
                if aaaa_set is not None:
                    res6 = ResolutionResult(
                        query_name=name,
                        final_name=current,
                        rtype=aaaa_type,
                        addresses=aaaa_set.address_tuple,
                        from_cache=False,
                    )
                elif a_set is not None and self._dns64:
                    # DNS64 (RFC 6147): the name is v4-only, so the AAAA
                    # answer is synthesized from the A record — same
                    # mapping as the scalar resolver's synthesis point.
                    self.pending_dns64 += 1
                    res6 = ResolutionResult(
                        query_name=name,
                        final_name=current,
                        rtype=aaaa_type,
                        addresses=tuple(
                            synthesize_aaaa(a) for a in a_set.address_tuple
                        ),
                        from_cache=False,
                    )
                break
            cname_set = rrsets.get(cname_type)
            if cname_set is None:
                break
            current = str(cname_set.records[0].value)
        else:
            raise DnsError(f"CNAME chain too deep resolving {name}")
        return res4, res6, tuple(chain)

    def flush_counters(self) -> None:
        """Flush the accumulated hit/miss totals to the obs registry."""
        if self.pending_hits:
            _CACHE_HITS.inc(self.pending_hits)
            self.pending_hits = 0
        if self.pending_misses:
            _CACHE_MISSES.inc(self.pending_misses)
            self.pending_misses = 0
        if self.pending_dns64:
            _DNS64_SYNTHESIZED.inc(self.pending_dns64)
            self.pending_dns64 = 0
