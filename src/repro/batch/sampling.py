"""Bulk draw primitives over a shared ``random.Random`` stream.

The monitor's shared per-vantage stream must be consumed in exactly the
legacy order for digests to stay bit-identical, so these helpers do not
reorder anything — they hoist the per-draw call overhead (method
dispatch, attribute lookups, ``gauss`` state bookkeeping) out of the
loop while producing the identical float sequence.
"""

from __future__ import annotations

import math
import random

#: the constant CPython's ``random.gauss`` uses (``2.0 * pi``).
_TWOPI = 2.0 * math.pi


def uniform_block(rng: random.Random, n: int) -> list[float]:
    """``n`` sequential ``rng.random()`` draws, as one list."""
    if n < 0:
        raise ValueError("n must be >= 0")
    rand = rng.random
    return [rand() for _ in range(n)]


def gauss_block(
    rng: random.Random, n: int, mu: float = 0.0, sigma: float = 1.0
) -> list[float]:
    """``n`` sequential ``rng.gauss(mu, sigma)`` draws, as one list.

    Replicates CPython's Box-Muller implementation bit-for-bit,
    including the cached ``gauss_next`` partner: a block may start by
    consuming a partner left over from an earlier scalar ``gauss`` call
    and may leave one behind for the next, so mixing block and scalar
    draws on the same stream yields the identical sequence.  The
    underlying uniforms are drawn as one bulk block up front.
    """
    if n < 0:
        raise ValueError("n must be >= 0")
    if n == 0:
        return []
    z = rng.gauss_next
    rng.gauss_next = None
    pending = n if z is None else n - 1
    pairs = (pending + 1) // 2
    uniforms = uniform_block(rng, 2 * pairs)
    cos, sin, log, sqrt = math.cos, math.sin, math.log, math.sqrt
    out: list[float] = []
    append = out.append
    idx = 0
    for _ in range(n):
        if z is None:
            x2pi = uniforms[idx] * _TWOPI
            g2rad = sqrt(-2.0 * log(1.0 - uniforms[idx + 1]))
            idx += 2
            z = cos(x2pi) * g2rad
            partner = sin(x2pi) * g2rad
        else:
            partner = None
        append(mu + z * sigma)
        z = partner
    rng.gauss_next = z
    return out
