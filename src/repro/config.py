"""Scenario configuration.

All tunable parameters of the synthetic Internet, the monitoring campaign,
and the analysis live here as frozen dataclasses.  A single
:class:`ScenarioConfig` is the entry point; its defaults produce a
laptop-scale world (a few thousand ASes, tens of thousands of sites) whose
measured tables match the *shape* of the paper's results.

Every experiment and benchmark constructs its world from one of these
configs, so a scenario is fully described by ``(config, master seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the AS-level topology generator.

    The generated graph is a Gao-Rexford-consistent hierarchy: a clique of
    tier-1 ASes at the top, transit ASes buying from tier-1s/larger transits,
    and stub / content / CDN ASes at the edge.  Counts are per AS type.
    """

    n_tier1: int = 8
    n_transit: int = 120
    n_stub: int = 700
    n_content: int = 350
    n_cdn: int = 6
    n_regions: int = 5
    #: mean number of providers for a transit AS (min 1).
    transit_provider_mean: float = 2.0
    #: probability a transit AS buys directly from a tier-1 (keeps the
    #: hierarchy shallow; real AS paths averaged ~4 hops in 2011).
    transit_tier1_attachment: float = 0.65
    #: mean number of providers for an edge (stub/content) AS.
    edge_provider_mean: float = 1.6
    #: probability that two transit ASes in the same region peer.
    transit_peering_prob: float = 0.09
    #: probability that two transit ASes in different regions peer.
    transit_interregion_peering_prob: float = 0.025
    #: probability that a content AS peers with a transit AS in its region.
    content_peering_prob: float = 0.10
    #: number of transit ASes each CDN AS connects to (multihoming + peering).
    cdn_attachments: int = 10
    #: lognormal sigma of per-AS quality factors (1.0 = nominal).
    link_quality_sigma: float = 0.12
    #: lognormal sigma of the *family-specific* deviation from an AS's
    #: base quality.  Small by construction: H1 (comparable data planes)
    #: is a property of the modelled world, so an AS's IPv6 forwarding
    #: only jitters slightly around its IPv4 forwarding.
    family_quality_sigma: float = 0.015

    def validate(self) -> None:
        if self.n_tier1 < 2:
            raise ConfigError("need at least 2 tier-1 ASes")
        if min(self.n_transit, self.n_stub, self.n_content) < 1:
            raise ConfigError("transit/stub/content counts must be >= 1")
        if self.n_regions < 1:
            raise ConfigError("need at least one region")
        if not 0.0 <= self.transit_peering_prob <= 1.0:
            raise ConfigError("transit_peering_prob must be a probability")

    @property
    def n_ases(self) -> int:
        """Total number of ASes the generator will create."""
        return (
            self.n_tier1
            + self.n_transit
            + self.n_stub
            + self.n_content
            + self.n_cdn
        )


@dataclass(frozen=True)
class DualStackConfig:
    """How IPv6 is deployed on top of the IPv4 topology.

    ``peering_parity`` is the paper's central knob: the probability that an
    IPv4 *peering* link is mirrored in IPv6 when both endpoints are
    v6-enabled.  Customer-provider links are mirrored with a separate,
    higher probability (providers sell v6 transit more readily than peers
    negotiate parity).
    """

    #: probability that an AS of each type enables IPv6 at all.
    v6_enable_prob_tier1: float = 1.0
    v6_enable_prob_transit: float = 0.75
    v6_enable_prob_stub: float = 0.30
    v6_enable_prob_content: float = 0.50
    v6_enable_prob_cdn: float = 0.0  # 2011: no production-grade IPv6 CDNs
    #: probability an IPv4 c2p link is mirrored in IPv6 (both ends enabled).
    c2p_parity: float = 1.0
    #: probability an IPv4 peering link is mirrored in IPv6.
    peering_parity: float = 0.45
    #: probability that a v6-enabled AS with no native v6 uplink tunnels
    #: (6to4 or broker) instead of staying v6-dark.
    tunnel_prob: float = 0.85
    #: fraction of tunnels that are 6to4 (the rest use a broker AS).
    six_to_four_fraction: float = 0.5
    #: extra multiplicative throughput penalty of a tunneled segment.
    tunnel_quality: float = 0.82

    def validate(self) -> None:
        for name in (
            "v6_enable_prob_tier1",
            "v6_enable_prob_transit",
            "v6_enable_prob_stub",
            "v6_enable_prob_content",
            "v6_enable_prob_cdn",
            "c2p_parity",
            "peering_parity",
            "tunnel_prob",
            "six_to_four_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        if not 0.0 < self.tunnel_quality <= 1.0:
            raise ConfigError("tunnel_quality must be in (0, 1]")


@dataclass(frozen=True)
class SiteConfig:
    """The measured website population (the Alexa-like catalog)."""

    n_sites: int = 20000
    #: Zipf exponent of site popularity (affects rank ordering only).
    zipf_exponent: float = 0.9
    #: fraction of the list replaced by new sites each monitoring round.
    churn_rate: float = 0.01
    #: mean main-page size in bytes.
    page_size_mean: float = 60_000.0
    #: lognormal sigma of page sizes.
    page_size_sigma: float = 0.8
    #: fraction of dual-stack sites whose v6 page differs by more than the
    #: identity threshold (different content served per family).
    different_content_fraction: float = 0.03
    #: fraction of content sites that use a (v4-only) CDN.
    cdn_fraction: float = 0.12
    #: fraction of dual-stack sites whose IPv6 presence is hosted in a
    #: different AS than IPv4 (split hosting, another source of DL sites).
    split_hosting_fraction: float = 0.02
    #: size of the external (never-ranked) site pool fed to Penn's monitor
    #: from its DNS cache, as a fraction of n_sites (Fig 3b's 5M sample).
    external_pool_fraction: float = 0.5
    #: fraction of dual-stack sites with an IPv6-impaired server.
    server_v6_impaired_fraction: float = 0.10
    #: multiplicative server efficiency for impaired v6 servers (mean).
    impaired_efficiency_mean: float = 0.55
    #: site behaviour mix: stationary / step / trend (must sum to 1).
    stationary_fraction: float = 0.86
    step_fraction: float = 0.08
    trend_fraction: float = 0.06
    #: among step sites, fraction whose step coincides with a path change.
    step_from_path_change_fraction: float = 0.30

    def validate(self) -> None:
        if self.n_sites < 1:
            raise ConfigError("n_sites must be >= 1")
        mix = self.stationary_fraction + self.step_fraction + self.trend_fraction
        if abs(mix - 1.0) > 1e-9:
            raise ConfigError(f"behaviour fractions must sum to 1, got {mix}")
        for name in (
            "churn_rate",
            "different_content_fraction",
            "cdn_fraction",
            "split_hosting_fraction",
            "external_pool_fraction",
            "server_v6_impaired_fraction",
            "step_from_path_change_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")


@dataclass(frozen=True)
class AdoptionConfig:
    """IPv6 adoption dynamics of the site population (Fig 1 / Fig 3a).

    Adoption probability is rank-dependent (top sites adopt more) and grows
    over time, with two step events: the IANA pool depletion announcement
    and World IPv6 Day.
    """

    #: baseline fraction of sites that are v6-accessible at round 0.
    base_adoption: float = 0.0025
    #: multiplier applied to adoption odds for each 10x improvement in rank.
    rank_decade_boost: float = 1.9
    #: per-round multiplicative organic growth of adoption probability.
    organic_growth: float = 1.005
    #: round index of the IANA depletion announcement and its jump factor.
    iana_depletion_round: int = 8
    iana_jump: float = 1.45
    #: round index of World IPv6 Day and its jump factor.
    world_ipv6_day_round: int = 26
    world_ipv6_day_jump: float = 1.5
    #: fraction of the most popular sites that participate in World IPv6 Day.
    w6d_participant_fraction: float = 0.4
    #: participant pool: sites with static popularity rank <= this fraction
    #: of the universe are eligible to participate.
    w6d_eligible_rank_fraction: float = 0.005
    #: fraction of participants that keep their AAAA after the event (most
    #: famously turned IPv6 off again the next day).
    w6d_retention: float = 0.3
    #: probability a participant provisioned its IPv6 presence well enough
    #: to offset a routing detour (drives Table 12's ~50% comparable DPs).
    w6d_good_v6_prob: float = 0.5

    def validate(self) -> None:
        if not 0.0 < self.base_adoption < 1.0:
            raise ConfigError("base_adoption must be in (0, 1)")
        if self.iana_depletion_round >= self.world_ipv6_day_round:
            raise ConfigError("IANA depletion must precede World IPv6 Day")


@dataclass(frozen=True)
class PerformanceConfig:
    """The data-plane throughput model.

    ``speed = server_base * server_efficiency(family) * path_factor * noise``
    with ``path_factor = 1 / (1 + hop_slowdown * (effective_hops - 1))``
    scaled by per-link qualities.  Calibrated so 1-2 hop paths land around
    40-110 kbytes/sec and 5+ hop paths around 15-35, matching the magnitude
    of Tables 7 and 9.
    """

    #: mean server base speed in kbytes/sec (at zero network cost).
    server_base_speed_mean: float = 95.0
    #: lognormal sigma of server base speeds.
    server_base_speed_sigma: float = 0.35
    #: per-hop harmonic slowdown coefficient.
    hop_slowdown: float = 0.45
    #: hop count beyond which added hops no longer slow a path down (the
    #: bottleneck link dominates end-to-end throughput past this point).
    hop_saturation: int = 7
    #: lognormal sigma of per-download measurement noise.
    measurement_noise_sigma: float = 0.06
    #: lognormal sigma of per-round (transient congestion) noise.
    round_noise_sigma: float = 0.04

    def validate(self) -> None:
        if self.server_base_speed_mean <= 0:
            raise ConfigError("server_base_speed_mean must be positive")
        if self.hop_slowdown < 0:
            raise ConfigError("hop_slowdown must be >= 0")
        if self.hop_saturation < 1:
            raise ConfigError("hop_saturation must be >= 1")


@dataclass(frozen=True)
class MonitorConfig:
    """Parameters of the monitoring tool (the paper's Fig 2 pipeline)."""

    #: maximum sites monitored in parallel (the paper caps at 25).
    max_concurrent: int = 25
    #: page-identity threshold: byte counts within this fraction are
    #: declared "identical" (the paper uses 6%).
    identity_threshold: float = 0.06
    #: confidence level of the download-time confidence interval.
    confidence: float = 0.95
    #: stopping rule: CI half-width must be within this fraction of the mean.
    ci_relative_width: float = 0.10
    #: bounds on the repeated-download loop within a round.
    min_downloads: int = 5
    max_downloads: int = 40
    #: minimum number of rounds of data for a site to be analysable.
    min_rounds: int = 12
    #: transient-failure retry budget: a DNS lookup or page download that
    #: fails is retried up to this many times before the phase gives up.
    max_retries: int = 3
    #: exponential-backoff schedule for retries: the k-th retry waits
    #: ``retry_initial_seconds * retry_backoff ** k`` simulated seconds.
    retry_initial_seconds: float = 1.0
    retry_backoff: float = 2.0

    def validate(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigError("max_concurrent must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError("confidence must be in (0, 1)")
        if not 0.0 < self.ci_relative_width < 1.0:
            raise ConfigError("ci_relative_width must be in (0, 1)")
        if self.min_downloads < 2:
            raise ConfigError("min_downloads must be >= 2 to form a CI")
        if self.max_downloads < self.min_downloads:
            raise ConfigError("max_downloads must be >= min_downloads")
        if not 0.0 < self.identity_threshold < 1.0:
            raise ConfigError("identity_threshold must be in (0, 1)")
        if self.min_rounds < 1:
            raise ConfigError(f"min_rounds must be >= 1, got {self.min_rounds}")
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_initial_seconds < 0:
            raise ConfigError(
                f"retry_initial_seconds must be >= 0, "
                f"got {self.retry_initial_seconds}"
            )
        if self.retry_backoff < 1.0:
            raise ConfigError(
                f"retry_backoff must be >= 1, got {self.retry_backoff}"
            )


@dataclass(frozen=True)
class AnalysisConfig:
    """Parameters of the analysis pipeline (Section 4 / 5 of the paper)."""

    #: comparable-performance band: |v6 - v4| / v4 <= this (paper: 10%).
    comparable_threshold: float = 0.10
    #: median filter length for step detection (paper: 11).
    median_filter_length: int = 11
    #: step magnitude threshold (paper: 30%).
    step_threshold: float = 0.30
    #: consecutive deviating samples to call a step (paper: 6).
    step_persistence: int = 6
    #: |slope| per round (relative to mean) above which a significant linear
    #: regression counts as a trend.
    trend_slope_threshold: float = 0.004
    #: p-value threshold for trend significance.
    trend_p_value: float = 0.01
    #: ASes with fewer sites than this are "small number of sites" (paper: <4).
    small_as_site_count: int = 4

    def validate(self) -> None:
        if self.median_filter_length % 2 != 1:
            raise ConfigError("median_filter_length must be odd")
        if not 0.0 < self.comparable_threshold < 1.0:
            raise ConfigError("comparable_threshold must be in (0, 1)")


@dataclass(frozen=True)
class Dns64Config:
    """NAT64/DNS64 transition deployment (off by default).

    With ``enabled`` False nothing anywhere in the pipeline changes: no
    AAAA is synthesized, no gateway AS is selected, no transition rows
    are recorded, and measured repositories stay bit-identical to the
    historical form.  Enabled, every configured vantage resolves through
    a DNS64 resolver: names with an A record but no AAAA get a
    synthesized AAAA inside ``64:ff9b::/96`` (RFC 6052/6147), and the
    resulting connections are routed through a NAT64 gateway AS whose
    translated path inherits the IPv4 leg plus a translation overhead
    (RFC 6146).
    """

    enabled: bool = False
    #: vantage names running a DNS64 resolver (empty = all vantages).
    vantage_names: tuple[str, ...] = ()
    #: NAT64 gateway ASes deployed in the topology.
    n_gateways: int = 2
    #: multiplicative throughput penalty of the stateful translator.
    translation_quality: float = 0.88

    def applies_to(self, vantage_name: str) -> bool:
        """Whether ``vantage_name`` resolves through DNS64."""
        if not self.enabled:
            return False
        return not self.vantage_names or vantage_name in self.vantage_names

    def validate(self) -> None:
        if self.n_gateways < 1:
            raise ConfigError("n_gateways must be >= 1")
        if not 0.0 < self.translation_quality <= 1.0:
            raise ConfigError(
                f"translation_quality must be in (0, 1], "
                f"got {self.translation_quality}"
            )


@dataclass(frozen=True)
class FaultConfig:
    """Deterministic fault injection (off by default: every rate is 0).

    Rates are per-decision probabilities; each decision (one lookup
    attempt, one download attempt, one tunnel-round, one AS-round) is
    drawn from its own named RNG stream derived from the master seed, so
    the failure schedule is identical for every vantage point, executor
    backend, and worker process.  With every rate at 0 no stream is ever
    consumed and measured results are bit-identical to a fault-free run.
    """

    #: probability that one A / AAAA lookup attempt times out.
    a_failure_rate: float = 0.0
    aaaa_failure_rate: float = 0.0
    #: simulated seconds burned by a timed-out lookup attempt.
    dns_timeout_seconds: float = 5.0
    #: probability that one page download attempt times out / is reset.
    server_timeout_rate: float = 0.0
    server_reset_rate: float = 0.0
    #: multiplier on the server fault rates for IPv6 downloads (untuned
    #: v6 stacks fail more often than the v4 path to the same content).
    v6_fault_multiplier: float = 1.0
    #: extra multiplier when the serving host is v6-impaired.
    impaired_fault_multiplier: float = 1.0
    #: simulated seconds burned by a timed-out / reset download attempt.
    timeout_seconds: float = 30.0
    reset_seconds: float = 1.0
    #: probability that a transition tunnel is down for one whole round
    #: (6to4 relays and brokers flap; the v6 destination goes dark).
    tunnel_breakage_rate: float = 0.0
    #: probability that an AS's links are degraded for one whole round,
    #: and the multiplicative throughput factor applied when they are.
    link_degradation_rate: float = 0.0
    link_degradation_factor: float = 0.5
    #: probability that a NAT64 gateway is unreachable for one whole
    #: round (synthesized-AAAA connects fail; monitors fall back per
    #: their retry policy).  Only observable with DNS64 enabled.
    nat64_outage_rate: float = 0.0

    @property
    def active(self) -> bool:
        """Whether any fault can ever fire (all-zero rates mean no)."""
        return any(
            rate > 0.0
            for rate in (
                self.a_failure_rate,
                self.aaaa_failure_rate,
                self.server_timeout_rate,
                self.server_reset_rate,
                self.tunnel_breakage_rate,
                self.link_degradation_rate,
                self.nat64_outage_rate,
            )
        )

    def validate(self) -> None:
        for name in (
            "a_failure_rate",
            "aaaa_failure_rate",
            "server_timeout_rate",
            "server_reset_rate",
            "tunnel_breakage_rate",
            "link_degradation_rate",
            "nat64_outage_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        if self.server_timeout_rate + self.server_reset_rate > 1.0:
            raise ConfigError(
                "server_timeout_rate + server_reset_rate must not exceed 1"
            )
        for name in ("v6_fault_multiplier", "impaired_fault_multiplier"):
            value = getattr(self, name)
            if value < 1.0:
                raise ConfigError(f"{name} must be >= 1, got {value}")
        for name in ("dns_timeout_seconds", "timeout_seconds", "reset_seconds"):
            value = getattr(self, name)
            if value < 0.0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if not 0.0 < self.link_degradation_factor <= 1.0:
            raise ConfigError(
                f"link_degradation_factor must be in (0, 1], "
                f"got {self.link_degradation_factor}"
            )


#: Execution backends understood by :mod:`repro.engine`.
EXECUTION_BACKENDS = ("serial", "process")


@dataclass(frozen=True)
class ExecutionConfig:
    """How a campaign's per-vantage shards are executed.

    Deliberately *not* part of :class:`ScenarioConfig`: the backend is an
    operational choice, never part of a scenario's identity — serial and
    process backends produce bit-identical repositories (the per-vantage
    RNG streams are isolated), so caches key on the scenario alone.
    """

    #: ``serial`` runs shards in-process; ``process`` fans them out to a
    #: :class:`concurrent.futures.ProcessPoolExecutor`.
    backend: str = "serial"
    #: worker-process count for the ``process`` backend (ignored by serial).
    jobs: int = 1
    #: how many times a shard that failed in a pool worker is resubmitted
    #: to the pool before degrading to a serial in-process run.
    shard_retries: int = 1

    def validate(self) -> None:
        if self.backend not in EXECUTION_BACKENDS:
            raise ConfigError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {EXECUTION_BACKENDS}"
            )
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.shard_retries < 0:
            raise ConfigError(
                f"shard_retries must be >= 0, got {self.shard_retries}"
            )

    @classmethod
    def from_env(cls) -> "ExecutionConfig":
        """Build from ``REPRO_BACKEND`` / ``REPRO_JOBS`` (defaults: serial/1)."""
        import os

        backend = os.environ.get("REPRO_BACKEND", "serial") or "serial"
        jobs_raw = os.environ.get("REPRO_JOBS", "") or "1"
        try:
            jobs = int(jobs_raw)
        except ValueError:
            raise ConfigError(f"REPRO_JOBS must be an integer, got {jobs_raw!r}")
        retries_raw = os.environ.get("REPRO_SHARD_RETRIES", "") or "1"
        try:
            shard_retries = int(retries_raw)
        except ValueError:
            raise ConfigError(
                f"REPRO_SHARD_RETRIES must be an integer, got {retries_raw!r}"
            )
        config = cls(backend=backend, jobs=jobs, shard_retries=shard_retries)
        config.validate()
        return config


@dataclass(frozen=True)
class CampaignConfig:
    """The shape of a monitoring campaign."""

    #: number of weekly monitoring rounds (the paper spans ~12 months).
    n_rounds: int = 40
    #: per-vantage cap on sites monitored per round (0 = no cap); lets tests
    #: and examples bound runtime without changing behaviour.
    max_sites_per_round: int = 0

    def validate(self) -> None:
        if self.n_rounds < 1:
            raise ConfigError("n_rounds must be >= 1")
        if self.max_sites_per_round < 0:
            raise ConfigError("max_sites_per_round must be >= 0")


@dataclass(frozen=True)
class ScenarioConfig:
    """Top-level scenario: one synthetic Internet plus one campaign."""

    seed: int = 20111206  # CoNEXT 2011 started December 6, 2011
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    dualstack: DualStackConfig = field(default_factory=DualStackConfig)
    sites: SiteConfig = field(default_factory=SiteConfig)
    adoption: AdoptionConfig = field(default_factory=AdoptionConfig)
    performance: PerformanceConfig = field(default_factory=PerformanceConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    dns64: Dns64Config = field(default_factory=Dns64Config)

    def validate(self) -> None:
        """Validate every sub-config; raises :class:`ConfigError` on issues."""
        self.topology.validate()
        self.dualstack.validate()
        self.sites.validate()
        self.adoption.validate()
        self.performance.validate()
        self.monitor.validate()
        self.analysis.validate()
        self.campaign.validate()
        self.faults.validate()
        self.dns64.validate()

    def scaled(self, factor: float) -> "ScenarioConfig":
        """Return a copy with the world size scaled by ``factor``.

        Scales AS counts and the site population; everything else is left
        untouched.  Useful for quick tests (factor < 1) and for stress
        benchmarks (factor > 1).
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        topo = replace(
            self.topology,
            n_tier1=max(2, round(self.topology.n_tier1 * min(factor, 1.0))),
            n_transit=max(4, round(self.topology.n_transit * factor)),
            n_stub=max(8, round(self.topology.n_stub * factor)),
            n_content=max(8, round(self.topology.n_content * factor)),
            n_cdn=max(1, round(self.topology.n_cdn * min(factor, 1.0))),
        )
        sites = replace(self.sites, n_sites=max(50, round(self.sites.n_sites * factor)))
        return replace(self, topology=topo, sites=sites)


def small_config(seed: int = 7, scale: float = 1.0) -> ScenarioConfig:
    """A deliberately small scenario for unit tests (seconds, not minutes).

    Adoption is boosted well above the paper's ~1% so the handful of
    monitored sites still yields a usable dual-stack population; the two
    adoption events are moved inside the shortened campaign window.
    ``scale`` multiplies the world size on top of the built-in 0.15
    shrink (``scale=1.0`` is the historical small config, bit-identical).
    """
    cfg = ScenarioConfig(seed=seed).scaled(0.15)
    cfg = replace(
        cfg,
        campaign=CampaignConfig(n_rounds=12),
        adoption=replace(
            cfg.adoption,
            base_adoption=0.04,
            iana_depletion_round=3,
            world_ipv6_day_round=8,
        ),
        monitor=replace(cfg.monitor, min_rounds=5),
    )
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    return cfg


def default_config(seed: int = 20111206, scale: float = 1.0) -> ScenarioConfig:
    """The reference scenario used by the experiments and benchmarks."""
    cfg = ScenarioConfig(seed=seed)
    if scale != 1.0:
        cfg = cfg.scaled(scale)
    return cfg
