"""repro — a reproduction of "Assessing IPv6 Through Web Access" (CoNEXT 2011).

The package builds a synthetic dual-stack Internet (AS topology, BGP,
DNS, web servers, CDNs, tunnels), reimplements the paper's monitoring
tool on top of it, and reruns the paper's full analysis: hypothesis H1
(the IPv6 and IPv4 data planes perform comparably on shared paths) and
hypothesis H2 (routing differences are the major cause of poorer IPv6
performance).

Quick start::

    from repro import build_world, run_campaign, default_config

    world = build_world(default_config().scaled(0.1))
    result = run_campaign(world)
"""

from .config import (
    AdoptionConfig,
    AnalysisConfig,
    CampaignConfig,
    DualStackConfig,
    ExecutionConfig,
    MonitorConfig,
    PerformanceConfig,
    ScenarioConfig,
    SiteConfig,
    TopologyConfig,
    default_config,
    small_config,
)
from .core import (
    CampaignResult,
    World,
    build_world,
    run_campaign,
    run_world_ipv6_day,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AdoptionConfig",
    "AnalysisConfig",
    "CampaignConfig",
    "DualStackConfig",
    "ExecutionConfig",
    "MonitorConfig",
    "PerformanceConfig",
    "ScenarioConfig",
    "SiteConfig",
    "TopologyConfig",
    "default_config",
    "small_config",
    "CampaignResult",
    "World",
    "build_world",
    "run_campaign",
    "run_world_ipv6_day",
    "ReproError",
    "__version__",
]
