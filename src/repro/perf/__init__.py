"""Benchmark + perf-regression subsystem (``repro bench``).

Standardized workloads over the pipeline's hot paths
(:mod:`repro.perf.workloads`), a schema'd ``BENCH_rounds.json`` report
(:mod:`repro.perf.bench`), and deterministic work-counter gates
(:mod:`repro.perf.regress`) that CI runs instead of flaky wall-clock
thresholds.  Wall-clock is always reported, never gated.
"""

from .bench import (
    DEFAULT_REPORT,
    DEFAULT_SCALE,
    DEFAULT_SEED,
    SCHEMA,
    read_report,
    render_comparison,
    render_report,
    run_bench,
    write_report,
)
from .regress import (
    GateResult,
    MIN_SERVE_CACHE_HIT_FRACTION,
    compare_reports,
    compare_serve_reports,
    evaluate_gates,
    evaluate_serve_gates,
    serve_wall_clock_deltas,
    wall_clock_deltas,
)
from .workloads import WORKLOADS, WorkloadResult

__all__ = [
    "DEFAULT_REPORT",
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "GateResult",
    "MIN_SERVE_CACHE_HIT_FRACTION",
    "SCHEMA",
    "WORKLOADS",
    "WorkloadResult",
    "compare_reports",
    "compare_serve_reports",
    "evaluate_gates",
    "evaluate_serve_gates",
    "serve_wall_clock_deltas",
    "read_report",
    "render_comparison",
    "render_report",
    "run_bench",
    "wall_clock_deltas",
    "write_report",
]
