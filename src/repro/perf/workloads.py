"""Standardized benchmark workloads over the measurement pipeline.

Each workload runs one well-bounded slice of the system — the campaign
round loop, the DNS phase, the fault plan, or the whole pipeline — under
tracing, and returns a :class:`WorkloadResult` carrying wall-clock time
plus the *deterministic work counters* (zone walks, endpoint/path
lookups, RNG constructions, samples).  Wall-clock is for the humans; the
counters are what the regression gate compares, because for a fixed
(seed, scale) they are exact integers stable across machines and Python
versions.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from .. import obs
from ..config import ExecutionConfig, small_config
from ..core import build_world, run_campaign
from ..experiments.scenario import build_contexts
from ..faults import FaultPlan, fault_preset
from ..net.addresses import AddressFamily

#: benchmarks always run in process (serial backend): the work counters
#: live in this process's registry, and a worker pool would scatter them.
_SERIAL = ExecutionConfig(backend="serial", jobs=1)

#: counters snapshot into every workload result (missing ones read 0).
WORK_COUNTERS = (
    "dns.zone_walks",
    "dns.cache_hits",
    "dns.cache_misses",
    "dns.dns64.synthesized",
    "dns.dns64.no_mapping",
    "faults.nat64_outages",
    "web.endpoint_lookups",
    "web.path_lookups",
    "web.sessions",
    "rng.constructions",
    "download.samples",
    "download.loops_converged",
    "download.loops_exhausted",
    "download.loops_gave_up",
    "monitor.sites_monitored",
    "monitor.sites_measured",
    "monitor.dual_stack",
    "bgp.route_computations",
    "data.query.scans",
    "data.query.rows_scanned",
    "data.query.index_hits",
    "data.query.groups_emitted",
    "data.columnar.encodes",
    "data.columnar.bin_encodes",
    "data.columnar.bin_decodes",
    "data.columnar.bin_digest_verified",
    "data.columnar.bin_table_decodes",
    "engine.store.bin_loads",
    "engine.store.bin_fallbacks",
    "observers.runs",
    "observers.reports",
    "observers.errors",
)


@dataclass
class WorkloadResult:
    """One workload's outcome: timings, work counters, derived ratios."""

    name: str
    wall_seconds: float
    counters: dict[str, float] = field(default_factory=dict)
    #: per-span-name totals for the spans the workload cares about.
    spans: dict[str, dict] = field(default_factory=dict)
    #: ratios computed from the counters (the gate-friendly view).
    derived: dict[str, float] = field(default_factory=dict)
    #: free-form extras (repository digest, decision counts, ...).
    meta: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "wall_seconds": self.wall_seconds,
            "counters": dict(self.counters),
            "spans": dict(self.spans),
            "derived": dict(self.derived),
            "meta": dict(self.meta),
        }


def _counter_value(name: str) -> float:
    metric = obs.get_registry().get(name)
    value = getattr(metric, "value", 0.0) if metric is not None else 0.0
    return float(value or 0.0)


def _snapshot_counters() -> dict[str, float]:
    return {name: _counter_value(name) for name in WORK_COUNTERS}


def _span_totals(*names: str) -> dict[str, dict]:
    tracer = obs.get_tracer()
    out: dict[str, dict] = {}
    for name in names:
        spans = tracer.completed(name)
        if spans:
            durations = [s.duration for s in spans]
            out[name] = {
                "count": len(spans),
                "total_s": sum(durations),
                "median_s": statistics.median(durations),
            }
    return out


def _loop_count(counters: dict[str, float]) -> float:
    return (
        counters["download.loops_converged"]
        + counters["download.loops_exhausted"]
        + counters["download.loops_gave_up"]
    )


def _campaign_derived(counters: dict[str, float], wall: float) -> dict[str, float]:
    """The gate ratios: per-site zone walks, per-loop lookups, throughput."""
    sites = counters["monitor.sites_monitored"]
    loops = _loop_count(counters)
    samples = counters["download.samples"]
    return {
        "zone_walks_per_site": counters["dns.zone_walks"] / sites if sites else 0.0,
        "endpoint_lookups_per_loop": (
            counters["web.endpoint_lookups"] / loops if loops else 0.0
        ),
        "path_lookups_per_loop": (
            counters["web.path_lookups"] / loops if loops else 0.0
        ),
        "rng_constructions_per_sample": (
            counters["rng.constructions"] / samples if samples else 0.0
        ),
        "samples_per_second": samples / wall if wall > 0 else 0.0,
    }


def round_loop(seed: int, scale: float) -> WorkloadResult:
    """The campaign round loop: build the world, run every round.

    This is the ~93%-of-wall-time path the optimization work targets;
    ``campaign.round`` span totals and the work counters both come back.
    """
    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    world = build_world(config)
    t0 = time.perf_counter()
    run_campaign(world, execution=_SERIAL)
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    return WorkloadResult(
        name="round_loop",
        wall_seconds=wall,
        counters=counters,
        spans=_span_totals("campaign.round", "campaign.run"),
        derived=_campaign_derived(counters, wall),
    )


def dns_phase(seed: int, scale: float) -> WorkloadResult:
    """The DNS phase alone: every site resolved for both families.

    Publishes the final round's records, then issues the monitor's
    A + AAAA query pair for every catalog site — the workload that
    exposes authoritative-walk and cache-accounting regressions.
    """
    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    world = build_world(config)
    final_round = config.campaign.n_rounds - 1
    env = world.environment_for(world.vantages[0])
    t0 = time.perf_counter()
    world.advance_to_round(final_round)
    now = world.clock.time_of_round(final_round)
    n_queries = 0
    for site in world.catalog.sites:
        env.resolver.query_both(site.name, now)
        n_queries += 2
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    walks = counters["dns.zone_walks"]
    return WorkloadResult(
        name="dns_phase",
        wall_seconds=wall,
        counters=counters,
        derived={
            "zone_walks_per_query": walks / n_queries if n_queries else 0.0,
            "queries_per_second": n_queries / wall if wall > 0 else 0.0,
        },
        meta={"n_queries": n_queries},
    )


#: fault-plan decisions per benchmark run (coordinates swept below).
FAULT_DECISIONS = 20_000


def fault_plan(seed: int, scale: float = 1.0) -> WorkloadResult:
    """The fault plan alone: a sweep of DNS and server fault decisions.

    ``scale`` sizes the sweep.  The gate counter is ``rng.constructions``:
    every decision must be a direct digest-derived uniform, never a
    ``random.Random`` construction.
    """
    obs.reset()
    obs.enable()
    plan = FaultPlan(fault_preset("heavy"), master_seed=seed)
    n = max(1, int(FAULT_DECISIONS * scale))
    t0 = time.perf_counter()
    for idx in range(n):
        site_id = idx % 977
        round_idx = idx % 13
        plan.dns_failure(f"site-{site_id}.example.", AddressFamily.IPV6,
                         round_idx, idx % 3)
        plan.server_fault(site_id, AddressFamily.IPV6, round_idx,
                          f"loop:{idx % 7}")
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    return WorkloadResult(
        name="fault_plan",
        wall_seconds=wall,
        counters=counters,
        derived={
            "decisions_per_second": (2 * n) / wall if wall > 0 else 0.0,
            "rng_constructions_per_decision": (
                counters["rng.constructions"] / (2 * n)
            ),
        },
        meta={"n_decisions": 2 * n},
    )


def end_to_end(seed: int, scale: float) -> WorkloadResult:
    """The whole pipeline: world, campaign, analysis, repository digest.

    The digest pins bit-identity: for the baseline (seed, scale) it must
    match the CI-pinned faults-off value no matter which caches fire.
    """
    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    t0 = time.perf_counter()
    world = build_world(config)
    result = run_campaign(world, execution=_SERIAL)
    build_contexts(config, result)
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    derived = _campaign_derived(counters, wall)
    return WorkloadResult(
        name="end_to_end",
        wall_seconds=wall,
        counters=counters,
        spans=_span_totals("campaign.round", "campaign.run", "world.build",
                           "analysis.contexts"),
        derived=derived,
        meta={"repository_digest": result.repository.content_digest()},
    )


def query(seed: int, scale: float) -> WorkloadResult:
    """The columnar query core over a full campaign's tables.

    Runs the analysis layer's exact query battery — dual-stack
    group-aggregate plus the per-site point lookups classification and
    screening issue — against every vantage's columnar view.  The gate
    counters are ``data.query.*``: scans, rows scanned, index hits, and
    groups emitted are exact integers for a fixed (seed, scale), and the
    index-hit fraction asserts the predicate pushdown stays wired in.
    """
    from ..data.columnar import columnar_view
    from ..data.query import (
        converged_speeds,
        dest_asn,
        dual_stack_sites,
        modal_as_path,
        path_change_rounds,
    )

    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    world = build_world(config)
    result = run_campaign(world, execution=_SERIAL)
    t0 = time.perf_counter()
    n_queries = 0
    n_sites = 0
    for _, db in result.repository.items():
        cdb = columnar_view(db)
        sites = dual_stack_sites(cdb)
        n_sites += len(sites)
        n_queries += 1
        for site_id in sites:
            for family in (AddressFamily.IPV4, AddressFamily.IPV6):
                converged_speeds(cdb, site_id, family)
                dest_asn(cdb, site_id, family)
                modal_as_path(cdb, site_id, family)
                path_change_rounds(cdb, site_id, family)
                n_queries += 4
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    scans = counters["data.query.scans"]
    return WorkloadResult(
        name="query",
        wall_seconds=wall,
        counters=counters,
        derived={
            "index_hit_fraction": (
                counters["data.query.index_hits"] / scans if scans else 0.0
            ),
            "rows_scanned_per_scan": (
                counters["data.query.rows_scanned"] / scans if scans else 0.0
            ),
            "queries_per_second": n_queries / wall if wall > 0 else 0.0,
        },
        meta={"n_queries": n_queries, "n_dual_stack_sites": n_sites},
    )


def observers(seed: int, scale: float) -> WorkloadResult:
    """The derived-metric observer panel over a full campaign.

    Runs every registered observer through the canonical runner and
    snapshots the ``observers.*`` counters plus the ``data.query.*``
    work the panel itself issued (deltas against a pre-panel snapshot,
    so the campaign's own query work doesn't blur the gate ratios).
    The report digests ride along in ``meta`` to pin bit-identity.
    """
    from ..data.columnar import ColumnarRepository
    from ..observers import run_panel

    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    world = build_world(config)
    result = run_campaign(world, execution=_SERIAL)
    columnar = ColumnarRepository.from_repository(result.repository)
    before = _snapshot_counters()
    t0 = time.perf_counter()
    reports = run_panel(columnar)
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    n_reports = len(reports)
    scans = counters["data.query.scans"] - before["data.query.scans"]
    rows = (
        counters["data.query.rows_scanned"] - before["data.query.rows_scanned"]
    )
    hits = counters["data.query.index_hits"] - before["data.query.index_hits"]
    return WorkloadResult(
        name="observers",
        wall_seconds=wall,
        counters=counters,
        spans=_span_totals("observers.run"),
        derived={
            "scans_per_observer": scans / n_reports if n_reports else 0.0,
            "rows_scanned_per_observer": rows / n_reports if n_reports else 0.0,
            "index_hit_fraction": hits / scans if scans else 0.0,
            "reports_per_second": n_reports / wall if wall > 0 else 0.0,
        },
        meta={
            "n_reports": n_reports,
            "report_digests": {
                name: reports[name].digest for name in sorted(reports)
            },
        },
    )


def dns64(seed: int, scale: float) -> WorkloadResult:
    """The NAT64/DNS64 transition axis end to end.

    Runs the campaign with DNS64 enabled — every v4-only site answers
    AAAA queries with a synthesized ``64:ff9b::/96`` address and is
    fetched through the translated forwarding path — then replays the
    query battery over the transitions-bearing columnar views.  The
    gates assert the axis actually engaged (nonzero synthesis counters,
    transitions recorded) and that the extra table leaves the query
    core's index-hit fraction at the plain-campaign floor.
    """
    import dataclasses

    from ..data.columnar import columnar_view
    from ..data.query import (
        converged_speeds,
        dest_asn,
        dual_stack_sites,
        modal_as_path,
        path_change_rounds,
    )

    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    config = dataclasses.replace(
        config, dns64=dataclasses.replace(config.dns64, enabled=True)
    )
    world = build_world(config)
    t0 = time.perf_counter()
    result = run_campaign(world, execution=_SERIAL)
    n_transitions = 0
    n_translated = 0
    n_queries = 0
    for _, db in result.repository.items():
        n_transitions += len(db.transitions)
        n_translated += db.transition_counts().get("translated", 0)
        cdb = columnar_view(db)
        for site_id in dual_stack_sites(cdb):
            for family in (AddressFamily.IPV4, AddressFamily.IPV6):
                converged_speeds(cdb, site_id, family)
                dest_asn(cdb, site_id, family)
                modal_as_path(cdb, site_id, family)
                path_change_rounds(cdb, site_id, family)
                n_queries += 4
    wall = time.perf_counter() - t0
    counters = _snapshot_counters()
    scans = counters["data.query.scans"]
    return WorkloadResult(
        name="dns64",
        wall_seconds=wall,
        counters=counters,
        spans=_span_totals("campaign.round", "campaign.run"),
        derived={
            "index_hit_fraction": (
                counters["data.query.index_hits"] / scans if scans else 0.0
            ),
            "translated_share": (
                n_translated / n_transitions if n_transitions else 0.0
            ),
            "synthesized_per_transition": (
                counters["dns.dns64.synthesized"] / n_transitions
                if n_transitions
                else 0.0
            ),
        },
        meta={
            "n_transitions": n_transitions,
            "n_translated": n_translated,
            "n_queries": n_queries,
            "repository_digest": result.repository.content_digest(),
        },
    )


#: timed loads per decoder in the ``store_io`` workload (fixed, so the
#: store/columnar counters stay exact integers for a given campaign).
STORE_IO_LOADS = 3


def store_io(seed: int, scale: float) -> WorkloadResult:
    """Columnar artifact encode/decode/first-query over a real store entry.

    Saves one campaign into a throwaway :class:`CampaignStore` (both
    ``columnar.json`` and ``columnar.bin``), then times a fixed number of
    cold loads through each decoder and the first query battery over the
    binary-backed (lazily decoded) repository.  The structural gates are
    counter-exact: every binary load must verify its content digest and
    none may fall back to JSON; ``decode_speedup`` (JSON load wall over
    binary load wall) is the informational headline.
    """
    import pathlib
    import tempfile

    from ..data.query import dual_stack_sites
    from ..engine.store import CampaignStore, config_digest

    obs.reset()
    obs.enable()
    config = small_config(seed=seed, scale=scale)
    world = build_world(config)
    result = run_campaign(world, execution=_SERIAL)
    with tempfile.TemporaryDirectory(prefix="repro-store-io-") as tmp:
        store = CampaignStore(pathlib.Path(tmp))
        t0 = time.perf_counter()
        store.save(config, result.repository, result.reports)
        save_seconds = time.perf_counter() - t0
        digest = config_digest(config)
        entry = store.entry_dir(digest)
        sizes = {
            name: (entry / name).stat().st_size
            for name in ("columnar.bin", "columnar.json")
        }

        bin_times = []
        columnar = None
        for _ in range(STORE_IO_LOADS):
            t0 = time.perf_counter()
            loaded = store.load_columnar_entry(digest)
            bin_times.append(time.perf_counter() - t0)
            _, columnar = loaded
        # first query battery over the last (still lazy) binary load
        t0 = time.perf_counter()
        n_sites = sum(
            len(dual_stack_sites(cdb)) for cdb in columnar.databases.values()
        )
        first_query_seconds = time.perf_counter() - t0

        json_times = []
        for _ in range(STORE_IO_LOADS):
            t0 = time.perf_counter()
            store.load_columnar_entry(digest, prefer_binary=False)
            json_times.append(time.perf_counter() - t0)

    wall = save_seconds + sum(bin_times) + sum(json_times) + first_query_seconds
    counters = _snapshot_counters()
    bin_load = min(bin_times)
    json_load = min(json_times)
    return WorkloadResult(
        name="store_io",
        wall_seconds=wall,
        counters=counters,
        spans=_span_totals("engine.store.save", "engine.store.load_columnar"),
        derived={
            "save_seconds": save_seconds,
            "bin_load_seconds": bin_load,
            "json_load_seconds": json_load,
            "first_query_seconds": first_query_seconds,
            "decode_speedup": json_load / bin_load if bin_load > 0 else 0.0,
        },
        meta={
            "n_loads_per_decoder": STORE_IO_LOADS,
            "bin_bytes": sizes["columnar.bin"],
            "json_bytes": sizes["columnar.json"],
            "n_dual_stack_sites": n_sites,
        },
    )


#: name -> callable(seed, scale); the bench CLI's workload registry.
WORKLOADS = {
    "round_loop": round_loop,
    "dns_phase": dns_phase,
    "fault_plan": fault_plan,
    "end_to_end": end_to_end,
    "query": query,
    "observers": observers,
    "store_io": store_io,
    "dns64": dns64,
}
