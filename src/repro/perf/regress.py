"""Deterministic perf-regression gates.

Wall-clock on shared CI runners is noise; the gates here are exact
arithmetic over the work counters a :mod:`repro.perf.workloads` run
snapshots.  Two layers:

* :func:`evaluate_gates` — structural invariants with hard bounds
  (zone walks per site, endpoint/path lookups per download loop, RNG
  constructions per fault decision).  These encode the optimization
  contract directly and hold at any (seed, scale).
* :func:`compare_reports` — exact counter equality against a checked-in
  baseline report of the same configuration; wall-clock deltas ride
  along as information for the humans, never as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass

#: hard bounds for the structural gates.  Pre-optimization the round loop
#: walked the zones ~2.89 times per monitored site and resolved the
#: endpoint/path once per *sample* (~5+ per loop); the bounds assert the
#: optimized shape with a little slack for config-shape variation, not
#: for regressions.
MAX_ZONE_WALKS_PER_SITE = 1.5
MAX_ENDPOINT_LOOKUPS_PER_LOOP = 1.25
MAX_RNG_CONSTRUCTIONS_PER_DECISION = 0.0
#: the query battery is point lookups (indexable) plus one group
#: aggregate per vantage; pushdown must cover nearly every scan.
MIN_INDEX_HIT_FRACTION = 0.95
#: the observer panel mixes point lookups with a handful of deliberate
#: full-table scans (per-round series), so its floor sits a bit lower.
MIN_OBSERVER_INDEX_HIT_FRACTION = 0.90
#: each observer may read the campaign a bounded constant number of
#: times; the unit is download loops (~downloads-table rows), which makes
#: the bound scale-free.  Measured shape: ~2.0 rows per loop per observer.
MAX_OBSERVER_ROWS_PER_LOOP = 4.0
#: a Zipf-skewed mix repeats its head templates constantly, so the
#: response cache must answer at least this fraction of lookups; the
#: quota-based mix guarantees hits = n_requests - templates_touched, so
#: the floor holds deterministically at the smoke configuration and up.
MIN_SERVE_CACHE_HIT_FRACTION = 0.5


@dataclass(frozen=True)
class GateResult:
    """One gate's verdict: what was checked, observed, and required."""

    workload: str
    gate: str
    passed: bool
    observed: float
    bound: str

    def render(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (
            f"[{status}] {self.workload}.{self.gate}: "
            f"observed {self.observed:g}, require {self.bound}"
        )


def _workload(report: dict, name: str) -> dict | None:
    return report.get("workloads", {}).get(name)


def evaluate_gates(report: dict) -> list[GateResult]:
    """Run every applicable structural gate over a bench report."""
    results: list[GateResult] = []

    for name in ("round_loop", "end_to_end"):
        data = _workload(report, name)
        if data is None:
            continue
        counters = data["counters"]
        derived = data["derived"]
        results.append(
            GateResult(
                workload=name,
                gate="zone_walks_per_site",
                passed=derived["zone_walks_per_site"] <= MAX_ZONE_WALKS_PER_SITE,
                observed=derived["zone_walks_per_site"],
                bound=f"<= {MAX_ZONE_WALKS_PER_SITE}",
            )
        )
        results.append(
            GateResult(
                workload=name,
                gate="endpoint_lookups_per_loop",
                passed=(
                    derived["endpoint_lookups_per_loop"]
                    <= MAX_ENDPOINT_LOOKUPS_PER_LOOP
                ),
                observed=derived["endpoint_lookups_per_loop"],
                bound=f"<= {MAX_ENDPOINT_LOOKUPS_PER_LOOP}",
            )
        )
        results.append(
            GateResult(
                workload=name,
                gate="endpoint_equals_path_lookups",
                passed=(
                    counters["web.endpoint_lookups"]
                    == counters["web.path_lookups"]
                ),
                observed=(
                    counters["web.endpoint_lookups"]
                    - counters["web.path_lookups"]
                ),
                bound="== 0 (every open does exactly one of each)",
            )
        )
        results.append(
            GateResult(
                workload=name,
                gate="sessions_bounded_by_dual_stack",
                passed=(
                    counters["web.sessions"]
                    <= 2 * counters["monitor.dual_stack"]
                ),
                observed=counters["web.sessions"],
                bound=f"<= {2 * counters['monitor.dual_stack']:g} "
                      "(2 per dual-stack site-round)",
            )
        )
        results.append(
            GateResult(
                workload=name,
                gate="dns_cache_hits_nonzero",
                passed=counters["dns.cache_hits"] > 0,
                observed=counters["dns.cache_hits"],
                bound="> 0 (second family answered from cache)",
            )
        )

    data = _workload(report, "dns_phase")
    if data is not None:
        walks_per_query = data["derived"]["zone_walks_per_query"]
        results.append(
            GateResult(
                workload="dns_phase",
                gate="zone_walks_per_query",
                passed=walks_per_query <= 0.75,
                observed=walks_per_query,
                bound="<= 0.75 (one walk answers both families)",
            )
        )

    data = _workload(report, "query")
    if data is not None:
        counters = data["counters"]
        hit_fraction = data["derived"]["index_hit_fraction"]
        results.append(
            GateResult(
                workload="query",
                gate="index_hit_fraction",
                passed=hit_fraction >= MIN_INDEX_HIT_FRACTION,
                observed=hit_fraction,
                bound=f">= {MIN_INDEX_HIT_FRACTION} (pushdown stays wired in)",
            )
        )
        results.append(
            GateResult(
                workload="query",
                gate="groups_emitted_nonzero",
                passed=counters["data.query.groups_emitted"] > 0,
                observed=counters["data.query.groups_emitted"],
                bound="> 0 (the dual-stack group-aggregate ran)",
            )
        )
        encodes = counters["data.columnar.encodes"]
        scans = counters["data.query.scans"]
        results.append(
            GateResult(
                workload="query",
                gate="columnar_view_memoized",
                passed=0 < encodes <= scans / 50 if scans else False,
                observed=encodes,
                bound=f"in 1..{scans / 50:g} (one encode per vantage, "
                      "reused across the whole battery)",
            )
        )

    data = _workload(report, "observers")
    if data is not None:
        counters = data["counters"]
        derived = data["derived"]
        hit_fraction = derived["index_hit_fraction"]
        results.append(
            GateResult(
                workload="observers",
                gate="index_hit_fraction",
                passed=hit_fraction >= MIN_OBSERVER_INDEX_HIT_FRACTION,
                observed=hit_fraction,
                bound=f">= {MIN_OBSERVER_INDEX_HIT_FRACTION} "
                      "(point lookups keep the pushdown)",
            )
        )
        loops = (
            counters["download.loops_converged"]
            + counters["download.loops_exhausted"]
            + counters["download.loops_gave_up"]
        )
        rows_per_observer = derived["rows_scanned_per_observer"]
        bound = MAX_OBSERVER_ROWS_PER_LOOP * loops
        results.append(
            GateResult(
                workload="observers",
                gate="rows_scanned_per_observer",
                passed=rows_per_observer <= bound if loops else False,
                observed=rows_per_observer,
                bound=f"<= {bound:g} ({MAX_OBSERVER_ROWS_PER_LOOP:g} rows "
                      "per download loop per observer)",
            )
        )
        results.append(
            GateResult(
                workload="observers",
                gate="observer_errors",
                passed=counters["observers.errors"] == 0,
                observed=counters["observers.errors"],
                bound="== 0 (no observer raised)",
            )
        )
        results.append(
            GateResult(
                workload="observers",
                gate="every_run_reported",
                passed=(
                    counters["observers.reports"] == counters["observers.runs"]
                    and counters["observers.runs"] > 0
                ),
                observed=counters["observers.reports"],
                bound=f"== {counters['observers.runs']:g} (runs) and > 0",
            )
        )

    data = _workload(report, "store_io")
    if data is not None:
        counters = data["counters"]
        results.append(
            GateResult(
                workload="store_io",
                gate="zero_bin_fallbacks",
                passed=counters["engine.store.bin_fallbacks"] == 0,
                observed=counters["engine.store.bin_fallbacks"],
                bound="== 0 (no binary load fell back to JSON)",
            )
        )
        results.append(
            GateResult(
                workload="store_io",
                gate="bin_loads_nonzero",
                passed=counters["engine.store.bin_loads"] > 0,
                observed=counters["engine.store.bin_loads"],
                bound="> 0 (the preferred path serves from columnar.bin)",
            )
        )
        decodes = counters["data.columnar.bin_decodes"]
        verified = counters["data.columnar.bin_digest_verified"]
        results.append(
            GateResult(
                workload="store_io",
                gate="digest_verified_every_load",
                passed=decodes > 0 and verified == decodes,
                observed=verified,
                bound=f"== {decodes:g} (decodes) and > 0 "
                      "(sha256 checked before any buffer is trusted)",
            )
        )

    data = _workload(report, "dns64")
    if data is not None:
        counters = data["counters"]
        derived = data["derived"]
        meta = data.get("meta", {})
        results.append(
            GateResult(
                workload="dns64",
                gate="synthesized_nonzero",
                passed=counters["dns.dns64.synthesized"] > 0,
                observed=counters["dns.dns64.synthesized"],
                bound="> 0 (DNS64 actually synthesized AAAA answers)",
            )
        )
        results.append(
            GateResult(
                workload="dns64",
                gate="transitions_recorded",
                passed=meta.get("n_transitions", 0) > 0,
                observed=meta.get("n_transitions", 0),
                bound="> 0 (the monitor recorded per-site transitions)",
            )
        )
        results.append(
            GateResult(
                workload="dns64",
                gate="translated_share_nonzero",
                passed=derived["translated_share"] > 0,
                observed=derived["translated_share"],
                bound="> 0 (some sites were reached through NAT64)",
            )
        )
        results.append(
            GateResult(
                workload="dns64",
                gate="index_hit_fraction",
                passed=derived["index_hit_fraction"] >= MIN_INDEX_HIT_FRACTION,
                observed=derived["index_hit_fraction"],
                bound=f">= {MIN_INDEX_HIT_FRACTION} (the transitions table "
                      "does not degrade pushdown)",
            )
        )
        results.append(
            GateResult(
                workload="dns64",
                gate="no_nat64_outages_faults_off",
                passed=counters["faults.nat64_outages"] == 0,
                observed=counters["faults.nat64_outages"],
                bound="== 0 (outages only under a fault preset)",
            )
        )

    data = _workload(report, "fault_plan")
    if data is not None:
        per_decision = data["derived"]["rng_constructions_per_decision"]
        results.append(
            GateResult(
                workload="fault_plan",
                gate="rng_constructions_per_decision",
                passed=per_decision <= MAX_RNG_CONSTRUCTIONS_PER_DECISION,
                observed=per_decision,
                bound=f"<= {MAX_RNG_CONSTRUCTIONS_PER_DECISION:g} "
                      "(digest uniforms, no generator objects)",
            )
        )

    return results


def _meta_matches(report: dict, baseline: dict) -> bool:
    keys = ("seed", "scale")
    rm, bm = report.get("meta", {}), baseline.get("meta", {})
    return all(rm.get(k) == bm.get(k) for k in keys)


def compare_reports(report: dict, baseline: dict) -> list[GateResult]:
    """Exact work-counter comparison against a baseline bench report.

    Only valid for matching (seed, scale); a configuration mismatch is
    itself reported as a failed gate rather than silently comparing
    apples to oranges.  Wall-clock is deliberately not compared.
    """
    results: list[GateResult] = []
    if not _meta_matches(report, baseline):
        results.append(
            GateResult(
                workload="report",
                gate="baseline_config_matches",
                passed=False,
                observed=0.0,
                bound=(
                    f"meta {report.get('meta')} vs baseline "
                    f"{baseline.get('meta')}"
                ),
            )
        )
        return results
    for name, base_data in baseline.get("workloads", {}).items():
        data = _workload(report, name)
        if data is None:
            results.append(
                GateResult(
                    workload=name,
                    gate="present",
                    passed=False,
                    observed=0.0,
                    bound="workload missing from report",
                )
            )
            continue
        for counter, base_value in base_data.get("counters", {}).items():
            value = data["counters"].get(counter, 0.0)
            results.append(
                GateResult(
                    workload=name,
                    gate=f"counter:{counter}",
                    passed=value == base_value,
                    observed=value,
                    bound=f"== {base_value:g}",
                )
            )
        base_reports = base_data.get("meta", {}).get("report_digests")
        if base_reports is not None:
            report_digests = data.get("meta", {}).get("report_digests")
            for observer, base_value in base_reports.items():
                value = (report_digests or {}).get(observer)
                results.append(
                    GateResult(
                        workload=name,
                        gate=f"report_digest:{observer}",
                        passed=value == base_value,
                        observed=float(value == base_value),
                        bound=f"== {base_value[:12]}…",
                    )
                )
        base_digest = base_data.get("meta", {}).get("repository_digest")
        if base_digest is not None:
            digest = data.get("meta", {}).get("repository_digest")
            results.append(
                GateResult(
                    workload=name,
                    gate="repository_digest",
                    passed=digest == base_digest,
                    observed=float(digest == base_digest),
                    bound=f"== {base_digest[:12]}…",
                )
            )
    return results


def evaluate_serve_gates(report: dict) -> list[GateResult]:
    """Structural gates over a ``BENCH_serve.json`` loadtest report.

    Everything here is deterministic for a healthy server: the error
    counts and parity verdicts are exact, and the cache-hit floor holds
    by construction of the quota-based Zipf mix.  Latency and throughput
    are *never* gated — they are the informational payload.
    """
    errors = report.get("errors", {})
    parity = report.get("parity", {})
    cache = report.get("cache", {})
    mix = report.get("mix", {})
    results = [
        GateResult(
            workload="loadtest",
            gate="zero_5xx",
            passed=errors.get("n_5xx", 1) == 0,
            observed=errors.get("n_5xx", 1),
            bound="== 0 (no internal errors under load)",
        ),
        GateResult(
            workload="loadtest",
            gate="zero_4xx",
            passed=errors.get("n_4xx", 1) == 0,
            observed=errors.get("n_4xx", 1),
            bound="== 0 (every mix template is a valid request)",
        ),
        GateResult(
            workload="loadtest",
            gate="zero_transport_errors",
            passed=errors.get("n_transport", 1) == 0,
            observed=errors.get("n_transport", 1),
            bound="== 0 (no dropped/failed connections)",
        ),
        GateResult(
            workload="loadtest",
            gate="byte_parity",
            passed=(
                parity.get("mismatched", 1) == 0
                and parity.get("sampled", 0) > 0
            ),
            observed=parity.get("mismatched", 1),
            bound="== 0 mismatches over > 0 sampled responses",
        ),
        GateResult(
            workload="loadtest",
            gate="cache_hit_fraction",
            passed=cache.get("hit_fraction", 0.0)
            >= MIN_SERVE_CACHE_HIT_FRACTION,
            observed=cache.get("hit_fraction", 0.0),
            bound=f">= {MIN_SERVE_CACHE_HIT_FRACTION} "
            "(the Zipf head is served from the response cache)",
        ),
        GateResult(
            workload="loadtest",
            gate="mix_digest_sealed",
            passed=len(mix.get("digest", "")) == 64,
            observed=float(len(mix.get("digest", ""))),
            bound="== 64 hex chars (the mix is content-addressed)",
        ),
    ]
    return results


#: serve-report meta fields that must match for a baseline comparison
#: to be meaningful (they pin the mix generator's inputs).
_SERVE_META_KEYS = ("seed", "zipf_s", "n_requests", "clients")


def compare_serve_reports(report: dict, baseline: dict) -> list[GateResult]:
    """Deterministic comparison against a checked-in ``BENCH_serve.json``.

    Latency and throughput are machine-dependent and deliberately not
    compared; what must match is everything the seeded generator and a
    correct server fully determine — the mix digest and per-kind request
    counts, and the all-zero error block.
    """
    results: list[GateResult] = []
    rm, bm = report.get("meta", {}), baseline.get("meta", {})
    meta_ok = all(rm.get(k) == bm.get(k) for k in _SERVE_META_KEYS)
    results.append(
        GateResult(
            workload="loadtest",
            gate="baseline_config_matches",
            passed=meta_ok,
            observed=float(meta_ok),
            bound=f"meta keys {_SERVE_META_KEYS} equal "
            f"({ {k: rm.get(k) for k in _SERVE_META_KEYS} } vs "
            f"{ {k: bm.get(k) for k in _SERVE_META_KEYS} })",
        )
    )
    if not meta_ok:
        return results
    results.append(
        GateResult(
            workload="loadtest",
            gate="mix_digest",
            passed=report.get("mix", {}).get("digest")
            == baseline.get("mix", {}).get("digest"),
            observed=float(
                report.get("mix", {}).get("digest")
                == baseline.get("mix", {}).get("digest")
            ),
            bound=f"== {str(baseline.get('mix', {}).get('digest'))[:12]}… "
            "(same seed ⇒ same request sequence)",
        )
    )
    base_kinds = baseline.get("mix", {}).get("kinds", {})
    kinds = report.get("mix", {}).get("kinds", {})
    results.append(
        GateResult(
            workload="loadtest",
            gate="mix_kinds",
            passed=kinds == base_kinds,
            observed=float(kinds == base_kinds),
            bound=f"== {base_kinds}",
        )
    )
    for key in ("n_5xx", "n_4xx", "n_transport"):
        base_value = baseline.get("errors", {}).get(key, 0)
        value = report.get("errors", {}).get(key, -1)
        results.append(
            GateResult(
                workload="loadtest",
                gate=f"errors:{key}",
                passed=value == base_value == 0,
                observed=value,
                bound="== 0 (baseline and current)",
            )
        )
    return results


def serve_wall_clock_deltas(report: dict, baseline: dict) -> list[str]:
    """Informational latency/throughput lines vs the checked-in report."""
    lines = []
    base_latency = baseline.get("latency_ms", {})
    latency = report.get("latency_ms", {})
    for key in ("p50", "p95", "p99"):
        if key in latency and key in base_latency:
            lines.append(
                f"latency {key}: {latency[key]:.2f}ms vs baseline "
                f"{base_latency[key]:.2f}ms (informational)"
            )
    base_rps = baseline.get("throughput_rps", 0.0)
    rps = report.get("throughput_rps", 0.0)
    if base_rps:
        lines.append(
            f"throughput: {rps:.1f} rps vs baseline {base_rps:.1f} rps "
            f"({rps / base_rps:.2f}x, informational)"
        )
    return lines


def wall_clock_deltas(report: dict, baseline: dict) -> list[str]:
    """Informational wall-clock comparison lines (never gate failures)."""
    lines = []
    for name, base_data in baseline.get("workloads", {}).items():
        data = _workload(report, name)
        if data is None:
            continue
        base_wall = base_data.get("wall_seconds", 0.0)
        wall = data.get("wall_seconds", 0.0)
        if base_wall > 0:
            ratio = wall / base_wall
            lines.append(
                f"{name}: {wall:.3f}s vs baseline {base_wall:.3f}s "
                f"({ratio:.2f}x, informational)"
            )
    return lines
