"""Bench orchestration: run workloads, build/write ``BENCH_rounds.json``.

The report layout (schema ``repro.perf/1``) mirrors ``repro.obs``'s
``BENCH_*.json`` trajectory convention: a flat JSON object checked into
the repository so successive PRs diff the perf trajectory in review.
Work counters are the contract; wall-clock rides along for the humans.
"""

from __future__ import annotations

import json
import pathlib

from .workloads import WORKLOADS, WorkloadResult

#: report schema identifier (bump on incompatible layout changes).
SCHEMA = "repro.perf/1"

#: default on-disk location of the checked-in baseline.
DEFAULT_REPORT = "BENCH_rounds.json"

#: the default benchmark configuration (kept CI-affordable; EXPERIMENTS.md
#: records full-scale numbers measured with ``--scale 1.0``).
DEFAULT_SEED = 11
DEFAULT_SCALE = 0.1


def run_bench(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workloads: list[str] | None = None,
) -> dict:
    """Run the named workloads (default: all) and build the report."""
    names = list(workloads) if workloads else list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; expected {sorted(WORKLOADS)}"
        )
    results: dict[str, WorkloadResult] = {}
    for name in names:
        results[name] = WORKLOADS[name](seed, scale)
    return {
        "bench": "rounds",
        "schema": SCHEMA,
        "meta": {"seed": seed, "scale": scale},
        "workloads": {name: r.as_dict() for name, r in results.items()},
    }


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return out


def read_report(path: str | pathlib.Path) -> dict:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def render_report(report: dict) -> str:
    """Fixed-width workload summary for terminal display."""
    lines = [
        f"bench {report['bench']} "
        f"(seed {report['meta']['seed']}, scale {report['meta']['scale']})"
    ]
    lines.append(
        f"{'workload':<12} {'wall_s':>8} {'zone walks':>11} "
        f"{'lookups':>8} {'sessions':>9} {'samples':>8} {'rng ctor':>9}"
    )
    for name, data in report["workloads"].items():
        counters = data["counters"]
        lines.append(
            f"{name:<12} {data['wall_seconds']:>8.3f} "
            f"{counters['dns.zone_walks']:>11.0f} "
            f"{counters['web.endpoint_lookups']:>8.0f} "
            f"{counters['web.sessions']:>9.0f} "
            f"{counters['download.samples']:>8.0f} "
            f"{counters['rng.constructions']:>9.0f}"
        )
        for key, value in sorted(data["derived"].items()):
            lines.append(f"    {key} = {value:g}")
        digest = data.get("meta", {}).get("repository_digest")
        if digest:
            lines.append(f"    repository_digest = {digest}")
    return "\n".join(lines)
