"""Bench orchestration: run workloads, build/write ``BENCH_rounds.json``.

The report layout (schema ``repro.perf/1``) mirrors ``repro.obs``'s
``BENCH_*.json`` trajectory convention: a flat JSON object checked into
the repository so successive PRs diff the perf trajectory in review.
Work counters are the contract; wall-clock rides along for the humans.
"""

from __future__ import annotations

import json
import pathlib

from .workloads import WORKLOADS, WorkloadResult

#: report schema identifier (bump on incompatible layout changes).
SCHEMA = "repro.perf/1"

#: default on-disk location of the checked-in baseline.
DEFAULT_REPORT = "BENCH_rounds.json"

#: the default benchmark configuration (kept CI-affordable; EXPERIMENTS.md
#: records full-scale numbers measured with ``--scale 1.0``).
DEFAULT_SEED = 11
DEFAULT_SCALE = 0.1


def run_bench(
    seed: int = DEFAULT_SEED,
    scale: float = DEFAULT_SCALE,
    workloads: list[str] | None = None,
) -> dict:
    """Run the named workloads (default: all) and build the report."""
    names = list(workloads) if workloads else list(WORKLOADS)
    unknown = [n for n in names if n not in WORKLOADS]
    if unknown:
        raise ValueError(
            f"unknown workloads {unknown}; expected {sorted(WORKLOADS)}"
        )
    results: dict[str, WorkloadResult] = {}
    for name in names:
        results[name] = WORKLOADS[name](seed, scale)
    return {
        "bench": "rounds",
        "schema": SCHEMA,
        "meta": {"seed": seed, "scale": scale},
        "workloads": {name: r.as_dict() for name, r in results.items()},
    }


def write_report(report: dict, path: str | pathlib.Path) -> pathlib.Path:
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return out


def read_report(path: str | pathlib.Path) -> dict:
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def _median_span_seconds(data: dict) -> tuple[str, float] | None:
    """Best per-iteration latency estimate a workload dict offers.

    Prefers the recorded ``median_s`` of the workload's most-repeated
    span (``campaign.round`` for the round workloads — the hot path the
    refactors target — rather than the once-per-run wrapper spans);
    older reports written before medians were recorded fall back to
    ``total_s / count``, so ``--compare`` still works against them.
    """
    spans = data.get("spans") or {}
    best = None
    for name, span in spans.items():
        count = span.get("count") or 1
        total = span.get("total_s", 0.0)
        if best is None or (count, total) > (best[2], best[3]):
            median = span.get("median_s", total / count)
            best = (name, median, count, total)
    if best is None:
        return None
    return best[0], best[1]


def render_comparison(old: dict, new: dict) -> str:
    """One-line-per-workload speedup summary of ``new`` against ``old``.

    Leads with the median per-iteration latency of the dominant span
    (``old/new`` — >1 is a speedup), then wall-clock, then whichever
    work counters moved.  Counter deltas are the part reviewers should
    read first: wall-clock is machine noise, counters are the contract.
    """
    lines = [
        "comparison vs baseline "
        f"(seed {old['meta']['seed']}, scale {old['meta']['scale']})"
    ]
    old_meta, new_meta = old["meta"], new["meta"]
    if (old_meta["seed"], old_meta["scale"]) != (
        new_meta["seed"],
        new_meta["scale"],
    ):
        lines.append(
            f"  WARNING: configs differ (baseline seed {old_meta['seed']} "
            f"scale {old_meta['scale']} vs seed {new_meta['seed']} "
            f"scale {new_meta['scale']}); ratios are not like-for-like"
        )
    for name, new_data in new["workloads"].items():
        old_data = old["workloads"].get(name)
        if old_data is None:
            lines.append(f"{name:<12} (no baseline entry)")
            continue
        parts = []
        old_span = _median_span_seconds(old_data)
        new_span = _median_span_seconds(new_data)
        if old_span and new_span and new_span[1] > 0:
            span_name = new_span[0]
            parts.append(
                f"{span_name} median {old_span[1] * 1e3:.1f}ms -> "
                f"{new_span[1] * 1e3:.1f}ms "
                f"({old_span[1] / new_span[1]:.2f}x)"
            )
        old_wall, new_wall = old_data["wall_seconds"], new_data["wall_seconds"]
        if new_wall > 0:
            parts.append(
                f"wall {old_wall:.2f}s -> {new_wall:.2f}s "
                f"({old_wall / new_wall:.2f}x)"
            )
        lines.append(f"{name:<12} " + ", ".join(parts))
        deltas = [
            f"{key} {old_value:g} -> {new_value:g}"
            for key, old_value in sorted(old_data["counters"].items())
            if (new_value := new_data["counters"].get(key, 0.0)) != old_value
        ]
        if deltas:
            lines.append("    counters: " + "; ".join(deltas))
        else:
            lines.append("    counters: unchanged")
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Fixed-width workload summary for terminal display."""
    lines = [
        f"bench {report['bench']} "
        f"(seed {report['meta']['seed']}, scale {report['meta']['scale']})"
    ]
    lines.append(
        f"{'workload':<12} {'wall_s':>8} {'zone walks':>11} "
        f"{'lookups':>8} {'sessions':>9} {'samples':>8} {'rng ctor':>9}"
    )
    for name, data in report["workloads"].items():
        counters = data["counters"]
        lines.append(
            f"{name:<12} {data['wall_seconds']:>8.3f} "
            f"{counters['dns.zone_walks']:>11.0f} "
            f"{counters['web.endpoint_lookups']:>8.0f} "
            f"{counters['web.sessions']:>9.0f} "
            f"{counters['download.samples']:>8.0f} "
            f"{counters['rng.constructions']:>9.0f}"
        )
        for key, value in sorted(data["derived"].items()):
            lines.append(f"    {key} = {value:g}")
        digest = data.get("meta", {}).get("repository_digest")
        if digest:
            lines.append(f"    repository_digest = {digest}")
    return "\n".join(lines)
