"""The repeated-download loop.

From the paper (Section 3): "Downloads repeat until the measured average
download time is within 10% of the mean with 95% confidence, at which
point the page size and its average download time are recorded."  The
loop resets (no caching effects) between downloads — in the simulation
each GET is an independent sample by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import MonitorConfig
from ..net.addresses import Address, AddressFamily
from ..obs import metrics
from ..stats.descriptive import RunningStats
from ..stats.intervals import interval_from_stats
from ..web.http import DownloadResult, HttpClient

#: download-loop metrics (module-cached: ``obs`` resets them in place).
_DOWNLOADS = metrics.counter("download.samples")
_CONVERGED = metrics.counter("download.loops_converged")
_EXHAUSTED = metrics.counter("download.loops_exhausted")
_LOOP_SAMPLES = metrics.histogram("download.samples_per_loop")


@dataclass(frozen=True)
class RepeatedDownloadOutcome:
    """Statistics of one site-family's downloads within a round."""

    n_samples: int
    mean_speed: float
    ci_half_width: float
    converged: bool
    page_bytes: int
    total_seconds: float
    first_result: DownloadResult


class RepeatedDownloader:
    """Runs the Fig 2 download loop for one (site, family, round)."""

    def __init__(self, client: HttpClient, config: MonitorConfig) -> None:
        config.validate()
        self._client = client
        self._config = config

    def run(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        rng: random.Random,
    ) -> RepeatedDownloadOutcome:
        """Download until the CI target is met (or max_downloads reached).

        Speeds, not times, are accumulated: for a fixed page size the two
        criteria are equivalent, and speed is what the paper reports.
        """
        cfg = self._config
        acc = RunningStats()
        total_seconds = 0.0
        first: DownloadResult | None = None
        converged = False
        while acc.n < cfg.max_downloads:
            result = self._client.get(final_name, address, family, round_idx, rng)
            if first is None:
                first = result
            acc.add(result.speed_kbytes_per_sec)
            total_seconds += result.seconds
            if acc.n < cfg.min_downloads:
                continue
            interval = interval_from_stats(acc, cfg.confidence)
            if interval.meets_target(cfg.ci_relative_width):
                converged = True
                break
        assert first is not None  # loop runs at least once
        _DOWNLOADS.inc(acc.n)
        _LOOP_SAMPLES.observe(acc.n)
        (_CONVERGED if converged else _EXHAUSTED).inc()
        if not converged and acc.n >= 2:
            # Report the final interval even when the target was missed.
            interval = interval_from_stats(acc, cfg.confidence)
        half_width = interval.half_width if acc.n >= 2 else 0.0
        return RepeatedDownloadOutcome(
            n_samples=acc.n,
            mean_speed=acc.mean,
            ci_half_width=half_width,
            converged=converged,
            page_bytes=first.page_bytes,
            total_seconds=total_seconds,
            first_result=first,
        )
