"""The repeated-download loop.

From the paper (Section 3): "Downloads repeat until the measured average
download time is within 10% of the mean with 95% confidence, at which
point the page size and its average download time are recorded."  The
loop resets (no caching effects) between downloads — in the simulation
each GET is an independent sample by construction.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from functools import lru_cache

from ..config import MonitorConfig
from ..net.addresses import Address, AddressFamily
from ..obs import metrics
from ..stats.descriptive import RunningStats
from ..stats.intervals import interval_from_stats, t_critical
from ..web.http import DownloadResult, DownloadSession, HttpClient

#: download-loop metrics (module-cached: ``obs`` resets them in place).
_DOWNLOADS = metrics.counter("download.samples")
_FAILED = metrics.counter("download.samples_failed")
_CONVERGED = metrics.counter("download.loops_converged")
_EXHAUSTED = metrics.counter("download.loops_exhausted")
_GAVE_UP = metrics.counter("download.loops_gave_up")
_LOOP_SAMPLES = metrics.histogram("download.samples_per_loop")


@dataclass(frozen=True)
class RepeatedDownloadOutcome:
    """Statistics of one site-family's downloads within a round.

    Failed attempts (injected timeouts/resets) never enter the speed
    statistics; they are counted separately.  ``gave_up`` marks a loop
    abandoned after ``max_retries`` consecutive failures — with zero
    successes ``first_result`` is None and ``n_samples`` is 0.
    """

    n_samples: int
    mean_speed: float
    ci_half_width: float
    converged: bool
    page_bytes: int
    total_seconds: float
    first_result: DownloadResult | None
    n_failed: int = 0
    n_timeouts: int = 0
    n_resets: int = 0
    gave_up: bool = False


#: loop-attempt fault decisions are prefetched in spans of this many keys.
_FAULT_BLOCK = 8


@lru_cache(maxsize=64)
def _tcrit_table(confidence: float, max_n: int) -> tuple[float, ...]:
    """Student-t critical values indexed by sample count ``n`` (<= max_n).

    Entry ``n`` equals ``t_critical(confidence, n - 1)`` — the same
    (cached) float the scalar loop multiplies into its standard error —
    hoisted into a tuple so the batched loop's per-sample convergence
    check is an index, not a call.
    """
    return (0.0, 0.0) + tuple(
        t_critical(confidence, n - 1) for n in range(2, max_n + 1)
    )


@lru_cache(maxsize=64)
def _sqrt_table(max_n: int) -> tuple[float, ...]:
    """``math.sqrt(n)`` for n <= max_n (``RunningStats.stderr``'s divisor)."""
    return (0.0, 1.0) + tuple(math.sqrt(n) for n in range(2, max_n + 1))


def run_converging_loop(
    session: DownloadSession, rng: random.Random, config: MonitorConfig
) -> tuple[int, float, float, float, bool]:
    """The fault-free Fig 2 loop on batched draws.

    Returns ``(n_samples, mean_speed, ci_half_width, total_seconds,
    converged)``.  With no fault hook every GET succeeds, so the first
    ``min_downloads`` Gaussians can be drawn as one block
    (:meth:`ThroughputModel.sample_download_speed_batch`) and the Welford
    update, convergence check, and per-sample seconds run inline — no
    ``DownloadResult`` or ``ConfidenceInterval`` objects on the hot
    path.  Every float expression mirrors :meth:`RepeatedDownloader.run`
    (same accumulation order, same ``t * (sqrt(var) / sqrt(n))``
    association, same ``half / |mean| <= target`` division), so the
    statistics — and the shared RNG stream — are bit-identical.
    """
    cfg = config
    round_mean = session.round_mean
    page_kbytes = session._page_kbytes
    sigma = session._noise_sigma
    min_n = cfg.min_downloads
    max_n = cfg.max_downloads
    rel = cfg.ci_relative_width
    tcrit = _tcrit_table(cfg.confidence, max_n)
    sqrt_n = _sqrt_table(max_n)
    gauss = rng.gauss
    exp = math.exp
    sqrt = math.sqrt
    total_seconds = 0.0
    n = 0
    mean = 0.0
    m2 = 0.0
    half = 0.0
    converged = False
    speeds = session._client._model.sample_download_speed_batch(
        round_mean, rng, min_n if min_n <= max_n else max_n
    )
    while True:
        for speed in speeds:
            total_seconds += page_kbytes / speed
            n += 1
            delta = speed - mean
            mean += delta / n
            m2 += delta * (speed - mean)
        if n >= min_n:
            half = tcrit[n] * (sqrt(m2 / (n - 1)) / sqrt_n[n])
            if mean != 0 and half / abs(mean) <= rel:
                converged = True
                break
        if n >= max_n:
            break
        speeds = (
            (round_mean * exp(gauss(0.0, sigma)),)
            if sigma > 0
            else (round_mean,)
        )
    if not converged and n >= 2:
        half = tcrit[n] * (sqrt(m2 / (n - 1)) / sqrt_n[n])
    return n, mean, (half if n >= 2 else 0.0), total_seconds, converged


class RepeatedDownloader:
    """Runs the Fig 2 download loop for one (site, family, round)."""

    def __init__(self, client: HttpClient, config: MonitorConfig) -> None:
        config.validate()
        self._client = client
        self._config = config

    def run(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        rng: random.Random,
        session: DownloadSession | None = None,
    ) -> RepeatedDownloadOutcome:
        """Download until the CI target is met (or max_downloads reached).

        Speeds, not times, are accumulated: for a fixed page size the two
        criteria are equivalent, and speed is what the paper reports.
        Failed attempts are retried with exponential backoff (the k-th
        retry waits ``retry_initial_seconds * retry_backoff ** k``
        simulated seconds); ``max_retries`` consecutive failures abandon
        the loop.

        The loop's endpoint/path lookups happen once, at session open;
        pass ``session`` (e.g. the one the identity probe already opened)
        to skip even that, otherwise one is opened here.  May raise
        :class:`UnreachableError` from the open, exactly where the first
        per-sample GET used to raise it.
        """
        cfg = self._config
        if session is None:
            session = self._client.open(final_name, address, family, round_idx)
        acc = RunningStats()
        total_seconds = 0.0
        first: DownloadResult | None = None
        converged = False
        gave_up = False
        n_failed = n_timeouts = n_resets = 0
        consecutive_failed = 0
        attempt_idx = 0
        # Per-attempt fault keys are only consulted by the fault hook;
        # skip building ~200k of the strings per faults-off campaign.
        keyed = session.has_fault_hook
        while acc.n < cfg.max_downloads:
            result = session.get(
                rng, fault_key=f"loop:{attempt_idx}" if keyed else ""
            )
            attempt_idx += 1
            total_seconds += result.seconds
            if not result.ok:
                n_failed += 1
                if result.failure == "timeout":
                    n_timeouts += 1
                elif result.failure == "reset":
                    n_resets += 1
                if consecutive_failed >= cfg.max_retries:
                    gave_up = True
                    break
                total_seconds += (
                    cfg.retry_initial_seconds
                    * cfg.retry_backoff ** consecutive_failed
                )
                consecutive_failed += 1
                continue
            consecutive_failed = 0
            if first is None:
                first = result
            acc.add(result.speed_kbytes_per_sec)
            if acc.n < cfg.min_downloads:
                continue
            interval = interval_from_stats(acc, cfg.confidence)
            if interval.meets_target(cfg.ci_relative_width):
                converged = True
                break
        _DOWNLOADS.inc(acc.n)
        _FAILED.inc(n_failed)
        _LOOP_SAMPLES.observe(acc.n)
        (_CONVERGED if converged else _EXHAUSTED).inc()
        if gave_up:
            _GAVE_UP.inc()
        if not converged and acc.n >= 2:
            # Report the final interval even when the target was missed.
            interval = interval_from_stats(acc, cfg.confidence)
        half_width = interval.half_width if acc.n >= 2 else 0.0
        return RepeatedDownloadOutcome(
            n_samples=acc.n,
            # A loop abandoned before its first success has no mean.
            mean_speed=acc.mean if acc.n else 0.0,
            ci_half_width=half_width,
            converged=converged,
            page_bytes=first.page_bytes if first is not None else 0,
            total_seconds=total_seconds,
            first_result=first,
            n_failed=n_failed,
            n_timeouts=n_timeouts,
            n_resets=n_resets,
            gave_up=gave_up,
        )

    def run_batched(
        self, session: DownloadSession, rng: random.Random
    ) -> RepeatedDownloadOutcome:
        """:meth:`run` with fault decisions prefetched in blocks.

        Used by the batched monitor on faulty worlds: instead of one
        fault-hook call per GET, spans of ``loop:<i>`` attempt keys are
        resolved through :meth:`HttpClient.fault_batch` (the decisions
        are pure per-coordinate digests, so prefetching past the last
        attempt actually taken changes nothing).  Control flow, float
        accumulation order, shared-RNG draws, and the returned outcome
        mirror :meth:`run` exactly.
        """
        cfg = self._config
        client = self._client
        endpoint = session.endpoint
        site_id = endpoint.site_id
        family = session.family
        round_idx = session.round_idx
        round_mean = session.round_mean
        page_kbytes = session._page_kbytes
        sigma = session._noise_sigma
        acc = RunningStats()
        total_seconds = 0.0
        first: DownloadResult | None = None
        converged = False
        gave_up = False
        n_failed = n_timeouts = n_resets = 0
        consecutive_failed = 0
        attempt_idx = 0
        decisions: list = []
        while acc.n < cfg.max_downloads:
            if attempt_idx >= len(decisions):
                start = len(decisions)
                decisions.extend(
                    client.fault_batch(
                        site_id,
                        family,
                        round_idx,
                        [
                            f"loop:{idx}"
                            for idx in range(start, start + _FAULT_BLOCK)
                        ],
                    )
                )
            fault = decisions[attempt_idx]
            attempt_idx += 1
            if fault is not None:
                total_seconds += fault.seconds
                n_failed += 1
                if fault.kind == "timeout":
                    n_timeouts += 1
                elif fault.kind == "reset":
                    n_resets += 1
                if consecutive_failed >= cfg.max_retries:
                    gave_up = True
                    break
                total_seconds += (
                    cfg.retry_initial_seconds
                    * cfg.retry_backoff ** consecutive_failed
                )
                consecutive_failed += 1
                continue
            if sigma > 0:
                speed = round_mean * math.exp(rng.gauss(0.0, sigma))
            else:
                speed = round_mean
            seconds = page_kbytes / speed
            total_seconds += seconds
            consecutive_failed = 0
            if first is None:
                first = DownloadResult(
                    final_name=session.final_name,
                    family=family,
                    address=session.address,
                    server_asn=endpoint.server_asn,
                    as_path=session.path.as_path,
                    page_bytes=endpoint.page_bytes,
                    speed_kbytes_per_sec=speed,
                    seconds=seconds,
                )
            acc.add(speed)
            if acc.n < cfg.min_downloads:
                continue
            interval = interval_from_stats(acc, cfg.confidence)
            if interval.meets_target(cfg.ci_relative_width):
                converged = True
                break
        _DOWNLOADS.inc(acc.n)
        _FAILED.inc(n_failed)
        _LOOP_SAMPLES.observe(acc.n)
        (_CONVERGED if converged else _EXHAUSTED).inc()
        if gave_up:
            _GAVE_UP.inc()
        if not converged and acc.n >= 2:
            interval = interval_from_stats(acc, cfg.confidence)
        half_width = interval.half_width if acc.n >= 2 else 0.0
        return RepeatedDownloadOutcome(
            n_samples=acc.n,
            mean_speed=acc.mean if acc.n else 0.0,
            ci_half_width=half_width,
            converged=converged,
            page_bytes=first.page_bytes if first is not None else 0,
            total_seconds=total_seconds,
            first_result=first,
            n_failed=n_failed,
            n_timeouts=n_timeouts,
            n_resets=n_resets,
            gave_up=gave_up,
        )
