"""The repeated-download loop.

From the paper (Section 3): "Downloads repeat until the measured average
download time is within 10% of the mean with 95% confidence, at which
point the page size and its average download time are recorded."  The
loop resets (no caching effects) between downloads — in the simulation
each GET is an independent sample by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..config import MonitorConfig
from ..net.addresses import Address, AddressFamily
from ..obs import metrics
from ..stats.descriptive import RunningStats
from ..stats.intervals import interval_from_stats
from ..web.http import DownloadResult, DownloadSession, HttpClient

#: download-loop metrics (module-cached: ``obs`` resets them in place).
_DOWNLOADS = metrics.counter("download.samples")
_FAILED = metrics.counter("download.samples_failed")
_CONVERGED = metrics.counter("download.loops_converged")
_EXHAUSTED = metrics.counter("download.loops_exhausted")
_GAVE_UP = metrics.counter("download.loops_gave_up")
_LOOP_SAMPLES = metrics.histogram("download.samples_per_loop")


@dataclass(frozen=True)
class RepeatedDownloadOutcome:
    """Statistics of one site-family's downloads within a round.

    Failed attempts (injected timeouts/resets) never enter the speed
    statistics; they are counted separately.  ``gave_up`` marks a loop
    abandoned after ``max_retries`` consecutive failures — with zero
    successes ``first_result`` is None and ``n_samples`` is 0.
    """

    n_samples: int
    mean_speed: float
    ci_half_width: float
    converged: bool
    page_bytes: int
    total_seconds: float
    first_result: DownloadResult | None
    n_failed: int = 0
    n_timeouts: int = 0
    n_resets: int = 0
    gave_up: bool = False


class RepeatedDownloader:
    """Runs the Fig 2 download loop for one (site, family, round)."""

    def __init__(self, client: HttpClient, config: MonitorConfig) -> None:
        config.validate()
        self._client = client
        self._config = config

    def run(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        rng: random.Random,
        session: DownloadSession | None = None,
    ) -> RepeatedDownloadOutcome:
        """Download until the CI target is met (or max_downloads reached).

        Speeds, not times, are accumulated: for a fixed page size the two
        criteria are equivalent, and speed is what the paper reports.
        Failed attempts are retried with exponential backoff (the k-th
        retry waits ``retry_initial_seconds * retry_backoff ** k``
        simulated seconds); ``max_retries`` consecutive failures abandon
        the loop.

        The loop's endpoint/path lookups happen once, at session open;
        pass ``session`` (e.g. the one the identity probe already opened)
        to skip even that, otherwise one is opened here.  May raise
        :class:`UnreachableError` from the open, exactly where the first
        per-sample GET used to raise it.
        """
        cfg = self._config
        if session is None:
            session = self._client.open(final_name, address, family, round_idx)
        acc = RunningStats()
        total_seconds = 0.0
        first: DownloadResult | None = None
        converged = False
        gave_up = False
        n_failed = n_timeouts = n_resets = 0
        consecutive_failed = 0
        attempt_idx = 0
        # Per-attempt fault keys are only consulted by the fault hook;
        # skip building ~200k of the strings per faults-off campaign.
        keyed = session.has_fault_hook
        while acc.n < cfg.max_downloads:
            result = session.get(
                rng, fault_key=f"loop:{attempt_idx}" if keyed else ""
            )
            attempt_idx += 1
            total_seconds += result.seconds
            if not result.ok:
                n_failed += 1
                if result.failure == "timeout":
                    n_timeouts += 1
                elif result.failure == "reset":
                    n_resets += 1
                if consecutive_failed >= cfg.max_retries:
                    gave_up = True
                    break
                total_seconds += (
                    cfg.retry_initial_seconds
                    * cfg.retry_backoff ** consecutive_failed
                )
                consecutive_failed += 1
                continue
            consecutive_failed = 0
            if first is None:
                first = result
            acc.add(result.speed_kbytes_per_sec)
            if acc.n < cfg.min_downloads:
                continue
            interval = interval_from_stats(acc, cfg.confidence)
            if interval.meets_target(cfg.ci_relative_width):
                converged = True
                break
        _DOWNLOADS.inc(acc.n)
        _FAILED.inc(n_failed)
        _LOOP_SAMPLES.observe(acc.n)
        (_CONVERGED if converged else _EXHAUSTED).inc()
        if gave_up:
            _GAVE_UP.inc()
        if not converged and acc.n >= 2:
            # Report the final interval even when the target was missed.
            interval = interval_from_stats(acc, cfg.confidence)
        half_width = interval.half_width if acc.n >= 2 else 0.0
        return RepeatedDownloadOutcome(
            n_samples=acc.n,
            # A loop abandoned before its first success has no mean.
            mean_speed=acc.mean if acc.n else 0.0,
            ci_half_width=half_width,
            converged=converged,
            page_bytes=first.page_bytes if first is not None else 0,
            total_seconds=total_seconds,
            first_result=first,
            n_failed=n_failed,
            n_timeouts=n_timeouts,
            n_resets=n_resets,
            gave_up=gave_up,
        )
