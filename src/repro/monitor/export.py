"""Measurement data export.

The paper's Section 5.5 laments that "the currently limited public access
to its data ... would obviously be required to allow independent
validation of the findings" and promises a public repository.  This
module delivers that for the reproduction: every table of a
:class:`~repro.monitor.database.MeasurementDatabase` exports to CSV, and
a whole repository exports to a directory tree (one folder per vantage
point) plus a JSON manifest.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable

from ..errors import MonitorError
from ..net.addresses import AddressFamily
from .aggregate import CentralRepository
from .database import MeasurementDatabase

#: schema version written into manifests, bumped on format changes.
EXPORT_FORMAT_VERSION = 1


def _write_csv(path: pathlib.Path, header: Iterable[str], rows) -> int:
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            writer.writerow(row)
            count += 1
    return count


def export_downloads_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write the download-statistics table; returns the row count."""
    def rows():
        for (site_id, family), observations in sorted(
            db.downloads.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            for obs in observations:
                yield (
                    site_id,
                    family.value,
                    obs.round_idx,
                    obs.n_samples,
                    f"{obs.mean_speed:.4f}",
                    f"{obs.ci_half_width:.4f}",
                    int(obs.converged),
                    obs.page_bytes,
                    f"{obs.timestamp:.1f}",
                )

    return _write_csv(
        path,
        (
            "site_id", "family", "round", "n_samples", "mean_speed_kbps",
            "ci_half_width", "converged", "page_bytes", "timestamp",
        ),
        rows(),
    )


def export_paths_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write the AS-path table; paths are space-separated ASNs."""
    def rows():
        for (site_id, family), observations in sorted(
            db.paths.items(), key=lambda kv: (kv[0][0], kv[0][1].value)
        ):
            for obs in observations:
                yield (
                    site_id,
                    family.value,
                    obs.round_idx,
                    obs.dest_asn,
                    " ".join(str(asn) for asn in obs.as_path),
                )

    return _write_csv(
        path, ("site_id", "family", "round", "dest_asn", "as_path"), rows()
    )


def export_dns_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write per-round DNS counters (the Fig 1 series source)."""
    def rows():
        for round_idx in sorted(db.dns_counts):
            queried, v4, v6 = db.dns_counts[round_idx]
            yield (round_idx, queried, v4, v6)

    return _write_csv(path, ("round", "queried", "with_a", "with_aaaa"), rows())


def export_page_checks_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write the page-identity check table."""
    def rows():
        for site_id in sorted(db.page_checks):
            for check in db.page_checks[site_id]:
                yield (
                    site_id,
                    check.round_idx,
                    check.v4_bytes,
                    check.v6_bytes,
                    int(check.identical),
                )

    return _write_csv(
        path, ("site_id", "round", "v4_bytes", "v6_bytes", "identical"), rows()
    )


def export_faults_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write per-round failure counters, one row per (round, family, kind)."""
    counts: dict[tuple[int, str, str], int] = {}
    for obs in db.faults:
        key = (obs.round_idx, obs.family.value, obs.kind)
        counts[key] = counts.get(key, 0) + 1

    def rows():
        for (round_idx, family, kind) in sorted(counts):
            yield (round_idx, family, kind, counts[(round_idx, family, kind)])

    return _write_csv(path, ("round", "family", "kind", "count"), rows())


def export_transitions_csv(db: MeasurementDatabase, path: pathlib.Path) -> int:
    """Write the per-(site, round) IPv6 transition-kind table."""
    def rows():
        for obs in db.transitions:
            yield (obs.site_id, obs.round_idx, obs.kind)

    return _write_csv(path, ("site_id", "round", "transition"), rows())


def export_database(
    db: MeasurementDatabase, directory: pathlib.Path
) -> dict[str, int]:
    """Export one vantage point's database; returns per-table row counts.

    ``faults.csv`` and ``transitions.csv`` (and their manifest entries)
    appear only when such rows were observed, so legacy export trees
    keep their historical layout and bytes.
    """
    directory.mkdir(parents=True, exist_ok=True)
    counts = {
        "downloads": export_downloads_csv(db, directory / "downloads.csv"),
        "paths": export_paths_csv(db, directory / "paths.csv"),
        "dns": export_dns_csv(db, directory / "dns.csv"),
        "page_checks": export_page_checks_csv(db, directory / "page_checks.csv"),
    }
    if db.faults:
        counts["faults"] = export_faults_csv(db, directory / "faults.csv")
    if db.transitions:
        counts["transitions"] = export_transitions_csv(
            db, directory / "transitions.csv"
        )
    return counts


def export_repository(
    repository: CentralRepository, directory: pathlib.Path
) -> pathlib.Path:
    """Export every vantage point plus a JSON manifest.

    Returns the manifest path.  Layout::

        <directory>/manifest.json
        <directory>/<vantage>/downloads.csv  paths.csv  dns.csv  page_checks.csv
        <directory>/<vantage>/faults.csv          (faulty campaigns only)
    """
    if not repository.vantage_names:
        raise MonitorError("repository holds no vantage points to export")
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest: dict = {
        "format_version": EXPORT_FORMAT_VERSION,
        "vantage_points": {},
    }
    for name in repository.vantage_names:
        vantage = repository.vantage(name)
        counts = export_database(repository.database(name), directory / name)
        manifest["vantage_points"][name] = {
            "asn": vantage.asn,
            "location": vantage.location,
            "start_round": vantage.start_round,
            "as_path_available": vantage.as_path_available,
            "white_listed": vantage.white_listed,
            "kind": str(vantage.kind),
            "tables": counts,
        }
    manifest_path = directory / "manifest.json"
    manifest_path.write_text(json.dumps(manifest, indent=2), encoding="utf-8")
    return manifest_path


def load_downloads_csv(path: pathlib.Path) -> MeasurementDatabase:
    """Rebuild a database's download table from an exported CSV.

    Supports the round-trip validation tests and lets downstream users
    re-ingest published data without this package's monitor.
    """
    from .database import DownloadObservation

    db = MeasurementDatabase(vantage_name=path.parent.name or "imported")
    with path.open(newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            family = (
                AddressFamily.IPV4
                if row["family"] == AddressFamily.IPV4.value
                else AddressFamily.IPV6
            )
            db.add_download(
                DownloadObservation(
                    site_id=int(row["site_id"]),
                    round_idx=int(row["round"]),
                    family=family,
                    n_samples=int(row["n_samples"]),
                    mean_speed=float(row["mean_speed_kbps"]),
                    ci_half_width=float(row["ci_half_width"]),
                    converged=bool(int(row["converged"])),
                    page_bytes=int(row["page_bytes"]),
                    timestamp=float(row["timestamp"]),
                )
            )
    return db
