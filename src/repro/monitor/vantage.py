"""Monitoring vantage points (the paper's Table 1).

A vantage point is a dual-stack host we control, attached to one AS of
the synthetic Internet.  Its attributes mirror Table 1: when monitoring
started, whether AS_PATH data is available from a nearby router, whether
the location is white-listed by Google, and whether it is an academic or
commercial network.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class VantageKind(Enum):
    """Academic or commercial network, as in Table 1's last column."""

    ACADEMIC = "Acad."
    COMMERCIAL = "Comml."

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class VantagePoint:
    """One monitoring location."""

    name: str
    location: str
    asn: int
    #: first campaign round this vantage point participates in.
    start_round: int
    #: whether a nearby router's BGP table (AS_PATH) is available.
    as_path_available: bool
    white_listed: bool
    kind: VantageKind
    #: whether Penn-style external site inputs are fed to this monitor.
    external_inputs: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("vantage points need a name")
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")
        if self.asn <= 0:
            raise ValueError("vantage ASN must be positive")

    def active_at(self, round_idx: int) -> bool:
        return round_idx >= self.start_round

    def to_dict(self) -> dict:
        """JSON-ready form (engine shard results and the campaign store)."""
        return {
            "name": self.name,
            "location": self.location,
            "asn": self.asn,
            "start_round": self.start_round,
            "as_path_available": self.as_path_available,
            "white_listed": self.white_listed,
            "kind": self.kind.name,
            "external_inputs": self.external_inputs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VantagePoint":
        """Rebuild a vantage point from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            location=data["location"],
            asn=data["asn"],
            start_round=data["start_round"],
            as_path_available=data["as_path_available"],
            white_listed=data["white_listed"],
            kind=VantageKind[data["kind"]],
            external_inputs=data["external_inputs"],
        )

    def table1_row(self) -> tuple[str, str, str, str, str]:
        """The vantage point formatted as a Table 1 row."""
        return (
            f"{self.name} ({self.location})",
            f"round {self.start_round}",
            "Y" if self.as_path_available else "N",
            "Y" if self.white_listed else "N",
            str(self.kind),
        )
