"""The measurement database.

The paper's tool stores each round's results "in several tables in a
mysql database".  :class:`MeasurementDatabase` is that schema in memory:
DNS observations, page-identity checks, per-round download statistics,
and AS-path observations — one database per vantage point, merged later
by the central repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MonitorError
from ..net.addresses import AddressFamily

#: serialization format version of :meth:`MeasurementDatabase.to_dict`
#: (and the engine's shard/store payloads); bumped on layout changes.
SERIAL_FORMAT = 1


@dataclass(frozen=True, slots=True)
class DnsObservation:
    """Outcome of the A/AAAA query phase for one site-round."""

    site_id: int
    name: str
    round_idx: int
    has_v4: bool
    has_v6: bool
    #: whether the site was on the *current* top list this round (the
    #: monitor also re-queries previously seen and externally fed sites).
    listed: bool = True

    @property
    def dual_stack(self) -> bool:
        return self.has_v4 and self.has_v6


@dataclass(frozen=True, slots=True)
class PageCheck:
    """Outcome of the page-identity phase for one site-round."""

    site_id: int
    round_idx: int
    v4_bytes: int
    v6_bytes: int
    identical: bool


@dataclass(frozen=True, slots=True)
class DownloadObservation:
    """The repeated-download statistics of one (site, family, round)."""

    site_id: int
    round_idx: int
    family: AddressFamily
    n_samples: int
    mean_speed: float  # kbytes/sec
    ci_half_width: float
    converged: bool
    page_bytes: int
    timestamp: float


@dataclass(frozen=True, slots=True)
class PathObservation:
    """The BGP view of one (site, family, round)."""

    site_id: int
    round_idx: int
    family: AddressFamily
    dest_asn: int
    as_path: tuple[int, ...]


#: fault kinds recorded by the monitor (injected failures only — a
#: structurally unreachable destination is not a fault).
FAULT_KINDS = (
    "dns_timeout",
    "dns_exhausted",
    "timeout",
    "reset",
    "exhausted",
)


@dataclass(frozen=True, slots=True)
class FaultObservation:
    """One injected failure the monitor observed (and possibly retried).

    ``kind`` is one of :data:`FAULT_KINDS`: the two DNS kinds come from
    the resolver, "timeout"/"reset" from failed download attempts, and
    the two "*exhausted" kinds mark a site-family-round abandoned after
    the retry budget ran out.
    """

    site_id: int
    round_idx: int
    family: AddressFamily
    kind: str


#: how a measured IPv6 connection actually crossed the Internet:
#: natively routed end to end, through a 6to4/broker tunnel, or
#: NAT64-translated onto an IPv4 leg.  Order is the wire dictionary.
TRANSITION_KINDS = (
    "native",
    "tunneled",
    "translated",
)


@dataclass(frozen=True, slots=True)
class TransitionObservation:
    """The transition mechanism behind one measured (site, round) IPv6 flow.

    Recorded only when the scenario's NAT64/DNS64 axis is enabled —
    legacy campaigns carry no transitions table and their wire form (and
    digests) stay bit-identical.
    """

    site_id: int
    round_idx: int
    kind: str


@dataclass
class MeasurementDatabase:
    """All tables for one vantage point, with query helpers."""

    vantage_name: str
    #: full DNS observations are retained for dual-stack sites only; the
    #: v4-only majority is aggregated into per-round counters to keep
    #: memory proportional to the interesting population.
    dns: dict[int, list[DnsObservation]] = field(default_factory=dict)
    #: round -> (n_queried, n_with_v4, n_with_v6).
    dns_counts: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    page_checks: dict[int, list[PageCheck]] = field(default_factory=dict)
    downloads: dict[tuple[int, AddressFamily], list[DownloadObservation]] = field(
        default_factory=dict
    )
    paths: dict[tuple[int, AddressFamily], list[PathObservation]] = field(
        default_factory=dict
    )
    #: injected failures in observation order (empty in fault-free runs).
    faults: list[FaultObservation] = field(default_factory=list)
    #: per-(site, round) IPv6 transition kinds in observation order
    #: (empty unless the NAT64/DNS64 axis records them).
    transitions: list[TransitionObservation] = field(default_factory=list)
    #: memoized :meth:`dual_stack_sites` result; invalidated on download
    #: writes (the only table that query reads).
    _dual_stack_cache: list[int] | None = field(
        default=None, repr=False, compare=False
    )
    #: memoized columnar view (:func:`repro.data.columnar.columnar_view`);
    #: any table write invalidates.
    _columnar_cache: object | None = field(
        default=None, repr=False, compare=False
    )

    # -- writes --------------------------------------------------------------

    def add_dns(self, obs: DnsObservation) -> None:
        if obs.listed:
            queried, v4, v6 = self.dns_counts.get(obs.round_idx, (0, 0, 0))
            self.dns_counts[obs.round_idx] = (
                queried + 1,
                v4 + int(obs.has_v4),
                v6 + int(obs.has_v6),
            )
        if obs.dual_stack:
            self._append_in_order(self.dns.setdefault(obs.site_id, []), obs)
        self._columnar_cache = None

    def v6_reachability(self, round_idx: int) -> float:
        """AAAA share among the round's *top-list* queries (Fig 1's metric).

        Previously-seen and externally-imported sites keep being
        monitored but do not enter this fraction, matching the paper's
        definition over the current top list.
        """
        queried, _, v6 = self.dns_counts.get(round_idx, (0, 0, 0))
        return v6 / queried if queried else 0.0

    def add_page_check(self, check: PageCheck) -> None:
        self._append_in_order(self.page_checks.setdefault(check.site_id, []), check)
        self._columnar_cache = None

    def add_download(self, obs: DownloadObservation) -> None:
        key = (obs.site_id, obs.family)
        self._append_in_order(self.downloads.setdefault(key, []), obs)
        self._dual_stack_cache = None
        self._columnar_cache = None

    def add_path(self, obs: PathObservation) -> None:
        key = (obs.site_id, obs.family)
        rows = self.paths.setdefault(key, [])
        self._append_in_order(rows, obs)
        self._columnar_cache = None

    def add_fault(self, obs: FaultObservation) -> None:
        if obs.kind not in FAULT_KINDS:
            raise MonitorError(f"unknown fault kind {obs.kind!r}")
        if self.faults and self.faults[-1].round_idx > obs.round_idx:
            raise MonitorError(
                f"out-of-order fault insert: round {obs.round_idx} "
                f"after {self.faults[-1].round_idx}"
            )
        self.faults.append(obs)
        self._columnar_cache = None

    def add_transition(self, obs: TransitionObservation) -> None:
        if obs.kind not in TRANSITION_KINDS:
            raise MonitorError(f"unknown transition kind {obs.kind!r}")
        if self.transitions and self.transitions[-1].round_idx > obs.round_idx:
            raise MonitorError(
                f"out-of-order transition insert: round {obs.round_idx} "
                f"after {self.transitions[-1].round_idx}"
            )
        self.transitions.append(obs)
        self._columnar_cache = None

    # -- batched writes --------------------------------------------------------
    #
    # The batched execution plane materializes a whole round's rows in
    # dispatch order and lands them here in one call per table.  Each
    # method applies the exact per-row logic of its scalar counterpart
    # (same dict-insertion order, same monotonicity checks), so the wire
    # form — and every digest over it — is byte-identical; only the
    # per-row call overhead and repeated cache invalidations go away.

    def add_dns_round(
        self,
        round_idx: int,
        listed_counts: tuple[int, int, int],
        rows: "list[DnsObservation]",
    ) -> None:
        """One round's DNS phase in bulk.

        ``listed_counts`` is the pre-aggregated (queried, has_v4, has_v6)
        contribution of the round's *top-list* queries — single-stack
        sites only ever touch those tallies, so the batched plan skips
        materializing their rows entirely.  ``rows`` are the dual-stack
        observations, in dispatch order.
        """
        n_listed, n_v4, n_v6 = listed_counts
        if n_listed:
            queried, v4, v6 = self.dns_counts.get(round_idx, (0, 0, 0))
            self.dns_counts[round_idx] = (
                queried + n_listed,
                v4 + n_v4,
                v6 + n_v6,
            )
        dns = self.dns
        for obs in rows:
            site_rows = dns.get(obs.site_id)
            if site_rows is None:
                site_rows = dns[obs.site_id] = []
            self._append_in_order(site_rows, obs)
        self._columnar_cache = None

    def add_page_checks(self, rows: "list[PageCheck]") -> None:
        page_checks = self.page_checks
        for check in rows:
            site_rows = page_checks.get(check.site_id)
            if site_rows is None:
                site_rows = page_checks[check.site_id] = []
            self._append_in_order(site_rows, check)
        self._columnar_cache = None

    def add_downloads(self, rows: "list[DownloadObservation]") -> None:
        downloads = self.downloads
        for obs in rows:
            key = (obs.site_id, obs.family)
            site_rows = downloads.get(key)
            if site_rows is None:
                site_rows = downloads[key] = []
            self._append_in_order(site_rows, obs)
        self._dual_stack_cache = None
        self._columnar_cache = None

    def add_paths(self, rows: "list[PathObservation]") -> None:
        paths = self.paths
        for obs in rows:
            key = (obs.site_id, obs.family)
            site_rows = paths.get(key)
            if site_rows is None:
                site_rows = paths[key] = []
            self._append_in_order(site_rows, obs)
        self._columnar_cache = None

    def add_faults(self, rows: "list[FaultObservation]") -> None:
        faults = self.faults
        for obs in rows:
            if obs.kind not in FAULT_KINDS:
                raise MonitorError(f"unknown fault kind {obs.kind!r}")
            if faults and faults[-1].round_idx > obs.round_idx:
                raise MonitorError(
                    f"out-of-order fault insert: round {obs.round_idx} "
                    f"after {faults[-1].round_idx}"
                )
            faults.append(obs)
        self._columnar_cache = None

    def add_transitions(self, rows: "list[TransitionObservation]") -> None:
        transitions = self.transitions
        for obs in rows:
            if obs.kind not in TRANSITION_KINDS:
                raise MonitorError(f"unknown transition kind {obs.kind!r}")
            if transitions and transitions[-1].round_idx > obs.round_idx:
                raise MonitorError(
                    f"out-of-order transition insert: round {obs.round_idx} "
                    f"after {transitions[-1].round_idx}"
                )
            transitions.append(obs)
        self._columnar_cache = None

    @staticmethod
    def _append_in_order(rows: list, obs) -> None:
        if rows and rows[-1].round_idx >= obs.round_idx:
            raise MonitorError(
                f"out-of-order insert for site {obs.site_id}: "
                f"round {obs.round_idx} after {rows[-1].round_idx}"
            )
        rows.append(obs)

    # -- per-site queries ------------------------------------------------------

    def speeds(self, site_id: int, family: AddressFamily) -> list[float]:
        """Per-round mean speeds, in round order (converged rounds only)."""
        rows = self.downloads.get((site_id, family), [])
        return [row.mean_speed for row in rows if row.converged]

    def download_rounds(self, site_id: int, family: AddressFamily) -> list[int]:
        rows = self.downloads.get((site_id, family), [])
        return [row.round_idx for row in rows if row.converged]

    def sample_count(self, site_id: int, family: AddressFamily) -> int:
        """Number of converged measurement rounds for a site-family."""
        return len(self.speeds(site_id, family))

    def dest_asn(self, site_id: int, family: AddressFamily) -> int | None:
        """Destination AS of the site's address in ``family`` (latest)."""
        rows = self.paths.get((site_id, family), [])
        return rows[-1].dest_asn if rows else None

    def as_path(self, site_id: int, family: AddressFamily) -> tuple[int, ...] | None:
        """The most frequently observed AS path (ties: latest wins)."""
        rows = self.paths.get((site_id, family), [])
        if not rows:
            return None
        counts: dict[tuple[int, ...], int] = {}
        for row in rows:
            counts[row.as_path] = counts.get(row.as_path, 0) + 1
        best = max(counts.values())
        for row in reversed(rows):
            if counts[row.as_path] == best:
                return row.as_path
        return rows[-1].as_path  # pragma: no cover - unreachable

    def path_change_rounds(self, site_id: int, family: AddressFamily) -> list[int]:
        """Rounds at which the observed AS path differed from the previous."""
        rows = self.paths.get((site_id, family), [])
        changes: list[int] = []
        for prev, cur in zip(rows, rows[1:]):
            if prev.as_path != cur.as_path:
                changes.append(cur.round_idx)
        return changes

    def had_path_change(self, site_id: int) -> bool:
        """Whether either family's path changed during the campaign."""
        return any(
            self.path_change_rounds(site_id, family)
            for family in (AddressFamily.IPV4, AddressFamily.IPV6)
        )

    # -- population queries ------------------------------------------------------

    def sites_seen(self) -> list[int]:
        """Every site with at least one DNS observation."""
        return sorted(self.dns)

    def dual_stack_sites(self) -> list[int]:
        """Sites with converged download data in both families.

        This is Table 2's "Sites (total)" population: accessible — and
        measured — over both IPv4 and IPv6.  Memoized (every analysis
        layer asks for it repeatedly); download writes invalidate.
        """
        if self._dual_stack_cache is None:
            v4 = {sid for (sid, fam) in self.downloads if fam is AddressFamily.IPV4}
            v6 = {sid for (sid, fam) in self.downloads if fam is AddressFamily.IPV6}
            self._dual_stack_cache = sorted(
                sid
                for sid in v4 & v6
                if self.sample_count(sid, AddressFamily.IPV4) > 0
                and self.sample_count(sid, AddressFamily.IPV6) > 0
            )
        return list(self._dual_stack_cache)

    def destination_ases(self, family: AddressFamily) -> set[int]:
        """Distinct destination ASes across measured sites (Table 2)."""
        return {
            rows[-1].dest_asn
            for (sid, fam), rows in self.paths.items()
            if fam is family and rows
        }

    def ases_crossed(self, family: AddressFamily) -> set[int]:
        """All ASes on any observed path, destination included (Table 2).

        The vantage point's own AS is not counted as "crossed".
        """
        crossed: set[int] = set()
        for (sid, fam), rows in self.paths.items():
            if fam is not family:
                continue
            for row in rows:
                crossed.update(row.as_path[1:])
        return crossed

    def fault_counts(self, round_idx: int | None = None) -> dict[str, int]:
        """Failure counts by kind, overall or for one round."""
        counts: dict[str, int] = {}
        for obs in self.faults:
            if round_idx is not None and obs.round_idx != round_idx:
                continue
            counts[obs.kind] = counts.get(obs.kind, 0) + 1
        return counts

    def transition_counts(self, round_idx: int | None = None) -> dict[str, int]:
        """IPv6 transition-kind counts, overall or for one round."""
        counts: dict[str, int] = {}
        for obs in self.transitions:
            if round_idx is not None and obs.round_idx != round_idx:
                continue
            counts[obs.kind] = counts.get(obs.kind, 0) + 1
        return counts

    def transition_kind_of(self, site_id: int) -> str | None:
        """The latest observed transition kind of one site (or None)."""
        latest: str | None = None
        for obs in self.transitions:
            if obs.site_id == site_id:
                latest = obs.kind
        return latest

    def __len__(self) -> int:
        return sum(len(rows) for rows in self.downloads.values())

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Compact JSON-ready form of every table.

        The wire format of the execution engine: shard results cross
        process boundaries and land in the on-disk campaign store in
        exactly this shape.  Row order (and therefore dict insertion
        order) is preserved, so ``from_dict(db.to_dict())`` rebuilds a
        database whose iteration order — and canonical JSON digest —
        matches the original bit for bit.
        """
        data = {
            "format": SERIAL_FORMAT,
            "vantage_name": self.vantage_name,
            "dns": [
                [o.site_id, o.name, o.round_idx, o.has_v4, o.has_v6, o.listed]
                for rows in self.dns.values()
                for o in rows
            ],
            "dns_counts": [
                [round_idx, queried, v4, v6]
                for round_idx, (queried, v4, v6) in self.dns_counts.items()
            ],
            "page_checks": [
                [c.site_id, c.round_idx, c.v4_bytes, c.v6_bytes, c.identical]
                for rows in self.page_checks.values()
                for c in rows
            ],
            "downloads": [
                [
                    o.site_id, o.family.value, o.round_idx, o.n_samples,
                    o.mean_speed, o.ci_half_width, o.converged, o.page_bytes,
                    o.timestamp,
                ]
                for rows in self.downloads.values()
                for o in rows
            ],
            "paths": [
                [o.site_id, o.family.value, o.round_idx, o.dest_asn,
                 list(o.as_path)]
                for rows in self.paths.values()
                for o in rows
            ],
        }
        if self.faults:
            # Emitted only when nonempty so fault-free databases keep their
            # historical canonical form (and content digest) bit for bit.
            data["faults"] = [
                [o.site_id, o.family.value, o.round_idx, o.kind]
                for o in self.faults
            ]
        if self.transitions:
            # Same optional-key rule: campaigns without the NAT64 axis
            # serialize (and digest) exactly as before it existed.
            data["transitions"] = [
                [o.site_id, o.round_idx, o.kind] for o in self.transitions
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MeasurementDatabase":
        """Rebuild a database from :meth:`to_dict` output.

        Rows are re-appended through the same ordered-insert path the
        monitor uses, so the monotone-round invariant is re-validated on
        load and stays enforced for writes made after loading.
        """
        fmt = data.get("format")
        if fmt != SERIAL_FORMAT:
            raise MonitorError(
                f"unsupported database serialization format {fmt!r} "
                f"(expected {SERIAL_FORMAT})"
            )
        db = cls(vantage_name=data["vantage_name"])
        for site_id, name, round_idx, has_v4, has_v6, listed in data["dns"]:
            obs = DnsObservation(
                site_id=site_id, name=name, round_idx=round_idx,
                has_v4=has_v4, has_v6=has_v6, listed=listed,
            )
            # dns_counts is restored verbatim below; bypass the counter
            # update add_dns would apply for listed observations.
            db._append_in_order(db.dns.setdefault(obs.site_id, []), obs)
        db.dns_counts = {
            round_idx: (queried, v4, v6)
            for round_idx, queried, v4, v6 in data["dns_counts"]
        }
        for site_id, round_idx, v4_bytes, v6_bytes, identical in data["page_checks"]:
            db.add_page_check(
                PageCheck(
                    site_id=site_id, round_idx=round_idx,
                    v4_bytes=v4_bytes, v6_bytes=v6_bytes, identical=identical,
                )
            )
        for row in data["downloads"]:
            (site_id, family, round_idx, n_samples, mean_speed,
             ci_half_width, converged, page_bytes, timestamp) = row
            db.add_download(
                DownloadObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    family=AddressFamily(family),
                    n_samples=n_samples,
                    mean_speed=mean_speed,
                    ci_half_width=ci_half_width,
                    converged=converged,
                    page_bytes=page_bytes,
                    timestamp=timestamp,
                )
            )
        for site_id, family, round_idx, dest_asn, as_path in data["paths"]:
            db.add_path(
                PathObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    family=AddressFamily(family),
                    dest_asn=dest_asn,
                    as_path=tuple(as_path),
                )
            )
        for site_id, family, round_idx, kind in data.get("faults", []):
            db.add_fault(
                FaultObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    family=AddressFamily(family),
                    kind=kind,
                )
            )
        for site_id, round_idx, kind in data.get("transitions", []):
            db.add_transition(
                TransitionObservation(
                    site_id=site_id, round_idx=round_idx, kind=kind
                )
            )
        return db
