"""The monitoring thread pool.

The paper's tool is "multi-threaded so that multiple sites (no more than
25 to avoid bandwidth and processing bottlenecks) can be monitored in
parallel".  The simulation is single-threaded, but the *schedule* still
matters: it determines each measurement's timestamp within the round and
the round's total duration.  :class:`SlotScheduler` reproduces a work
pool: jobs are dispatched in order to the earliest-free slot.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from ..errors import MonitorError
from ..obs import metrics

_JOBS = metrics.counter("scheduler.jobs")
_OCCUPANCY = metrics.gauge("scheduler.slot_occupancy")


@dataclass(frozen=True)
class ScheduledJob:
    """One job's placement on the pool."""

    index: int
    slot: int
    start: float
    finish: float


class SlotScheduler:
    """Assigns jobs (durations, in submission order) to ``n_slots`` workers."""

    def __init__(self, n_slots: int) -> None:
        if n_slots < 1:
            raise MonitorError("need at least one slot")
        self.n_slots = n_slots

    def schedule(
        self, durations: Sequence[float], origin: float = 0.0
    ) -> list[ScheduledJob]:
        """Greedy earliest-free-slot assignment (exactly a thread pool)."""
        for duration in durations:
            if duration < 0:
                raise MonitorError("job durations must be >= 0")
        # Heap of (free_at, slot); ties broken by slot id for determinism.
        slots = [(origin, slot) for slot in range(self.n_slots)]
        heapq.heapify(slots)
        placed: list[ScheduledJob] = []
        for index, duration in enumerate(durations):
            free_at, slot = heapq.heappop(slots)
            _OCCUPANCY.update_max(
                1 + sum(1 for busy_until, _ in slots if busy_until > free_at)
            )
            finish = free_at + duration
            placed.append(
                ScheduledJob(index=index, slot=slot, start=free_at, finish=finish)
            )
            heapq.heappush(slots, (finish, slot))
        _JOBS.inc(len(placed))
        return placed

    def makespan(self, durations: Sequence[float], origin: float = 0.0) -> float:
        """Total time until the last job finishes."""
        placed = self.schedule(durations, origin)
        if not placed:
            return 0.0
        return max(job.finish for job in placed) - origin
