"""The monitoring tool — the paper's Fig 2 pipeline.

Each round:

1. retrieve the latest top list (plus any external inputs) and add
   never-before-seen sites to the monitored set — once monitored, a site
   is tracked "from this point onward";
2. randomise the monitoring order (to avoid time-of-day bias);
3. per site: DNS A + AAAA queries; if dual-stack, download the main page
   over both families and compare byte counts (identical within 6%); if
   identical, run the repeated-download loop per family and record the
   statistics and the BGP path.

Sites are dispatched to a bounded worker pool (<= 25 concurrent) whose
schedule stamps every measurement with its simulated wall-clock time.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Callable

from ..batch import batching_enabled
from ..config import MonitorConfig
from ..dataplane.clock import SimulationClock
from ..dns.resolver import ResolutionResult, Resolver
from ..errors import DnsTimeout, MonitorError, UnreachableError
from ..net.addresses import AddressFamily
from ..obs import get_logger, metrics
from ..web.http import DownloadResult, DownloadSession, HttpClient
from .database import (
    DnsObservation,
    DownloadObservation,
    FaultObservation,
    MeasurementDatabase,
    PageCheck,
    PathObservation,
    TransitionObservation,
)
from .download import RepeatedDownloader
from .vantage import VantagePoint

#: nominal seconds spent on a site that fails an early phase.
DNS_PHASE_SECONDS = 0.2
PAGE_CHECK_SECONDS = 1.0

_LOG = get_logger("monitor.tool")
#: per-phase counters (module-cached: ``obs`` resets metrics in place).
_SITES_MONITORED = metrics.counter("monitor.sites_monitored")
_DNS_FILTERED = metrics.counter("monitor.dns_filtered")
_UNREACHABLE = metrics.counter("monitor.unreachable")
_IDENTITY_FAILED = metrics.counter("monitor.identity_failed")
_DUAL_STACK = metrics.counter("monitor.dual_stack")
_MEASURED = metrics.counter("monitor.sites_measured")
_SLOT_OCCUPANCY = metrics.gauge("monitor.slot_occupancy")
_FAULTS = metrics.counter("monitor.faults_observed")
_RETRIES_EXHAUSTED = metrics.counter("monitor.retries_exhausted")


@dataclass
class VantageEnvironment:
    """Everything one monitor needs from the world, injected as callables."""

    resolver: Resolver
    client: HttpClient
    clock: SimulationClock
    #: round -> ranked site names (the freshly retrieved top list).
    site_list: Callable[[int], list[str]]
    #: round -> extra names manually imported (Penn's DNS-cache feed).
    external_inputs: Callable[[int], list[str]]
    #: site name -> stable site id.
    site_id_of: Callable[[str], int]
    #: record per-(site, round) IPv6 transition kinds (on when the
    #: scenario's NAT64/DNS64 axis is enabled; legacy campaigns record
    #: nothing and keep their wire form bit-identical).
    record_transitions: bool = False


@dataclass(frozen=True)
class RoundReport:
    """Summary of one monitoring round (for logs and tests)."""

    round_idx: int
    n_monitored: int
    n_new: int
    n_dual_stack: int
    n_measured: int
    makespan_seconds: float
    #: injected failures observed this round (0 in fault-free runs).
    n_failures: int = 0

    def to_dict(self) -> dict:
        """JSON-ready form (the engine's shard-result wire format)."""
        data = {
            "round_idx": self.round_idx,
            "n_monitored": self.n_monitored,
            "n_new": self.n_new,
            "n_dual_stack": self.n_dual_stack,
            "n_measured": self.n_measured,
            "makespan_seconds": self.makespan_seconds,
        }
        if self.n_failures:
            # Key emitted only when nonzero: fault-free payloads (and the
            # digests over them) stay bit-identical to earlier versions.
            data["n_failures"] = self.n_failures
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RoundReport":
        """Rebuild a report from :meth:`to_dict` output (lossless)."""
        return cls(
            round_idx=data["round_idx"],
            n_monitored=data["n_monitored"],
            n_new=data["n_new"],
            n_dual_stack=data["n_dual_stack"],
            n_measured=data["n_measured"],
            makespan_seconds=data["makespan_seconds"],
            n_failures=data.get("n_failures", 0),
        )


class MonitoringTool:
    """One vantage point's monitor, accumulating into its own database."""

    def __init__(
        self,
        vantage: VantagePoint,
        env: VantageEnvironment,
        config: MonitorConfig,
        rng: random.Random,
        max_sites_per_round: int = 0,
    ) -> None:
        config.validate()
        if max_sites_per_round < 0:
            raise MonitorError("max_sites_per_round must be >= 0")
        self.vantage = vantage
        self.env = env
        self.config = config
        self.rng = rng
        self.max_sites_per_round = max_sites_per_round
        self.database = MeasurementDatabase(vantage_name=vantage.name)
        self.downloader = RepeatedDownloader(env.client, config)
        self._monitored: list[str] = []
        self._monitored_set: set[str] = set()
        self._last_round: int | None = None
        self._round_faults = 0
        #: name → site id memo (stable for the life of the world).
        self._site_ids: dict[str, int] = {}
        #: batched execution plane (REPRO_BATCH=0 forces the scalar
        #: reference path; both produce bit-identical databases).
        self._batched = batching_enabled()
        #: lazy per-tool A+AAAA pair resolver (see repro.batch.dnsplan).
        self._pair_resolver = None

    # -- public API -----------------------------------------------------------

    def run_round(self, round_idx: int) -> RoundReport:
        """Run one full monitoring round; returns a summary report."""
        if self._last_round is not None and round_idx <= self._last_round:
            raise MonitorError(
                f"rounds must be monotonically increasing "
                f"(got {round_idx} after {self._last_round})"
            )
        self._last_round = round_idx
        self._round_faults = 0
        if not self.vantage.active_at(round_idx):
            return RoundReport(round_idx, 0, 0, 0, 0, 0.0)

        listed_now = set(self.env.site_list(round_idx))
        n_new = self._ingest_lists(round_idx)
        order = list(self._monitored)
        self.rng.shuffle(order)
        if self.max_sites_per_round:
            order = order[: self.max_sites_per_round]

        round_start = self.env.clock.time_of_round(round_idx)
        if self._batched:
            # The batched execution plane: plan the site batch, then
            # execute it with bulk draws.  Import is deferred — the
            # batch package's plan/execute modules import this one.
            from ..batch.execute import run_batched_round

            return run_batched_round(
                self, round_idx, order, listed_now, n_new, round_start
            )
        # The worker pool: heap of (free_at, slot), dispatch in order.
        slots = [(round_start, slot) for slot in range(self.config.max_concurrent)]
        heapq.heapify(slots)
        # Finish times of dispatched sites; dispatch instants are
        # non-decreasing, so draining entries <= free_at leaves exactly
        # the sites still busy — an O(1) amortised occupancy count in
        # place of a scan over every slot per dispatch.
        busy: list[float] = []
        n_dual_stack = 0
        n_measured = 0
        makespan = round_start
        for name in order:
            free_at, slot = heapq.heappop(slots)
            while busy and busy[0] <= free_at:
                heapq.heappop(busy)
            # Occupancy at this dispatch instant: the popped slot plus
            # every other slot still busy past it.
            _SLOT_OCCUPANCY.update_max(1 + len(busy))
            duration, dual_stack, measured = self._monitor_site(
                name, round_idx, free_at, listed=name in listed_now
            )
            finish = free_at + duration
            heapq.heappush(slots, (finish, slot))
            heapq.heappush(busy, finish)
            makespan = max(makespan, finish)
            n_dual_stack += int(dual_stack)
            n_measured += int(measured)
        _LOG.debug(
            "round done",
            extra={
                "vantage": self.vantage.name,
                "round": round_idx,
                "monitored": len(order),
                "new": n_new,
                "dual_stack": n_dual_stack,
                "measured": n_measured,
                "failures": self._round_faults,
            },
        )
        return RoundReport(
            round_idx=round_idx,
            n_monitored=len(order),
            n_new=n_new,
            n_dual_stack=n_dual_stack,
            n_measured=n_measured,
            makespan_seconds=makespan - round_start,
            n_failures=self._round_faults,
        )

    @property
    def monitored_sites(self) -> list[str]:
        """All sites ever seen, in first-seen order."""
        return list(self._monitored)

    # -- internals --------------------------------------------------------------

    def _ingest_lists(self, round_idx: int) -> int:
        names = self.env.site_list(round_idx)
        if self.vantage.external_inputs:
            names = names + self.env.external_inputs(round_idx)
        n_new = 0
        for name in names:
            if name not in self._monitored_set:
                self._monitored_set.add(name)
                self._monitored.append(name)
                n_new += 1
        return n_new

    def _record_fault(
        self, site_id: int, round_idx: int, family: AddressFamily, kind: str
    ) -> None:
        """Record one injected failure (database, metrics, round counter)."""
        self.database.add_fault(
            FaultObservation(
                site_id=site_id, round_idx=round_idx, family=family, kind=kind
            )
        )
        _FAULTS.inc()
        if kind in ("exhausted", "dns_exhausted"):
            _RETRIES_EXHAUSTED.inc()
        self._round_faults += 1

    def _backoff_seconds(self, attempt: int) -> float:
        """Simulated wait before retry ``attempt`` (0-based, exponential)."""
        return (
            self.config.retry_initial_seconds
            * self.config.retry_backoff ** attempt
        )

    def _query_both_with_retry(
        self, name: str, site_id: int, round_idx: int, now: float
    ) -> tuple[dict[AddressFamily, ResolutionResult | None], float]:
        """The DNS phase with bounded retry on injected timeouts.

        Returns the per-family answers plus the extra simulated seconds
        the timeouts and backoff waits cost.  A family whose retry budget
        is exhausted counts as unresolved — in a faulty world a site can
        look v6-dark for a round, exactly the transient AAAA outages the
        paper's sanitization had to cope with.
        """
        results: dict[AddressFamily, ResolutionResult | None] = {}
        resolver = self.env.resolver
        if resolver.fault_check is None:
            # Faults off: DnsTimeout is impossible, so the retry loop is
            # pure overhead on the hottest per-site path.
            results[AddressFamily.IPV4] = resolver.resolve_quiet(
                name, AddressFamily.IPV4, now, 0
            )
            results[AddressFamily.IPV6] = resolver.resolve_quiet(
                name, AddressFamily.IPV6, now, 0
            )
            return results, 0.0
        extra = 0.0
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            for attempt in range(self.config.max_retries + 1):
                try:
                    results[family] = resolver.resolve_quiet(
                        name, family, now + extra, attempt
                    )
                    break
                except DnsTimeout as exc:
                    self._record_fault(site_id, round_idx, family, "dns_timeout")
                    extra += exc.seconds
                    if attempt < self.config.max_retries:
                        extra += self._backoff_seconds(attempt)
            else:
                results[family] = None
                self._record_fault(site_id, round_idx, family, "dns_exhausted")
        return results, extra

    def _probe_with_retry(
        self,
        session: DownloadSession,
        family: AddressFamily,
        site_id: int,
        round_idx: int,
    ) -> tuple[DownloadResult | None, float]:
        """One identity-phase GET with bounded retry on injected faults.

        Returns (successful result or None, simulated seconds spent).
        """
        seconds = 0.0
        for attempt in range(self.config.max_retries + 1):
            result = session.get(self.rng, fault_key=f"probe:{attempt}")
            seconds += result.seconds
            if result.ok:
                return result, seconds
            self._record_fault(site_id, round_idx, family, result.failure)
            if attempt < self.config.max_retries:
                seconds += self._backoff_seconds(attempt)
        self._record_fault(site_id, round_idx, family, "exhausted")
        return None, seconds

    def _monitor_site(
        self, name: str, round_idx: int, now: float, listed: bool = True
    ) -> tuple[float, bool, bool]:
        """Monitor one site; returns (duration, dual_stack, fully_measured)."""
        _SITES_MONITORED.inc()
        site_id = self._site_ids.get(name)
        if site_id is None:
            site_id = self._site_ids[name] = self.env.site_id_of(name)
        answers, dns_extra = self._query_both_with_retry(
            name, site_id, round_idx, now
        )
        v4 = answers[AddressFamily.IPV4]
        v6 = answers[AddressFamily.IPV6]
        self.database.add_dns(
            DnsObservation(
                site_id=site_id,
                name=name,
                round_idx=round_idx,
                has_v4=v4 is not None,
                has_v6=v6 is not None,
                listed=listed,
            )
        )
        if v4 is None or v6 is None:
            _DNS_FILTERED.inc()
            return DNS_PHASE_SECONDS + dns_extra, False, False
        _DUAL_STACK.inc()

        # Page identity phase: one download per family, compare byte counts.
        # Sessions pin the endpoint/path lookups once per (site, family);
        # the performance phase below reuses them.  Opens are interleaved
        # with the probes so an unreachable v6 destination is discovered
        # at exactly the point the old per-GET code raised (after the v4
        # probe has consumed its shared-RNG draws).
        try:
            session_v4 = self.env.client.open(
                v4.final_name, v4.addresses[0], AddressFamily.IPV4, round_idx
            )
            probe_v4, v4_seconds = self._probe_with_retry(
                session_v4, AddressFamily.IPV4, site_id, round_idx
            )
            session_v6 = self.env.client.open(
                v6.final_name, v6.addresses[0], AddressFamily.IPV6, round_idx
            )
            probe_v6, v6_seconds = self._probe_with_retry(
                session_v6, AddressFamily.IPV6, site_id, round_idx
            )
        except UnreachableError:
            _UNREACHABLE.inc()
            return DNS_PHASE_SECONDS + dns_extra + PAGE_CHECK_SECONDS, True, False
        if probe_v4 is None or probe_v6 is None:
            # Retry budget exhausted on an identity probe: give the site
            # up for this round, like an unreachable destination.
            return (
                DNS_PHASE_SECONDS + dns_extra + v4_seconds + v6_seconds,
                True,
                False,
            )
        larger = max(probe_v4.page_bytes, probe_v6.page_bytes)
        identical = (
            abs(probe_v4.page_bytes - probe_v6.page_bytes) / larger
            <= self.config.identity_threshold
        )
        self.database.add_page_check(
            PageCheck(
                site_id=site_id,
                round_idx=round_idx,
                v4_bytes=probe_v4.page_bytes,
                v6_bytes=probe_v6.page_bytes,
                identical=identical,
            )
        )
        duration = v4_seconds + v6_seconds + DNS_PHASE_SECONDS + dns_extra
        if not identical:
            _IDENTITY_FAILED.inc()
            return duration, True, False

        # Performance phase: repeated downloads, IPv4 first then IPv6,
        # reusing the identity probes' sessions (no further lookups).
        fully_measured = True
        for family, answer, session in (
            (AddressFamily.IPV4, v4, session_v4),
            (AddressFamily.IPV6, v6, session_v6),
        ):
            outcome = self.downloader.run(
                answer.final_name,
                answer.addresses[0],
                family,
                round_idx,
                self.rng,
                session=session,
            )
            duration += outcome.total_seconds
            for _ in range(outcome.n_timeouts):
                self._record_fault(site_id, round_idx, family, "timeout")
            for _ in range(outcome.n_resets):
                self._record_fault(site_id, round_idx, family, "reset")
            if outcome.gave_up:
                self._record_fault(site_id, round_idx, family, "exhausted")
            if outcome.first_result is None:
                # Every attempt failed: nothing measurable this round.
                fully_measured = False
                continue
            self.database.add_download(
                DownloadObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    family=family,
                    n_samples=outcome.n_samples,
                    mean_speed=outcome.mean_speed,
                    ci_half_width=outcome.ci_half_width,
                    converged=outcome.converged,
                    page_bytes=outcome.page_bytes,
                    timestamp=now,
                )
            )
            self.database.add_path(
                PathObservation(
                    site_id=site_id,
                    round_idx=round_idx,
                    family=family,
                    dest_asn=outcome.first_result.as_path[-1],
                    as_path=outcome.first_result.as_path,
                )
            )
            if (
                family is AddressFamily.IPV6
                and self.env.record_transitions
            ):
                self.database.add_transition(
                    TransitionObservation(
                        site_id=site_id,
                        round_idx=round_idx,
                        kind=session.path.transition_kind,
                    )
                )
        if fully_measured:
            _MEASURED.inc()
        return duration, True, fully_measured
