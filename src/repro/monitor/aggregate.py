"""The central repository.

"A common repository at Penn aggregates the measurement data from the
different vantage points."  :class:`CentralRepository` is that box: it
holds every vantage point's database and answers the cross-vantage
queries the analysis needs (which vantage points have AS_PATH data, which
sites are common, per-AS categories from several viewpoints).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..errors import MonitorError
from .database import MeasurementDatabase
from .vantage import VantagePoint


@dataclass
class CentralRepository:
    """Aggregated measurement data across vantage points."""

    _vantages: dict[str, VantagePoint] = field(default_factory=dict)
    _databases: dict[str, MeasurementDatabase] = field(default_factory=dict)

    def add(self, vantage: VantagePoint, database: MeasurementDatabase) -> None:
        if vantage.name in self._vantages:
            raise MonitorError(f"vantage {vantage.name!r} already registered")
        if database.vantage_name != vantage.name:
            raise MonitorError(
                f"database belongs to {database.vantage_name!r}, "
                f"not {vantage.name!r}"
            )
        self._vantages[vantage.name] = vantage
        self._databases[vantage.name] = database

    @property
    def vantage_names(self) -> list[str]:
        return list(self._vantages)

    def vantage(self, name: str) -> VantagePoint:
        if name not in self._vantages:
            raise MonitorError(f"unknown vantage {name!r}")
        return self._vantages[name]

    def database(self, name: str) -> MeasurementDatabase:
        if name not in self._databases:
            raise MonitorError(f"unknown vantage {name!r}")
        return self._databases[name]

    def analysis_vantages(self) -> list[VantagePoint]:
        """Vantage points usable for path analysis (AS_PATH available).

        The paper restricts the H1/H2 analysis to vantage points with a
        "Y" in Table 1's AS PATH column.
        """
        return [v for v in self._vantages.values() if v.as_path_available]

    def items(self) -> list[tuple[VantagePoint, MeasurementDatabase]]:
        return [
            (self._vantages[name], self._databases[name])
            for name in self._vantages
        ]

    def analysis_items(self) -> list[tuple[VantagePoint, MeasurementDatabase]]:
        return [
            (vantage, self._databases[vantage.name])
            for vantage in self.analysis_vantages()
        ]

    def common_dual_stack_sites(self) -> set[int]:
        """Sites measured dual-stack from every analysis vantage point.

        Runs on the columnar query core (one group-aggregate over each
        vantage's downloads table) — lazily imported because
        ``repro.data`` imports this module.
        """
        from ..data.columnar import columnar_view
        from ..data.query import dual_stack_sites

        items = self.analysis_items()
        if not items:
            return set()
        common = set(dual_stack_sites(columnar_view(items[0][1])))
        for _, db in items[1:]:
            common &= set(dual_stack_sites(columnar_view(db)))
        return common

    def __len__(self) -> int:
        return len(self._vantages)

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form: vantage roster plus every database."""
        return {
            "vantages": [v.to_dict() for v in self._vantages.values()],
            "databases": {
                name: db.to_dict() for name, db in self._databases.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CentralRepository":
        """Rebuild a repository from :meth:`to_dict` output."""
        repository = cls()
        for vantage_data in data["vantages"]:
            vantage = VantagePoint.from_dict(vantage_data)
            repository.add(
                vantage,
                MeasurementDatabase.from_dict(data["databases"][vantage.name]),
            )
        return repository

    def content_digest(self) -> str:
        """SHA-256 over the canonical JSON form of every table.

        Two repositories holding bit-identical measurement data produce
        the same digest regardless of which execution backend (or
        process) produced them — the engine's equivalence tests and the
        CI serial-vs-process gate compare exactly this value.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
