"""The paper's monitoring tool (Fig 2) and its measurement database."""

from .vantage import VantagePoint, VantageKind
from .database import (
    DnsObservation,
    DownloadObservation,
    MeasurementDatabase,
    PageCheck,
    PathObservation,
)
from .download import RepeatedDownloader
from .scheduler import SlotScheduler
from .tool import MonitoringTool, VantageEnvironment
from .aggregate import CentralRepository
from .export import export_database, export_repository

__all__ = [
    "VantagePoint",
    "VantageKind",
    "DnsObservation",
    "DownloadObservation",
    "MeasurementDatabase",
    "PageCheck",
    "PathObservation",
    "RepeatedDownloader",
    "SlotScheduler",
    "MonitoringTool",
    "VantageEnvironment",
    "CentralRepository",
    "export_database",
    "export_repository",
]
