"""The fault plan: seeded failure schedules over the synthetic Internet.

A :class:`FaultPlan` turns a :class:`~repro.config.FaultConfig` plus the
scenario's master seed into concrete yes/no (and how-long) decisions.
Every decision is keyed by its full coordinates — site, family, round,
attempt — and is a single digest-derived uniform
(:func:`~repro.rng.derive_uniform`): one SHA-256 per decision, no
generator object.  No shared mutable stream is ever consumed, so two
components (or two processes) asking the same question always get the
same answer, and the *order* in which questions are asked cannot perturb
any other subsystem's randomness.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable

from ..config import FaultConfig
from ..errors import ConfigError
from ..net.addresses import AddressFamily
from ..rng import derive_seed, derive_uniform, derive_uniform_block


@dataclass(frozen=True)
class ServerFault:
    """One injected download failure: what happened and what it cost."""

    kind: str  # "timeout" or "reset"
    seconds: float  # simulated wall-clock burned by the failed attempt


class FaultPlan:
    """Deterministic failure schedule for one scenario.

    All query methods are pure functions of the construction arguments;
    per-round tunnel and link decisions are memoised because the same
    (AS, round) pair is asked about once per traversing download.
    """

    def __init__(self, config: FaultConfig, master_seed: int) -> None:
        config.validate()
        self.config = config
        self._seed = derive_seed(master_seed, "faults")
        self._tunnel_cache: dict[tuple[int, int], bool] = {}
        self._link_cache: dict[tuple[int, int], float] = {}
        self._nat64_cache: dict[tuple[int, int], bool] = {}

    # -- primitive draws ------------------------------------------------------

    def _uniform(self, stream: str) -> float:
        """One digest-derived uniform per decision coordinate."""
        return derive_uniform(self._seed, stream)

    def _chance(self, stream: str, rate: float) -> bool:
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._uniform(stream) < rate

    # -- DNS ------------------------------------------------------------------

    def dns_failure(
        self, name: str, family: AddressFamily, round_idx: int, attempt: int
    ) -> bool:
        """Whether one lookup attempt for ``name`` times out."""
        rate = (
            self.config.aaaa_failure_rate
            if family is AddressFamily.IPV6
            else self.config.a_failure_rate
        )
        return self._chance(
            f"dns:{name}:{family.value}:{round_idx}:{attempt}", rate
        )

    def dns_failure_batch(
        self,
        name: str,
        family: AddressFamily,
        round_idx: int,
        attempts: Iterable[int],
    ) -> list[bool]:
        """Batched :meth:`dns_failure` over a span of attempt indices.

        Element-for-element identical to the scalar calls: each attempt
        keeps its own full-coordinate stream name, hashed in bulk by
        :func:`~repro.rng.derive_uniform_block`.
        """
        rate = (
            self.config.aaaa_failure_rate
            if family is AddressFamily.IPV6
            else self.config.a_failure_rate
        )
        attempts = list(attempts)
        if rate <= 0.0:
            return [False] * len(attempts)
        if rate >= 1.0:
            return [True] * len(attempts)
        prefix = f"dns:{name}:{family.value}:{round_idx}:"
        draws = derive_uniform_block(
            self._seed, (prefix + str(attempt) for attempt in attempts)
        )
        return [draw < rate for draw in draws]

    # -- downloads ------------------------------------------------------------

    def server_fault(
        self,
        site_id: int,
        family: AddressFamily,
        round_idx: int,
        attempt_key: str,
        rate_multiplier: float = 1.0,
    ) -> ServerFault | None:
        """Whether one download attempt fails, and how (timeout/reset).

        ``attempt_key`` distinguishes the GETs a monitor issues for the
        same (site, family, round) — identity probes vs loop samples vs
        retries — so a retry is a genuinely fresh draw.
        ``rate_multiplier`` lets callers scale the configured rates per
        family or per server (impaired v6 hosts fail more).
        """
        cfg = self.config
        if family is AddressFamily.IPV6:
            rate_multiplier *= cfg.v6_fault_multiplier
        timeout_rate = min(1.0, cfg.server_timeout_rate * rate_multiplier)
        reset_rate = min(1.0 - timeout_rate, cfg.server_reset_rate * rate_multiplier)
        if timeout_rate <= 0.0 and reset_rate <= 0.0:
            return None
        draw = self._uniform(
            f"server:{site_id}:{family.value}:{round_idx}:{attempt_key}"
        )
        if draw < timeout_rate:
            return ServerFault("timeout", cfg.timeout_seconds)
        if draw < timeout_rate + reset_rate:
            return ServerFault("reset", cfg.reset_seconds)
        return None

    def server_fault_batch(
        self,
        site_id: int,
        family: AddressFamily,
        round_idx: int,
        attempt_keys: Iterable[str],
        rate_multiplier: float = 1.0,
    ) -> "list[ServerFault | None]":
        """Batched :meth:`server_fault` over a span of attempt keys.

        The batched monitor prefetches the fault decisions of a whole
        probe (or a chunk of loop attempts) in one call; every element
        equals the scalar method's answer for the same coordinates.
        """
        cfg = self.config
        if family is AddressFamily.IPV6:
            rate_multiplier *= cfg.v6_fault_multiplier
        timeout_rate = min(1.0, cfg.server_timeout_rate * rate_multiplier)
        reset_rate = min(
            1.0 - timeout_rate, cfg.server_reset_rate * rate_multiplier
        )
        attempt_keys = list(attempt_keys)
        if timeout_rate <= 0.0 and reset_rate <= 0.0:
            return [None] * len(attempt_keys)
        prefix = f"server:{site_id}:{family.value}:{round_idx}:"
        draws = derive_uniform_block(
            self._seed, (prefix + key for key in attempt_keys)
        )
        timeout = ServerFault("timeout", cfg.timeout_seconds)
        reset = ServerFault("reset", cfg.reset_seconds)
        both = timeout_rate + reset_rate
        return [
            timeout
            if draw < timeout_rate
            else (reset if draw < both else None)
            for draw in draws
        ]

    # -- paths ----------------------------------------------------------------

    def tunnel_broken(self, client_asn: int, round_idx: int) -> bool:
        """Whether ``client_asn``'s transition tunnel is down this round."""
        key = (client_asn, round_idx)
        cached = self._tunnel_cache.get(key)
        if cached is None:
            cached = self._chance(
                f"tunnel:{client_asn}:{round_idx}",
                self.config.tunnel_breakage_rate,
            )
            self._tunnel_cache[key] = cached
        return cached

    def nat64_outage(self, gateway_asn: int, round_idx: int) -> bool:
        """Whether the NAT64 gateway in ``gateway_asn`` is down this round.

        A down translator takes every synthesized-AAAA connection through
        it with it: the monitor sees those destinations as unreachable
        over IPv6 and falls back per its retry policy, the translated
        analogue of :meth:`tunnel_broken`.
        """
        key = (gateway_asn, round_idx)
        cached = self._nat64_cache.get(key)
        if cached is None:
            cached = self._chance(
                f"nat64:{gateway_asn}:{round_idx}",
                self.config.nat64_outage_rate,
            )
            self._nat64_cache[key] = cached
        return cached

    def link_degradation(self, asn: int, round_idx: int) -> float:
        """Throughput factor of ``asn``'s links this round (1.0 = clean)."""
        key = (asn, round_idx)
        cached = self._link_cache.get(key)
        if cached is None:
            degraded = self._chance(
                f"link:{asn}:{round_idx}", self.config.link_degradation_rate
            )
            cached = self.config.link_degradation_factor if degraded else 1.0
            self._link_cache[key] = cached
        return cached

    def path_degradation(self, as_path: Iterable[int], round_idx: int) -> float:
        """Combined degradation over a forwarding path (product per AS)."""
        if self.config.link_degradation_rate <= 0.0:
            return 1.0
        factor = 1.0
        for asn in as_path:
            factor *= self.link_degradation(asn, round_idx)
        return factor


#: Named fault presets for the CLI (``run-all --faults``) and scenarios.
#: "mild" keeps most sites measurable while making Table 3's failure
#: columns non-trivial; "heavy" approximates a bad month on the 2011
#: IPv6 Internet (flapping 6to4 relays, regularly timing-out AAAA).
FAULT_PRESETS: dict[str, FaultConfig] = {
    "none": FaultConfig(),
    "mild": FaultConfig(
        a_failure_rate=0.005,
        aaaa_failure_rate=0.02,
        server_timeout_rate=0.01,
        server_reset_rate=0.01,
        v6_fault_multiplier=2.0,
        tunnel_breakage_rate=0.05,
        link_degradation_rate=0.02,
        nat64_outage_rate=0.03,
    ),
    "heavy": FaultConfig(
        a_failure_rate=0.02,
        aaaa_failure_rate=0.08,
        server_timeout_rate=0.04,
        server_reset_rate=0.03,
        v6_fault_multiplier=2.5,
        impaired_fault_multiplier=2.0,
        tunnel_breakage_rate=0.15,
        link_degradation_rate=0.08,
        link_degradation_factor=0.35,
        nat64_outage_rate=0.10,
    ),
}


def fault_preset(name: str) -> FaultConfig:
    """Look up a preset by name; raises :class:`ConfigError` when unknown."""
    try:
        return FAULT_PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault preset {name!r}; "
            f"expected one of {sorted(FAULT_PRESETS)}"
        ) from None


def resolve_faults(spec: str | FaultConfig | None) -> FaultConfig:
    """Resolve a CLI/env fault specification to a :class:`FaultConfig`.

    ``None`` falls back to the ``REPRO_FAULTS`` environment variable
    (default: the "none" preset); a string names a preset; a
    :class:`FaultConfig` passes through validated.
    """
    if spec is None:
        spec = os.environ.get("REPRO_FAULTS", "") or "none"
    if isinstance(spec, FaultConfig):
        spec.validate()
        return spec
    return fault_preset(spec)
