"""Deterministic fault injection.

The paper's pipeline exists *because* measurements fail: download loops
exhaust without converging, AAAA lookups time out, tunnels flap, and
Table 3 attributes removed sites to exactly those failure modes.  This
package perturbs the synthetic Internet with seeded, reproducible faults
so the sanitization machinery is exercised on realistically dirty data.

Every fault decision is a pure function of the master seed and the
decision's coordinates (site, family, round, attempt, ...), drawn from a
named RNG stream — so every vantage point, executor backend, and worker
process sees the identical failure schedule, and a campaign with faults
enabled is exactly as reproducible as one without.
"""

from .plan import (
    FAULT_PRESETS,
    FaultPlan,
    ServerFault,
    fault_preset,
    resolve_faults,
)

__all__ = [
    "FAULT_PRESETS",
    "FaultPlan",
    "ServerFault",
    "fault_preset",
    "resolve_faults",
]
