"""Command-line interface.

Subcommands::

    repro run-all   [--scale S] [--seed N] [--profile P]  # every figure and table
                    [--cache-dir DIR] [--no-cache]        #   (campaign store knobs)
    repro quickrun  [--scale S] [--seed N]                # small world + H1/H2 verdicts
    repro export    --out DIR [--scale S] [--seed N]      # campaign data as CSV + manifest
                    [--cache-dir DIR] [--no-cache]        #   (store-first, run on miss)
    repro serve     [--host H] [--port N]                 # campaign store HTTP JSON API
                    [--cache-dir DIR] [--max-rows N]
                    [--lru N]                             #   (or $REPRO_SERVE_LRU)
                    [--workers N] [--response-cache N]    #   (worker pool + byte-verified
                    [--reuse-port] [--verify-cache-hits]  #    response cache)
    repro loadtest  [--url URL] [--seed N] [--scale S]    # seeded Zipf replay vs a live
                    [--requests N] [--clients N]          #   server; BENCH_serve.json
                    [--qps Q] [--zipf-s S] [--workers N]
                    [--smoke] [--check] [--baseline P] [--out P]
    repro observe   [--scale S] [--seed N] [--json]       # derived-metric observer panel
                    [--rounds N] [--seeds N...]           #   (long-horizon / sweep modes)
                    [--observers NAME...]                 #   (subset of the panel)
                    [--cache-dir DIR] [--no-cache]        #   (store-first, run on miss)
    repro cache ls     [--json] [--cache-dir DIR]         # list stored campaigns
    repro cache prune  --keep-latest N [--cache-dir DIR]  # drop all but the newest N
    repro profile   [--scale S] [--seed N] [--out P]      # phase-time breakdown + JSON report
    repro bench     [--scale S] [--seed N] [--out P]      # perf workloads + BENCH_rounds.json
                    [--smoke] [--check] [--baseline P]    #   (deterministic regression gates)
                    [--compare P]                         #   (speedup summary vs old report)
    repro show-config                                     # the default scenario, as text

Every campaign subcommand also takes ``--backend serial|process`` and
``--jobs N`` to pick the execution engine backend; both backends produce
bit-identical measurement repositories.  ``run-all``, ``quickrun``, and
``export`` additionally take ``--faults none|mild|heavy`` (default:
``$REPRO_FAULTS`` or none) to inject the seeded failure schedule of
``repro.faults``.

A global ``--log-level`` flag turns on structured (key=value) logging to
stderr for every subcommand; observability never touches stdout, so
seeded results are bit-identical with it on or off.

Installed as the ``repro`` console script (or run via
``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys

from . import obs
from .analysis.hypotheses import ASVerdict, verdict_fractions
from .config import EXECUTION_BACKENDS, ExecutionConfig, default_config, small_config
from .core import build_world, run_campaign
from .experiments import run_all as run_all_module
from .experiments import scenario
from .experiments.scenario import build_contexts
from .faults import FAULT_PRESETS, resolve_faults
from .monitor.export import export_repository
from .perf import (
    DEFAULT_REPORT as BENCH_DEFAULT_OUT,
    DEFAULT_SCALE as BENCH_DEFAULT_SCALE,
    DEFAULT_SEED as BENCH_DEFAULT_SEED,
    WORKLOADS,
    compare_reports,
    compare_serve_reports,
    evaluate_gates,
    evaluate_serve_gates,
    serve_wall_clock_deltas,
    read_report as read_bench_report,
    render_comparison as render_bench_comparison,
    render_report,
    run_bench,
    wall_clock_deltas,
    write_report as write_bench_report,
)

#: default output of ``repro profile`` (the perf-trajectory seed file).
PROFILE_DEFAULT_OUT = "BENCH_profile_small.json"


def _add_execution_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=EXECUTION_BACKENDS,
        default=None,
        help="execution backend (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --backend process (default: $REPRO_JOBS or 1)",
    )


def _execution_from(args: argparse.Namespace) -> ExecutionConfig | None:
    """Build an ExecutionConfig from CLI flags; None defers to the env."""
    if args.backend is None and args.jobs is None:
        return None
    base = ExecutionConfig.from_env()
    return ExecutionConfig(
        backend=args.backend if args.backend is not None else base.backend,
        jobs=args.jobs if args.jobs is not None else base.jobs,
    )


def _add_faults_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        choices=sorted(FAULT_PRESETS),
        default=None,
        help="fault-injection preset (default: $REPRO_FAULTS or none)",
    )


def _with_faults(config, args: argparse.Namespace):
    """Apply the --faults / $REPRO_FAULTS selection to a scenario config."""
    return dataclasses.replace(config, faults=resolve_faults(args.faults))


def _add_transition_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--transition",
        action="store_true",
        help="enable the NAT64/DNS64 transition axis: DNS64-synthesized "
        "AAAA records, translated forwarding paths, and per-site "
        "transition recording (default: off, bit-identical to before)",
    )


def _with_transition(config, args: argparse.Namespace):
    """Apply the --transition axis (NAT64/DNS64) to a scenario config."""
    if not getattr(args, "transition", False):
        return config
    return dataclasses.replace(
        config, dns64=dataclasses.replace(config.dns64, enabled=True)
    )


def _cmd_run_all(args: argparse.Namespace) -> int:
    argv = ["--scale", str(args.scale), "--seed", str(args.seed)]
    if args.profile:
        argv += ["--profile", args.profile]
    if args.backend is not None:
        argv += ["--backend", args.backend]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    if args.cache_dir is not None:
        argv += ["--cache-dir", args.cache_dir]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.faults is not None:
        argv += ["--faults", args.faults]
    if args.transition:
        argv += ["--transition"]
    return run_all_module.main(argv)


def _cmd_quickrun(args: argparse.Namespace) -> int:
    config = _with_transition(
        _with_faults(small_config(seed=args.seed, scale=args.scale), args),
        args,
    )
    world = build_world(config)
    result = run_campaign(world, execution=_execution_from(args))
    contexts = build_contexts(config, result)
    print("vantage    SP comparable   DP comparable")
    for name, context in contexts.items():
        sp = verdict_fractions(context.sp_evaluations.values())
        dp = verdict_fractions(context.dp_evaluations.values())
        print(
            f"{name:9s}  {100 * sp[ASVerdict.COMPARABLE]:12.1f}%  "
            f"{100 * dp[ASVerdict.COMPARABLE]:12.1f}%"
        )
    print("H1 expects the left column high; H2 expects the right column low.")
    if config.dns64.enabled:
        repo = result.repository
        counts: dict[str, int] = {}
        for name in repo.vantage_names:
            for kind, n in repo.database(name).transition_counts().items():
                counts[kind] = counts.get(kind, 0) + n
        rendered = ", ".join(
            f"{kind}={counts.get(kind, 0)}"
            for kind in ("native", "tunneled", "translated")
        )
        print(f"transition rows (all vantages): {rendered}")
    return 0


def _apply_cache_args(args: argparse.Namespace) -> None:
    """Honour --cache-dir / --no-cache before the store is first used."""
    if getattr(args, "no_cache", False):
        scenario.configure_cache(None)
    elif getattr(args, "cache_dir", None) is not None:
        scenario.configure_cache(args.cache_dir)


def _cmd_export(args: argparse.Namespace) -> int:
    """Export campaign CSVs, store-first.

    Without explicit ``--backend``/``--jobs`` the campaign store is
    consulted: a hit exports the serialized measurement repository
    directly — no world build, no campaign re-run — and a miss runs the
    campaign then stores it.  Explicit backend flags always run the
    campaign on that backend (the CI backend-equivalence job relies on
    this), leaving the store untouched.
    """
    from .engine import WEEKLY

    _apply_cache_args(args)
    config = _with_transition(
        _with_faults(small_config(seed=args.seed, scale=args.scale), args),
        args,
    )
    execution = _execution_from(args)
    store = scenario.get_store() if execution is None else None
    repository = None
    if store is not None:
        repository = store.load_repository(config, kind=WEEKLY)
        if repository is not None:
            print("campaign store hit; exporting stored measurement data")
    if repository is None:
        world = build_world(config)
        result = run_campaign(world, execution=execution)
        repository = result.repository
        if store is not None:
            store.save(
                config, result.repository, result.reports, kind=WEEKLY,
                world=world,
            )
    manifest = export_repository(repository, pathlib.Path(args.out))
    print(f"exported campaign data; manifest at {manifest}")
    print(f"repository digest: {repository.content_digest()}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the campaign store over HTTP (lazy import: stdlib http)."""
    from .data.serve import ServeConfig, run_server

    _apply_cache_args(args)
    store = scenario.get_store()
    if store is None:
        print("repro serve: the campaign store is disabled (--no-cache?)")
        return 1
    # --lru wins; otherwise ServeConfig falls back to $REPRO_SERVE_LRU.
    extra = {}
    if args.lru is not None:
        extra["lru_campaigns"] = args.lru
    if args.workers is not None:
        extra["workers"] = args.workers
    if args.response_cache is not None:
        extra["response_cache_entries"] = args.response_cache
    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_root=str(store.root),
        max_rows=args.max_rows,
        verify_cache_hits=args.verify_cache_hits,
        reuse_port=args.reuse_port,
        **extra,
    )
    return run_server(config, store)


#: ``repro loadtest`` smoke preset (matches the checked-in BENCH_serve.json).
LOADTEST_SMOKE_REQUESTS = 240
LOADTEST_DEFAULT_REQUESTS = 2000


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay a seeded Zipf query mix against a live ``repro serve``.

    Store-first like ``export``: a campaign for (seed, scale) is looked
    up in the store and built+saved on a miss, so the mix always has a
    real content-addressed campaign to target.  Without ``--url`` an
    in-process server is spawned on an ephemeral port; with it, an
    externally started server (the CI loadtest-smoke job's) is driven
    instead.  ``--smoke`` uses the small request preset and evaluates
    the structural gates; ``--check`` additionally compares the mix
    digest and error block against the checked-in baseline.
    """
    import threading

    from .data.loadtest import (
        LoadtestOptions,
        generate_mix,
        read_serve_report,
        render_serve_report,
        run_loadtest,
        write_serve_report,
    )
    from .data.serve import ServeConfig, make_server
    from .engine import WEEKLY
    from .engine.store import config_digest

    _apply_cache_args(args)
    store = scenario.get_store()
    if store is None:
        print("repro loadtest: the campaign store is disabled (--no-cache?)")
        return 1
    config = small_config(seed=args.seed, scale=args.scale)
    digest = config_digest(config, WEEKLY)
    loaded = store.load_columnar_entry(digest)
    if loaded is None:
        print(f"campaign {digest[:16]} not stored; building it first")
        world = build_world(config)
        result = run_campaign(world, execution=_execution_from(args))
        store.save(
            config, result.repository, result.reports, kind=WEEKLY, world=world
        )
        loaded = store.load_columnar_entry(digest)
        if loaded is None:
            print("repro loadtest: failed to store the campaign")
            return 1
    _, columnar = loaded
    vantages = sorted(columnar.vantages)
    downloads = columnar.databases[vantages[0]].table("downloads")
    site_column = downloads.columns["site_id"]
    site_ids = sorted({site_column.get(i) for i in range(downloads.n_rows)})

    if args.requests is not None:
        n_requests = args.requests
    else:
        n_requests = (
            LOADTEST_SMOKE_REQUESTS if args.smoke else LOADTEST_DEFAULT_REQUESTS
        )
    mix = generate_mix(
        digest, vantages, site_ids, n_requests, seed=args.seed,
        zipf_s=args.zipf_s,
    )

    server = None
    meta = {"scale": args.scale}
    if args.url:
        base_url = args.url
        meta["workers"] = None
    else:
        serve_config = ServeConfig(
            host="127.0.0.1",
            port=0,
            cache_root=str(store.root),
            workers=args.workers,
        )
        server = make_server(serve_config, store)
        base_url = f"http://127.0.0.1:{server.server_address[1]}"
        threading.Thread(target=server.serve_forever, daemon=True).start()
        meta["workers"] = args.workers
        print(f"spawned in-process server at {base_url} "
              f"({args.workers} worker(s))")
    try:
        options = LoadtestOptions(
            clients=args.clients,
            target_qps=args.qps,
            parity_every=args.parity_every,
        )
        report = run_loadtest(base_url, mix, options, store=store, meta=meta)
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()

    print(render_serve_report(report))
    failures = 0
    if args.smoke or args.check:
        gates = evaluate_serve_gates(report)
        print("\nstructural gates:")
        for gate in gates:
            print(f"  {gate.render()}")
        failures += sum(1 for g in gates if not g.passed)
    if args.check:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"\nbaseline {baseline_path} not found; cannot --check")
            failures += 1
        else:
            baseline = read_serve_report(baseline_path)
            comparisons = compare_serve_reports(report, baseline)
            mismatched = [c for c in comparisons if not c.passed]
            print(
                f"\nbaseline comparison vs {baseline_path}: "
                f"{len(comparisons) - len(mismatched)}/{len(comparisons)} "
                "checks match"
            )
            for comparison in mismatched:
                print(f"  {comparison.render()}")
            for line in serve_wall_clock_deltas(report, baseline):
                print(f"  {line}")
            failures += len(mismatched)
    if args.out:
        write_serve_report(report, args.out)
        print(f"\nserve report written to {args.out}")
    if failures:
        print(f"\n{failures} loadtest gate(s) failed")
        return 1
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    """Run the derived-metric observer panel, store-first.

    Single-seed: the observer reports (with per-round trend flags) over
    one campaign.  ``--rounds`` runs a longer horizon than the default
    scenario; ``--seeds`` sweeps the panel over several seeds and prints
    the headline spread.  ``--json`` emits the canonical report document
    — byte-identical across execution backends, which the CI
    observer-parity job diffs directly.
    """
    from .data.columnar import ColumnarRepository
    from .engine import WEEKLY
    from .engine.store import config_digest
    from .observers import canonical_json, run_panel

    _apply_cache_args(args)
    execution = _execution_from(args)
    store = scenario.get_store() if execution is None else None
    seeds = args.seeds if args.seeds else [args.seed]
    names = args.observers or None
    documents: dict[int, tuple[str, dict]] = {}
    for seed in seeds:
        config = _with_transition(
            _with_faults(small_config(seed=seed, scale=args.scale), args),
            args,
        )
        if args.rounds is not None:
            config = dataclasses.replace(
                config,
                campaign=dataclasses.replace(
                    config.campaign, n_rounds=args.rounds
                ),
            )
        digest = config_digest(config, WEEKLY)
        repository = None
        if store is not None:
            repository = store.load_repository(config, kind=WEEKLY)
        if repository is None:
            world = build_world(config)
            result = run_campaign(world, execution=execution)
            repository = result.repository
            if store is not None:
                store.save(
                    config, result.repository, result.reports, kind=WEEKLY,
                    world=world,
                )
        columnar = ColumnarRepository.from_repository(repository)
        reports = run_panel(columnar, campaign_digest=digest, names=names)
        if store is not None:
            store.save_observer_reports(digest, reports)
        documents[seed] = (digest, reports)

    if args.json:
        if len(seeds) == 1:
            digest, reports = documents[seeds[0]]
            doc = {
                "campaign_digest": digest,
                "reports": {
                    name: reports[name].to_payload() for name in sorted(reports)
                },
            }
        else:
            doc = {
                "sweep": {
                    str(seed): {
                        "campaign_digest": documents[seed][0],
                        "reports": {
                            name: documents[seed][1][name].to_payload()
                            for name in sorted(documents[seed][1])
                        },
                    }
                    for seed in seeds
                }
            }
        sys.stdout.buffer.write(canonical_json(doc) + b"\n")
        return 0

    from .observers import get_observer

    for seed in seeds:
        digest, reports = documents[seed]
        print(f"campaign {digest[:16]} (seed {seed}):")
        print(f"  {'OBSERVER':18s} {'VER':>3s}  {'HEADLINE':>28s}  "
              f"{'TRENDS':>6s}  DIGEST")
        for name in sorted(reports):
            report = reports[name]
            observer = get_observer(name)
            value = report.body["summary"].get(observer.headline)
            rendered = (
                f"{observer.headline}={value:.4f}"
                if isinstance(value, float)
                else f"{observer.headline}={value}"
            )
            n_flags = len(report.body.get("trends", []))
            print(
                f"  {name:18s} {report.version:>3d}  {rendered:>28s}  "
                f"{n_flags:>6d}  {report.digest[:12]}"
            )
        for name in sorted(reports):
            for flag in reports[name].body.get("trends", []):
                arrow = "rising" if flag["direction"] > 0 else "falling"
                print(
                    f"  trend: {name}/{flag['series']} {flag['kind']} "
                    f"{arrow} (magnitude {flag['magnitude']:+.4f})"
                )
    if len(seeds) > 1:
        print("headline spread across seeds:")
        observers_in_all = sorted(documents[seeds[0]][1])
        for name in observers_in_all:
            headline = get_observer(name).headline
            values = [
                documents[seed][1][name].body["summary"].get(headline)
                for seed in seeds
            ]
            numeric = [v for v in values if isinstance(v, (int, float))]
            if not numeric:
                continue
            mean = sum(numeric) / len(numeric)
            print(
                f"  {name:18s} {headline}: min {min(numeric):.4f}  "
                f"mean {mean:.4f}  max {max(numeric):.4f}"
            )
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune the on-disk campaign store."""
    import json as json_module

    _apply_cache_args(args)
    store = scenario.get_store()
    if store is None:
        print("repro cache: the campaign store is disabled")
        return 1
    if args.cache_command == "ls":
        entries = store.entries()
        if args.json:
            print(
                json_module.dumps(
                    [
                        {
                            "digest": e.digest,
                            "kind": e.kind,
                            "seed": e.seed,
                            "repository_digest": e.repository_digest,
                            "size_bytes": e.size_bytes,
                            "artifacts": e.artifact_sizes(),
                        }
                        for e in entries
                    ],
                    indent=2,
                )
            )
            return 0
        if not entries:
            print(f"no stored campaigns under {store.root}")
            return 0
        print(
            f"{'DIGEST':16s}  {'KIND':8s}  {'SEED':>10s}  {'SIZE':>10s}  "
            f"{'BIN':>10s}  {'JSON':>10s}  FORMATS"
        )
        for entry in entries:
            seed = "-" if entry.seed is None else str(entry.seed)
            artifacts = entry.artifact_sizes()
            binary_size = artifacts.get("columnar.bin")
            json_size = artifacts.get("columnar.json")
            formats = ",".join(
                label
                for label, present in (
                    ("bin", binary_size is not None),
                    ("json", json_size is not None),
                )
                if present
            ) or "-"
            print(
                f"{entry.digest[:16]:16s}  {entry.kind:8s}  {seed:>10s}  "
                f"{entry.size_bytes:>10d}  "
                f"{'-' if binary_size is None else binary_size:>10}  "
                f"{'-' if json_size is None else json_size:>10}  "
                f"{formats}"
            )
        return 0
    # prune
    removed = store.prune(args.keep_latest)
    kept = len(store.entries())
    print(
        f"pruned {len(removed)} stored campaign(s); {kept} kept "
        f"under {store.root}"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run the small campaign under tracing; print the phase breakdown."""
    obs.enable()
    config = small_config(seed=args.seed, scale=args.scale)
    world = build_world(config)
    result = run_campaign(world, execution=_execution_from(args))
    build_contexts(config, result)
    report = obs.build_report(
        bench="profile_small",
        meta={"seed": args.seed, "scale": args.scale},
    )
    print(obs.render_breakdown(report))
    path = obs.write_report(
        args.out,
        bench="profile_small",
        meta={"seed": args.seed, "scale": args.scale},
    )
    print(f"profile report written to {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf workloads; gate on deterministic work counters."""
    report = run_bench(
        seed=args.seed, scale=args.scale, workloads=args.workloads or None
    )
    print(render_report(report))
    failures = 0
    if args.smoke or args.check:
        gates = evaluate_gates(report)
        print("\nstructural gates:")
        for gate in gates:
            print(f"  {gate.render()}")
        failures += sum(1 for g in gates if not g.passed)
    if args.check:
        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"\nbaseline {baseline_path} not found; cannot --check")
            failures += 1
        else:
            baseline = read_bench_report(baseline_path)
            comparisons = compare_reports(report, baseline)
            mismatched = [c for c in comparisons if not c.passed]
            print(
                f"\nbaseline comparison vs {baseline_path}: "
                f"{len(comparisons) - len(mismatched)}/{len(comparisons)} "
                "counters match"
            )
            for comparison in mismatched:
                print(f"  {comparison.render()}")
            for line in wall_clock_deltas(report, baseline):
                print(f"  {line}")
            failures += len(mismatched)
    if args.compare:
        compare_path = pathlib.Path(args.compare)
        if not compare_path.exists():
            print(f"\ncomparison report {compare_path} not found")
            failures += 1
        else:
            print()
            print(render_bench_comparison(read_bench_report(compare_path), report))
    if args.out:
        path = write_bench_report(report, args.out)
        print(f"\nbench report written to {path}")
    if failures:
        print(f"\n{failures} perf gate(s) failed")
        return 1
    return 0


def _cmd_show_config(args: argparse.Namespace) -> int:
    config = default_config()
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            print(f"[{field.name}]")
            for sub in dataclasses.fields(value):
                print(f"  {sub.name} = {getattr(value, sub.name)}")
        else:
            print(f"{field.name} = {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL"],
        help="enable structured logging to stderr at this level",
    )
    parser.add_argument(
        "--log-format",
        default="kv",
        choices=["kv", "json"],
        help="structured log line format (default: key=value)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_all = sub.add_parser("run-all", help="reproduce every figure and table")
    run_all.add_argument("--scale", type=float, default=0.5)
    run_all.add_argument("--seed", type=int, default=20111206)
    run_all.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="write a JSON observability report to PATH",
    )
    run_all.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    run_all.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk campaign store",
    )
    _add_execution_args(run_all)
    _add_faults_arg(run_all)
    _add_transition_arg(run_all)
    run_all.set_defaults(func=_cmd_run_all)

    quickrun = sub.add_parser("quickrun", help="small world, H1/H2 verdicts")
    quickrun.add_argument("--scale", type=float, default=1.0)
    quickrun.add_argument("--seed", type=int, default=11)
    _add_execution_args(quickrun)
    _add_faults_arg(quickrun)
    _add_transition_arg(quickrun)
    quickrun.set_defaults(func=_cmd_quickrun)

    export = sub.add_parser("export", help="export campaign data to CSV")
    export.add_argument("--out", required=True)
    export.add_argument("--scale", type=float, default=1.0)
    export.add_argument("--seed", type=int, default=11)
    export.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    export.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk campaign store",
    )
    _add_execution_args(export)
    _add_faults_arg(export)
    _add_transition_arg(export)
    export.set_defaults(func=_cmd_export)

    serve = sub.add_parser(
        "serve", help="serve stored campaigns over an HTTP JSON API"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    serve.add_argument(
        "--max-rows",
        type=int,
        default=10_000,
        help="per-request row ceiling (larger requests get a 413)",
    )
    serve.add_argument(
        "--lru",
        type=int,
        default=None,
        help="loaded campaigns kept in memory (default: $REPRO_SERVE_LRU or 4)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker threads requests are dispatched across "
        "(0 = one thread per request; default: 4)",
    )
    serve.add_argument(
        "--response-cache",
        type=int,
        default=None,
        metavar="N",
        help="response-cache capacity in entries (0 disables; default: 256)",
    )
    serve.add_argument(
        "--verify-cache-hits",
        action="store_true",
        help="byte-verify every response-cache hit against a fresh "
        "computation (slow; for soak testing)",
    )
    serve.add_argument(
        "--reuse-port",
        action="store_true",
        help="set SO_REUSEPORT so several serve processes share one port",
    )
    serve.set_defaults(func=_cmd_serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="replay a seeded Zipf-skewed query mix against repro serve",
    )
    loadtest.add_argument(
        "--url",
        default=None,
        help="base URL of a running server (default: spawn one in-process)",
    )
    loadtest.add_argument("--seed", type=int, default=11)
    loadtest.add_argument("--scale", type=float, default=0.4)
    loadtest.add_argument(
        "--requests",
        type=int,
        default=None,
        help="requests to replay (default: 2000, or 240 with --smoke)",
    )
    loadtest.add_argument(
        "--clients",
        type=int,
        default=8,
        help="concurrent client threads (default: 8)",
    )
    loadtest.add_argument(
        "--qps",
        type=float,
        default=None,
        help="target total request rate (default: unpaced)",
    )
    loadtest.add_argument(
        "--zipf-s",
        type=float,
        default=1.1,
        help="Zipf skew exponent of the query mix (default: 1.1)",
    )
    loadtest.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads for the in-process server (default: 2)",
    )
    loadtest.add_argument(
        "--parity-every",
        type=int,
        default=10,
        metavar="K",
        help="byte-verify every K-th response against direct computation "
        "(0 disables; default: 10)",
    )
    loadtest.add_argument(
        "--smoke",
        action="store_true",
        help="small request preset + structural gates (exit 1 on failure)",
    )
    loadtest.add_argument(
        "--check",
        action="store_true",
        help="also compare the mix digest and error block vs --baseline",
    )
    loadtest.add_argument(
        "--baseline",
        default="BENCH_serve.json",
        help="baseline serve report for --check (default: BENCH_serve.json)",
    )
    loadtest.add_argument(
        "--out",
        default=None,
        help="write the JSON serve report to this path",
    )
    loadtest.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    loadtest.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk campaign store (loadtest then fails)",
    )
    _add_execution_args(loadtest)
    loadtest.set_defaults(func=_cmd_loadtest)

    observe = sub.add_parser(
        "observe", help="run the derived-metric observer panel"
    )
    observe.add_argument("--scale", type=float, default=1.0)
    observe.add_argument("--seed", type=int, default=11)
    observe.add_argument(
        "--rounds",
        type=int,
        default=None,
        help="override the campaign round count (long-horizon mode)",
    )
    observe.add_argument(
        "--seeds",
        type=int,
        nargs="*",
        default=None,
        help="sweep the panel over several seeds and print headline spread",
    )
    observe.add_argument(
        "--observers",
        nargs="*",
        default=None,
        metavar="NAME",
        help="subset of the observer panel to run (default: all)",
    )
    observe.add_argument(
        "--json",
        action="store_true",
        help="emit the canonical report document on stdout",
    )
    observe.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    observe.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk campaign store",
    )
    _add_execution_args(observe)
    _add_faults_arg(observe)
    _add_transition_arg(observe)
    observe.set_defaults(func=_cmd_observe)

    cache = sub.add_parser("cache", help="inspect the campaign store")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_ls = cache_sub.add_parser("ls", help="list stored campaigns")
    cache_ls.add_argument("--json", action="store_true")
    cache_ls.add_argument("--cache-dir", metavar="DIR", default=None)
    cache_ls.set_defaults(func=_cmd_cache)
    cache_prune = cache_sub.add_parser(
        "prune", help="delete all but the newest N stored campaigns"
    )
    cache_prune.add_argument("--keep-latest", type=int, required=True)
    cache_prune.add_argument("--cache-dir", metavar="DIR", default=None)
    cache_prune.set_defaults(func=_cmd_cache)

    profile = sub.add_parser(
        "profile", help="run the small campaign and print a phase-time breakdown"
    )
    profile.add_argument("--scale", type=float, default=1.0)
    profile.add_argument("--seed", type=int, default=11)
    profile.add_argument("--out", default=PROFILE_DEFAULT_OUT)
    _add_execution_args(profile)
    profile.set_defaults(func=_cmd_profile)

    bench = sub.add_parser(
        "bench",
        help="run the perf workloads and check the deterministic gates",
    )
    bench.add_argument("--scale", type=float, default=BENCH_DEFAULT_SCALE)
    bench.add_argument("--seed", type=int, default=BENCH_DEFAULT_SEED)
    bench.add_argument(
        "--workloads",
        nargs="*",
        choices=sorted(WORKLOADS),
        default=None,
        help="subset of workloads to run (default: all)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="evaluate the structural work-counter gates (exit 1 on failure)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="also compare work counters against --baseline (exact match)",
    )
    bench.add_argument(
        "--baseline",
        default=BENCH_DEFAULT_OUT,
        help=f"baseline report for --check (default: {BENCH_DEFAULT_OUT})",
    )
    bench.add_argument(
        "--compare",
        metavar="PATH",
        default=None,
        help="print a speedup summary (median old/new, counter deltas) "
        "against an older bench report",
    )
    bench.add_argument(
        "--out",
        default=None,
        help="write the JSON bench report to this path",
    )
    bench.set_defaults(func=_cmd_bench)

    show = sub.add_parser("show-config", help="print the default scenario")
    show.set_defaults(func=_cmd_show_config)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level:
        obs.setup_logging(level=args.log_level, fmt=args.log_format)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
