"""Command-line interface.

Subcommands::

    repro run-all   [--scale S] [--seed N]     # every figure and table
    repro quickrun  [--seed N]                 # small world + H1/H2 verdicts
    repro export    --out DIR [--seed N]       # campaign data as CSV + manifest
    repro show-config                          # the default scenario, as text

Installed as the ``repro`` console script (or run via
``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import sys

from .analysis.hypotheses import ASVerdict, verdict_fractions
from .config import default_config, small_config
from .core import build_world, run_campaign
from .experiments import run_all as run_all_module
from .experiments.scenario import build_contexts
from .monitor.export import export_repository


def _cmd_run_all(args: argparse.Namespace) -> int:
    argv = ["--scale", str(args.scale), "--seed", str(args.seed)]
    return run_all_module.main(argv)


def _cmd_quickrun(args: argparse.Namespace) -> int:
    config = small_config(seed=args.seed)
    world = build_world(config)
    result = run_campaign(world)
    contexts = build_contexts(config, result)
    print("vantage    SP comparable   DP comparable")
    for name, context in contexts.items():
        sp = verdict_fractions(context.sp_evaluations.values())
        dp = verdict_fractions(context.dp_evaluations.values())
        print(
            f"{name:9s}  {100 * sp[ASVerdict.COMPARABLE]:12.1f}%  "
            f"{100 * dp[ASVerdict.COMPARABLE]:12.1f}%"
        )
    print("H1 expects the left column high; H2 expects the right column low.")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    config = small_config(seed=args.seed)
    world = build_world(config)
    result = run_campaign(world)
    manifest = export_repository(result.repository, pathlib.Path(args.out))
    print(f"exported campaign data; manifest at {manifest}")
    return 0


def _cmd_show_config(args: argparse.Namespace) -> int:
    config = default_config()
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            print(f"[{field.name}]")
            for sub in dataclasses.fields(value):
                print(f"  {sub.name} = {getattr(value, sub.name)}")
        else:
            print(f"{field.name} = {value}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_all = sub.add_parser("run-all", help="reproduce every figure and table")
    run_all.add_argument("--scale", type=float, default=0.5)
    run_all.add_argument("--seed", type=int, default=20111206)
    run_all.set_defaults(func=_cmd_run_all)

    quickrun = sub.add_parser("quickrun", help="small world, H1/H2 verdicts")
    quickrun.add_argument("--seed", type=int, default=11)
    quickrun.set_defaults(func=_cmd_quickrun)

    export = sub.add_parser("export", help="export campaign data to CSV")
    export.add_argument("--out", required=True)
    export.add_argument("--seed", type=int, default=11)
    export.set_defaults(func=_cmd_export)

    show = sub.add_parser("show-config", help="print the default scenario")
    show.set_defaults(func=_cmd_show_config)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
