"""Struct-of-arrays encodings of the measurement tables.

The paper promised public access to its measurement data (§5.5); the
CampaignStore already persists campaigns as row-oriented JSON.  This
module adds the columnar layer on top: every table of a
:class:`~repro.monitor.database.MeasurementDatabase` — DNS observations,
page checks, downloads, AS paths, faults, plus the per-round DNS
counters — as typed columns, with dictionary encoding for the low-
cardinality values (address family, fault kind, AS path) and lazily
built per-``(site_id, family, round)`` sorted indices for point lookups.

Columns are backed by compact typed storage rather than Python lists:
``array('q')`` for i64, ``array('d')`` for f64, one byte per row for
bool, ``array('I')`` codes for dictionary columns.  Only str columns
keep a Python list.  Decoded binary columns are zero-copy
``memoryview`` casts over the mapped file bytes.

Bit-identity contract: the columnar form is defined as a *transposition*
of :meth:`MeasurementDatabase.to_dict`'s wire rows, and decoding rebuilds
the database through :meth:`MeasurementDatabase.from_dict`, so a
round trip (rows → columns → rows) reproduces the original database —
and therefore :meth:`CentralRepository.content_digest` — bit for bit.

Two artifact forms exist side by side:

``columnar.json``
    The canonical interchange form (one :class:`ColumnarRepository`
    payload), loadable without unpickling the world or importing the
    monitor.  :func:`write_columnar_json` streams it column-at-a-time
    so encode never duplicates the whole campaign in memory.

``columnar.bin``
    The fast-load binary form: a struct-packed header
    (``magic, version, meta length, sha256``), a canonical-JSON
    metadata blob naming every column's byte range (dictionaries
    inline), then 8-byte-aligned little-endian raw column buffers.
    The sha256 covers metadata plus body and is computed incrementally
    at write time — the content digest never needs the full JSON
    materialised — and verified on every load.  Decoding is lazy at
    table granularity: :class:`LazyColumnarDatabase` materialises a
    table only when it is first touched.
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
from array import array
from bisect import bisect_left, bisect_right
from collections.abc import Mapping
from dataclasses import dataclass, field

from ..errors import DataError
from ..monitor.aggregate import CentralRepository
from ..monitor.database import (
    FAULT_KINDS,
    TRANSITION_KINDS,
    MeasurementDatabase,
)
from ..monitor.vantage import VantagePoint
from ..net.addresses import AddressFamily
from ..obs import metrics

#: columnar file-format version; bumped on incompatible layout changes.
COLUMNAR_FORMAT = 1

#: binary (``columnar.bin``) format version; independent of the JSON form.
BINARY_FORMAT = 1

#: magic prefix of every ``columnar.bin`` file.
BINARY_MAGIC = b"RPRCOL"

#: header: magic, u16 version, u64 metadata length, sha256(meta || body).
_BINARY_HEADER = struct.Struct("<6sHQ32s")

#: fixed dictionary for family columns (codes are list positions).
FAMILY_DICTIONARY = (AddressFamily.IPV4.value, AddressFamily.IPV6.value)

#: plain column dtypes a payload may declare.
DTYPES = ("i64", "f64", "bool", "str")

#: array typecodes backing the fixed-width plain dtypes.
_TYPECODES = {"i64": "q", "f64": "d"}

_BOOLS = (False, True)

#: conversion effectiveness counters (serve's LRU and the store read these).
_ENCODES = metrics.counter("data.columnar.encodes")
_DECODES = metrics.counter("data.columnar.decodes")
_BIN_ENCODES = metrics.counter("data.columnar.bin_encodes")
_BIN_DECODES = metrics.counter("data.columnar.bin_decodes")
_BIN_DIGEST_VERIFIED = metrics.counter("data.columnar.bin_digest_verified")
_BIN_TABLE_DECODES = metrics.counter("data.columnar.bin_table_decodes")


def _plain_storage(name: str, dtype: str, values):
    """Coerce ``values`` into the compact backing store for ``dtype``.

    Typed buffers (arrays, memoryview casts, bool byte strings) pass
    through untouched, so binary decode stays zero-copy.
    """
    if dtype in _TYPECODES:
        if isinstance(values, (array, memoryview)):
            return values
        try:
            return array(_TYPECODES[dtype], values)
        except (TypeError, ValueError, OverflowError) as exc:
            raise DataError(
                f"column {name!r}: value not storable as {dtype}: {exc}"
            ) from exc
    if dtype == "bool":
        if isinstance(values, (bytes, bytearray, memoryview)):
            return values
        out = bytearray(len(values))
        for i, value in enumerate(values):
            if value is True:
                out[i] = 1
            elif value is not False:
                raise DataError(
                    f"column {name!r}: value {value!r} not storable as bool"
                )
        return bytes(out)
    # str columns stay a Python list (variable-width values).
    return values if isinstance(values, list) else list(values)


class Column:
    """One plainly-stored typed column over compact array storage."""

    __slots__ = ("name", "dtype", "values")

    def __init__(self, name: str, dtype: str, values) -> None:
        if dtype not in DTYPES:
            raise DataError(f"unknown column dtype {dtype!r}")
        self.name = name
        self.dtype = dtype
        self.values = _plain_storage(name, dtype, values)

    @classmethod
    def _from_storage(cls, name: str, dtype: str, storage) -> "Column":
        column = object.__new__(cls)
        column.name = name
        column.dtype = dtype
        column.values = storage
        return column

    def __len__(self) -> int:
        return len(self.values)

    def get(self, row: int):
        if self.dtype == "bool":
            return _BOOLS[self.values[row]]
        return self.values[row]

    def raw(self, row: int):
        """The sortable storage value (bool columns yield 0/1 here)."""
        return self.values[row]

    def take(self, rows) -> list:
        """Bulk-decode the given row ids into wire values."""
        values = self.values
        if self.dtype == "bool":
            return [_BOOLS[values[row]] for row in rows]
        return [values[row] for row in rows]

    def values_list(self) -> list:
        """Every wire value, in row order (str columns: no copy)."""
        if self.dtype == "bool":
            return [_BOOLS[value] for value in self.values]
        if self.dtype == "str":
            return self.values
        return list(self.values)

    def to_payload(self) -> dict:
        return {"dtype": self.dtype, "values": self.values_list()}


class DictColumn:
    """A dictionary-encoded column: per-row codes into a value list.

    Used for the low-cardinality columns — address family, fault kind —
    and for AS paths, where a campaign observes few distinct paths but
    records one per (site, family, round).  Codes live in an
    ``array('I')`` (or a memoryview cast over mapped binary bytes).
    """

    __slots__ = ("name", "codes", "dictionary", "_positions")

    def __init__(self, name: str, codes, dictionary) -> None:
        self.name = name
        self.dictionary = (
            dictionary if isinstance(dictionary, list) else list(dictionary)
        )
        n = len(self.dictionary)
        if isinstance(codes, (array, memoryview)):
            store = codes
        else:
            try:
                store = array("I", codes)
            except (TypeError, ValueError, OverflowError) as exc:
                raise DataError(
                    f"column {name!r}: code outside dictionary of "
                    f"{n} entries ({exc})"
                ) from exc
        if len(store) and max(store) >= n:
            raise DataError(
                f"column {name!r}: code {max(store)!r} outside "
                f"dictionary of {n} entries"
            )
        self.codes = store
        self._positions = None

    @classmethod
    def _from_storage(cls, name: str, codes, dictionary: list) -> "DictColumn":
        column = object.__new__(cls)
        column.name = name
        column.codes = codes
        column.dictionary = dictionary
        column._positions = None
        return column

    def __len__(self) -> int:
        return len(self.codes)

    def get(self, row: int):
        return self.dictionary[self.codes[row]]

    def raw(self, row: int) -> int:
        return self.codes[row]

    def take(self, rows) -> list:
        dictionary = self.dictionary
        codes = self.codes
        return [dictionary[codes[row]] for row in rows]

    def values_list(self) -> list:
        dictionary = self.dictionary
        return [dictionary[code] for code in self.codes]

    def encode(self, value) -> int | None:
        """The code for ``value``, or None when it never occurs."""
        positions = self._positions
        if positions is None:
            positions = {}
            for i, entry in enumerate(self.dictionary):
                key = tuple(entry) if isinstance(entry, list) else entry
                positions.setdefault(key, i)
            self._positions = positions
        key = tuple(value) if isinstance(value, list) else value
        try:
            return positions.get(key)
        except TypeError:
            return None

    def to_payload(self) -> dict:
        return {
            "dtype": "dict",
            "codes": list(self.codes),
            "dictionary": self.dictionary,
        }


def _column_from_payload(name: str, payload: dict) -> "Column | DictColumn":
    try:
        dtype = payload["dtype"]
        if dtype == "dict":
            return DictColumn(
                name=name,
                codes=payload["codes"],
                dictionary=payload["dictionary"],
            )
        return Column(name=name, dtype=dtype, values=payload["values"])
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed column payload for {name!r}: {exc}") from exc


class SortedIndex:
    """Row ids sorted by a key-column tuple, with equal-range lookup.

    The sort is stable, so within one full key the original row order —
    the monitor's monotone round order — is preserved, and an equal-range
    probe on a key *prefix* (``site_id`` alone, or ``site_id, family``)
    returns rows in ascending row id.
    """

    def __init__(self, table: "ColumnarTable", keys: tuple[str, ...]) -> None:
        self.keys = keys
        columns = [table.column(key) for key in keys]

        def key_of(row: int) -> tuple:
            return tuple(column.raw(row) for column in columns)

        self.order = sorted(range(table.n_rows), key=key_of)
        self._tuples = [key_of(row) for row in self.order]

    def equal_range(self, prefix: tuple) -> list[int]:
        """Row ids whose key starts with ``prefix``, ascending."""
        k = len(prefix)
        lo = bisect_left(self._tuples, prefix, key=lambda t: t[:k])
        hi = bisect_right(self._tuples, prefix, key=lambda t: t[:k])
        return sorted(self.order[lo:hi])


#: table name -> (column name, dtype or "dict") in wire-row order.
TABLE_SCHEMAS: dict[str, tuple[tuple[str, str], ...]] = {
    "dns": (
        ("site_id", "i64"), ("name", "str"), ("round", "i64"),
        ("has_v4", "bool"), ("has_v6", "bool"), ("listed", "bool"),
    ),
    "dns_counts": (
        ("round", "i64"), ("queried", "i64"),
        ("with_a", "i64"), ("with_aaaa", "i64"),
    ),
    "page_checks": (
        ("site_id", "i64"), ("round", "i64"), ("v4_bytes", "i64"),
        ("v6_bytes", "i64"), ("identical", "bool"),
    ),
    "downloads": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("n_samples", "i64"), ("mean_speed", "f64"), ("ci_half_width", "f64"),
        ("converged", "bool"), ("page_bytes", "i64"), ("timestamp", "f64"),
    ),
    "paths": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("dest_asn", "i64"), ("as_path", "dict"),
    ),
    "faults": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("kind", "dict"),
    ),
    "transitions": (
        ("site_id", "i64"), ("round", "i64"), ("transition", "dict"),
    ),
}

#: the key columns each table's sorted index covers (prefix-probe order:
#: equality pushdown needs site_id first, then family).
TABLE_INDEX_KEYS: dict[str, tuple[str, ...]] = {
    "dns": ("site_id", "round"),
    "dns_counts": ("round",),
    "page_checks": ("site_id", "round"),
    "downloads": ("site_id", "family", "round"),
    "paths": ("site_id", "family", "round"),
    "faults": ("site_id", "family", "round"),
    "transitions": ("site_id", "round"),
}

#: columns with a *fixed* dictionary (shared vocabulary, stable codes).
#: the transitions table names its kind column "transition" so the two
#: vocabularies ("kind" = fault kinds) never collide here.
_FIXED_DICTIONARIES = {
    "family": list(FAMILY_DICTIONARY),
    "kind": list(FAULT_KINDS),
    "transition": list(TRANSITION_KINDS),
}


class ColumnarTable:
    """One table as named columns plus lazily built sorted indices."""

    def __init__(
        self, name: str, columns: dict[str, "Column | DictColumn"]
    ) -> None:
        self.name = name
        self.columns = columns
        lengths = {len(column) for column in columns.values()}
        if len(lengths) > 1:
            raise DataError(
                f"table {name!r}: ragged columns (lengths {sorted(lengths)})"
            )
        self.n_rows = lengths.pop() if lengths else 0
        self._indices: dict[tuple[str, ...], SortedIndex] = {}

    def column(self, name: str) -> "Column | DictColumn":
        if name not in self.columns:
            raise DataError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self.columns)})"
            )
        return self.columns[name]

    @property
    def index_keys(self) -> tuple[str, ...]:
        return TABLE_INDEX_KEYS[self.name]

    def index(self, keys: tuple[str, ...] | None = None) -> SortedIndex:
        keys = keys or self.index_keys
        if keys not in self._indices:
            self._indices[keys] = SortedIndex(self, keys)
        return self._indices[keys]

    def rows(self) -> list[list]:
        """Wire rows (the ``to_dict`` layout) rebuilt from the columns."""
        decoded = [
            self.columns[name].values_list()
            for name, _ in TABLE_SCHEMAS[self.name]
        ]
        return [list(row) for row in zip(*decoded)]

    def to_payload(self) -> dict:
        return {
            "n_rows": self.n_rows,
            "columns": {
                name: column.to_payload() for name, column in self.columns.items()
            },
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "ColumnarTable":
        if name not in TABLE_SCHEMAS:
            raise DataError(f"unknown columnar table {name!r}")
        try:
            columns_payload = payload["columns"]
            declared = payload["n_rows"]
        except (KeyError, TypeError) as exc:
            raise DataError(f"malformed table payload for {name!r}") from exc
        columns: dict[str, Column | DictColumn] = {}
        for column_name, dtype in TABLE_SCHEMAS[name]:
            if column_name not in columns_payload:
                raise DataError(f"table {name!r} misses column {column_name!r}")
            column = _column_from_payload(
                column_name, columns_payload[column_name]
            )
            expected = "dict" if dtype == "dict" else dtype
            actual = "dict" if isinstance(column, DictColumn) else column.dtype
            if actual != expected:
                raise DataError(
                    f"table {name!r} column {column_name!r}: dtype "
                    f"{actual!r}, schema requires {expected!r}"
                )
            columns[column_name] = column
        table = cls(name, columns)
        if table.n_rows != declared:
            raise DataError(
                f"table {name!r}: declared {declared} rows, "
                f"columns hold {table.n_rows}"
            )
        return table

    @classmethod
    def from_rows(cls, name: str, rows: list) -> "ColumnarTable":
        """Transpose wire rows into columns (dictionary-encoding as set
        by the schema; AS-path dictionaries are first-appearance order)."""
        schema = TABLE_SCHEMAS[name]
        columns: dict[str, Column | DictColumn] = {}
        for position, (column_name, dtype) in enumerate(schema):
            values = [row[position] for row in rows]
            if dtype != "dict":
                columns[column_name] = Column(column_name, dtype, values)
                continue
            if column_name in _FIXED_DICTIONARIES:
                dictionary = list(_FIXED_DICTIONARIES[column_name])
                positions = {value: i for i, value in enumerate(dictionary)}
            else:
                dictionary, positions = [], {}
            codes = []
            for value in values:
                key = tuple(value) if isinstance(value, list) else value
                if key not in positions:
                    positions[key] = len(dictionary)
                    dictionary.append(value)
                codes.append(positions[key])
            columns[column_name] = DictColumn(column_name, codes, dictionary)
        return cls(name, columns)


class ColumnarDatabase:
    """Every table of one vantage point's database, in columnar form."""

    def __init__(
        self, vantage_name: str, tables: "Mapping[str, ColumnarTable]"
    ) -> None:
        self.vantage_name = vantage_name
        self.tables = tables

    def table(self, name: str) -> ColumnarTable:
        if name not in self.tables:
            raise DataError(
                f"unknown table {name!r} (tables: {', '.join(self.tables)})"
            )
        return self.tables[name]

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    def row_counts(self) -> dict[str, int]:
        return {name: table.n_rows for name, table in self.tables.items()}

    @classmethod
    def from_database(cls, db: MeasurementDatabase) -> "ColumnarDatabase":
        """Encode a database by transposing its wire-form rows."""
        _ENCODES.inc()
        data = db.to_dict()
        tables = {
            name: ColumnarTable.from_rows(name, data.get(name, []))
            for name in TABLE_SCHEMAS
        }
        return cls(vantage_name=data["vantage_name"], tables=tables)

    def to_database(self) -> MeasurementDatabase:
        """Decode back to row objects through the wire-format loader, so
        the monotone-round invariants are re-validated and the rebuilt
        database is bit-identical to the encoded one."""
        from ..monitor.database import SERIAL_FORMAT

        _DECODES.inc()
        data = {
            "format": SERIAL_FORMAT,
            "vantage_name": self.vantage_name,
            "dns": self.tables["dns"].rows(),
            "dns_counts": self.tables["dns_counts"].rows(),
            "page_checks": self.tables["page_checks"].rows(),
            "downloads": self.tables["downloads"].rows(),
            "paths": self.tables["paths"].rows(),
        }
        faults = self.tables["faults"].rows()
        if faults:
            data["faults"] = faults
        transitions = self.tables["transitions"].rows()
        if transitions:
            data["transitions"] = transitions
        return MeasurementDatabase.from_dict(data)

    def to_payload(self) -> dict:
        return {
            "vantage_name": self.vantage_name,
            "tables": {
                name: table.to_payload() for name, table in self.tables.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarDatabase":
        try:
            vantage_name = payload["vantage_name"]
            tables_payload = payload["tables"]
        except (KeyError, TypeError) as exc:
            raise DataError("malformed columnar database payload") from exc
        tables = {}
        for name in TABLE_SCHEMAS:
            if name not in tables_payload:
                raise DataError(f"columnar payload misses table {name!r}")
            tables[name] = ColumnarTable.from_payload(name, tables_payload[name])
        return cls(vantage_name=vantage_name, tables=tables)


class _LazyTables(Mapping):
    """A table map that materialises each table on first access."""

    __slots__ = ("_loaders", "_cache")

    def __init__(self, loaders: dict) -> None:
        self._loaders = dict(loaders)
        self._cache: dict[str, ColumnarTable] = {}

    def __getitem__(self, name: str) -> ColumnarTable:
        table = self._cache.get(name)
        if table is None:
            loader = self._loaders[name]
            table = loader()
            self._cache[name] = table
        return table

    def __iter__(self):
        return iter(self._loaders)

    def __len__(self) -> int:
        return len(self._loaders)


class LazyColumnarDatabase(ColumnarDatabase):
    """A columnar database whose tables decode lazily from binary bytes.

    Row counts come from the binary metadata, so :meth:`row_counts`
    (the ``/campaigns/<digest>`` detail page) touches no column data.
    """

    def __init__(
        self, vantage_name: str, loaders: dict, row_counts: dict[str, int]
    ) -> None:
        super().__init__(vantage_name, _LazyTables(loaders))
        self._row_counts = dict(row_counts)

    def row_counts(self) -> dict[str, int]:
        return dict(self._row_counts)


@dataclass
class ColumnarRepository:
    """A whole campaign — vantage roster plus columnar databases.

    This is the ``columnar.json`` payload the campaign store writes next
    to ``repository.json``; :meth:`to_repository` materialises the
    row-object :class:`CentralRepository` when an analysis needs it.
    """

    vantages: dict[str, dict] = field(default_factory=dict)
    databases: dict[str, ColumnarDatabase] = field(default_factory=dict)

    @classmethod
    def from_repository(cls, repository: CentralRepository) -> "ColumnarRepository":
        vantages, databases = {}, {}
        for vantage, db in repository.items():
            vantages[vantage.name] = vantage.to_dict()
            databases[vantage.name] = ColumnarDatabase.from_database(db)
        return cls(vantages=vantages, databases=databases)

    def to_repository(self) -> CentralRepository:
        repository = CentralRepository()
        for name, vantage_data in self.vantages.items():
            repository.add(
                VantagePoint.from_dict(vantage_data),
                self.databases[name].to_database(),
            )
        return repository

    def to_payload(self) -> dict:
        return {
            "format": COLUMNAR_FORMAT,
            "vantages": list(self.vantages.values()),
            "databases": {
                name: cdb.to_payload() for name, cdb in self.databases.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarRepository":
        fmt = payload.get("format") if isinstance(payload, dict) else None
        if fmt != COLUMNAR_FORMAT:
            raise DataError(
                f"unsupported columnar format {fmt!r} "
                f"(expected {COLUMNAR_FORMAT})"
            )
        try:
            vantage_rows = payload["vantages"]
            database_payloads = payload["databases"]
        except KeyError as exc:
            raise DataError("malformed columnar repository payload") from exc
        vantages, databases = {}, {}
        for vantage_data in vantage_rows:
            name = vantage_data.get("name")
            if name not in database_payloads:
                raise DataError(f"columnar payload misses database {name!r}")
            vantages[name] = vantage_data
            databases[name] = ColumnarDatabase.from_payload(
                database_payloads[name]
            )
        return cls(vantages=vantages, databases=databases)


def columnar_view(db: MeasurementDatabase) -> ColumnarDatabase:
    """The cached columnar view of a database (the query core's input).

    Memoized on the database instance; any table write invalidates, so a
    view taken after the campaign completes is encoded exactly once and
    shared by every analysis pass.
    """
    view = db._columnar_cache
    if view is None:
        view = ColumnarDatabase.from_database(db)
        db._columnar_cache = view
    return view


# ---------------------------------------------------------------------------
# streaming JSON encode (columnar.json without the full-payload copy)


class _LazyPayload:
    """A placeholder the streaming encoder resolves via ``default=``."""

    __slots__ = ("resolve",)

    def __init__(self, resolve) -> None:
        self.resolve = resolve


def _resolve_lazy(obj):
    if isinstance(obj, _LazyPayload):
        return obj.resolve()
    raise TypeError(
        f"object of type {type(obj).__name__} is not JSON serializable"
    )


def _lazy_table_payload(table: ColumnarTable) -> dict:
    return {
        "n_rows": table.n_rows,
        "columns": {
            name: _LazyPayload(column.to_payload)
            for name, column in table.columns.items()
        },
    }


def _lazy_database_payload(cdb: ColumnarDatabase) -> dict:
    tables = cdb.tables
    return {
        "vantage_name": cdb.vantage_name,
        "tables": {
            name: _LazyPayload(lambda n=name: _lazy_table_payload(tables[n]))
            for name in tables
        },
    }


def iter_columnar_json(repository: ColumnarRepository):
    """Chunks of the canonical ``columnar.json`` text, streamed.

    Byte-identical to ``json.dumps(repository.to_payload(),
    separators=(",", ":"))``, but at most one column's value list is
    materialised at a time.
    """
    encoder = json.JSONEncoder(separators=(",", ":"), default=_resolve_lazy)
    head = {
        "format": COLUMNAR_FORMAT,
        "vantages": list(repository.vantages.values()),
        "databases": {
            name: _LazyPayload(lambda c=cdb: _lazy_database_payload(c))
            for name, cdb in repository.databases.items()
        },
    }
    return encoder.iterencode(head)


def write_columnar_json(path, repository: ColumnarRepository) -> None:
    """Stream the canonical JSON artifact to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        for chunk in iter_columnar_json(repository):
            handle.write(chunk)


# ---------------------------------------------------------------------------
# binary encode/decode (columnar.bin)


class _BodyWriter:
    """Accumulates 8-byte-aligned body segments and their offsets."""

    def __init__(self) -> None:
        self.segments: list = []
        self.offset = 0

    def put(self, buffer) -> tuple[int, int]:
        nbytes = memoryview(buffer).nbytes
        start = self.offset
        self.segments.append(buffer)
        self.offset += nbytes
        pad = (-self.offset) % 8
        if pad:
            self.segments.append(b"\x00" * pad)
            self.offset += pad
        return start, nbytes


def _column_binary_desc(
    name: str, column: "Column | DictColumn", body: _BodyWriter
) -> dict:
    """Append one column's raw buffers to ``body``; return its metadata."""
    if isinstance(column, DictColumn):
        codes = column.codes
        if not isinstance(codes, (array, memoryview)):
            codes = array("I", codes)
        offset, nbytes = body.put(codes)
        return {
            "name": name,
            "dtype": "dict",
            "offset": offset,
            "nbytes": nbytes,
            "dictionary": column.dictionary,
        }
    if column.dtype in ("i64", "f64", "bool"):
        offset, nbytes = body.put(column.values)
        return {
            "name": name,
            "dtype": column.dtype,
            "offset": offset,
            "nbytes": nbytes,
        }
    # str: u64 cumulative offsets (n_rows + 1 entries) plus a utf-8 blob.
    try:
        encoded = [value.encode("utf-8") for value in column.values]
    except (AttributeError, UnicodeEncodeError) as exc:
        raise DataError(
            f"column {name!r}: str column holds non-string value: {exc}"
        ) from exc
    offsets = array("Q", [0])
    total = 0
    for item in encoded:
        total += len(item)
        offsets.append(total)
    offset, nbytes = body.put(offsets)
    blob_offset, blob_nbytes = body.put(b"".join(encoded))
    return {
        "name": name,
        "dtype": "str",
        "offset": offset,
        "nbytes": nbytes,
        "blob_offset": blob_offset,
        "blob_nbytes": blob_nbytes,
    }


def encode_columnar_binary(repository: ColumnarRepository) -> tuple[bytes, list, str]:
    """The binary artifact as ``(head_bytes, body_segments, hex_digest)``.

    ``head_bytes`` is header + metadata; ``body_segments`` are the raw
    column buffers (zero-copy references into the live columns).  The
    sha256 is computed incrementally over metadata plus body.
    """
    _BIN_ENCODES.inc()
    body = _BodyWriter()
    databases_meta = []
    for cdb in repository.databases.values():
        tables_meta = []
        for table_name in TABLE_SCHEMAS:
            table = cdb.tables[table_name]
            columns_meta = [
                _column_binary_desc(column_name, table.columns[column_name], body)
                for column_name, _ in TABLE_SCHEMAS[table_name]
            ]
            tables_meta.append(
                {
                    "name": table_name,
                    "n_rows": table.n_rows,
                    "columns": columns_meta,
                }
            )
        databases_meta.append(
            {"vantage_name": cdb.vantage_name, "tables": tables_meta}
        )
    meta = {
        "format": COLUMNAR_FORMAT,
        "binary_format": BINARY_FORMAT,
        "byteorder": sys.byteorder,
        "vantages": list(repository.vantages.values()),
        "databases": databases_meta,
    }
    meta_bytes = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256()
    digest.update(meta_bytes)
    for segment in body.segments:
        digest.update(segment)
    header = _BINARY_HEADER.pack(
        BINARY_MAGIC, BINARY_FORMAT, len(meta_bytes), digest.digest()
    )
    return header + meta_bytes, body.segments, digest.hexdigest()


def write_columnar_binary(path, repository: ColumnarRepository) -> str:
    """Write ``columnar.bin`` to ``path``; returns its hex content digest."""
    head, segments, hex_digest = encode_columnar_binary(repository)
    with open(path, "wb") as handle:
        handle.write(head)
        for segment in segments:
            handle.write(segment)
    return hex_digest


def _binary_column(
    name: str, dtype: str, desc: dict, body: memoryview, n_rows: int
) -> "Column | DictColumn":
    def chunk(offset, nbytes) -> memoryview:
        offset, nbytes = int(offset), int(nbytes)
        if offset < 0 or nbytes < 0 or offset + nbytes > len(body):
            raise DataError(
                f"column {name!r}: buffer [{offset}:{offset + nbytes}] "
                f"outside binary body of {len(body)} bytes"
            )
        return body[offset : offset + nbytes]

    try:
        declared = desc["dtype"]
        expected = "dict" if dtype == "dict" else dtype
        if declared != expected:
            raise DataError(
                f"column {name!r}: binary dtype {declared!r}, "
                f"schema requires {expected!r}"
            )
        if dtype in _TYPECODES:
            buffer = chunk(desc["offset"], desc["nbytes"])
            if len(buffer) != n_rows * 8:
                raise DataError(
                    f"column {name!r}: {len(buffer)} bytes for "
                    f"{n_rows} {dtype} rows"
                )
            return Column._from_storage(
                name, dtype, buffer.cast(_TYPECODES[dtype])
            )
        if dtype == "bool":
            buffer = chunk(desc["offset"], desc["nbytes"])
            if len(buffer) != n_rows:
                raise DataError(
                    f"column {name!r}: {len(buffer)} bytes for "
                    f"{n_rows} bool rows"
                )
            return Column._from_storage(name, "bool", buffer)
        if dtype == "str":
            buffer = chunk(desc["offset"], desc["nbytes"])
            if len(buffer) != (n_rows + 1) * 8:
                raise DataError(
                    f"column {name!r}: {len(buffer)} offset bytes for "
                    f"{n_rows} str rows"
                )
            offsets = buffer.cast("Q")
            blob = chunk(desc["blob_offset"], desc["blob_nbytes"]).tobytes()
            if n_rows and (offsets[0] != 0 or offsets[n_rows] != len(blob)):
                raise DataError(f"column {name!r}: str offsets span mismatch")
            values = []
            for row in range(n_rows):
                start, end = offsets[row], offsets[row + 1]
                if end < start or end > len(blob):
                    raise DataError(
                        f"column {name!r}: str offsets not monotone"
                    )
                values.append(blob[start:end].decode("utf-8"))
            return Column._from_storage(name, "str", values)
        # dict
        buffer = chunk(desc["offset"], desc["nbytes"])
        if len(buffer) != n_rows * 4:
            raise DataError(
                f"column {name!r}: {len(buffer)} bytes for "
                f"{n_rows} dict codes"
            )
        dictionary = desc["dictionary"]
        if not isinstance(dictionary, list):
            raise DataError(f"column {name!r}: malformed binary dictionary")
        codes = buffer.cast("I")
        if n_rows and max(codes) >= len(dictionary):
            raise DataError(
                f"column {name!r}: code {max(codes)!r} outside "
                f"dictionary of {len(dictionary)} entries"
            )
        return DictColumn._from_storage(name, codes, dictionary)
    except (KeyError, TypeError, ValueError, UnicodeDecodeError) as exc:
        raise DataError(
            f"malformed binary column {name!r}: {exc}"
        ) from exc


def _binary_table_loader(table_name: str, table_meta: dict, body: memoryview):
    def load() -> ColumnarTable:
        _BIN_TABLE_DECODES.inc()
        try:
            n_rows = int(table_meta["n_rows"])
            descs = {desc["name"]: desc for desc in table_meta["columns"]}
        except (KeyError, TypeError, ValueError) as exc:
            raise DataError(
                f"malformed binary table metadata for {table_name!r}: {exc}"
            ) from exc
        columns: dict[str, Column | DictColumn] = {}
        for column_name, dtype in TABLE_SCHEMAS[table_name]:
            if column_name not in descs:
                raise DataError(
                    f"binary table {table_name!r} misses column {column_name!r}"
                )
            columns[column_name] = _binary_column(
                column_name, dtype, descs[column_name], body, n_rows
            )
        table = ColumnarTable(table_name, columns)
        if table.n_rows != n_rows:
            raise DataError(
                f"binary table {table_name!r}: declared {n_rows} rows, "
                f"columns hold {table.n_rows}"
            )
        return table

    return load


def decode_columnar_binary(
    data: bytes, *, source: str = "columnar.bin"
) -> ColumnarRepository:
    """Decode a ``columnar.bin`` buffer into a lazily-backed repository.

    The sha256 over metadata plus body is verified before anything else
    is trusted; a truncated or corrupt buffer raises :class:`DataError`.
    Tables materialise on first access (zero-copy memoryview casts over
    ``data``, which the returned columns keep alive).
    """
    if len(data) < _BINARY_HEADER.size:
        raise DataError(
            f"{source}: truncated header ({len(data)} of "
            f"{_BINARY_HEADER.size} bytes)"
        )
    magic, version, meta_length, want = _BINARY_HEADER.unpack_from(data)
    if magic != BINARY_MAGIC:
        raise DataError(f"{source}: bad magic {magic!r}")
    if version != BINARY_FORMAT:
        raise DataError(
            f"{source}: unsupported binary format {version} "
            f"(expected {BINARY_FORMAT})"
        )
    payload = memoryview(data)[_BINARY_HEADER.size :]
    if meta_length > len(payload):
        raise DataError(
            f"{source}: truncated metadata ({len(payload)} of "
            f"{meta_length} bytes)"
        )
    if hashlib.sha256(payload).digest() != want:
        raise DataError(f"{source}: content digest mismatch")
    _BIN_DIGEST_VERIFIED.inc()
    try:
        meta = json.loads(bytes(payload[:meta_length]).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise DataError(f"{source}: malformed metadata: {exc}") from exc
    if not isinstance(meta, dict):
        raise DataError(f"{source}: malformed metadata (not an object)")
    if meta.get("format") != COLUMNAR_FORMAT:
        raise DataError(
            f"{source}: unsupported columnar format {meta.get('format')!r}"
        )
    if meta.get("byteorder") != sys.byteorder:
        raise DataError(
            f"{source}: byteorder {meta.get('byteorder')!r} does not match "
            f"this machine ({sys.byteorder})"
        )
    body = payload[meta_length:]
    try:
        vantage_rows = meta["vantages"]
        database_metas = meta["databases"]
        by_vantage = {
            db_meta["vantage_name"]: db_meta for db_meta in database_metas
        }
    except (KeyError, TypeError) as exc:
        raise DataError(f"{source}: malformed metadata: {exc}") from exc
    vantages: dict[str, dict] = {}
    databases: dict[str, ColumnarDatabase] = {}
    for vantage_data in vantage_rows:
        name = vantage_data.get("name") if isinstance(vantage_data, dict) else None
        if name not in by_vantage:
            raise DataError(f"{source}: misses database {name!r}")
        db_meta = by_vantage[name]
        loaders, row_counts = {}, {}
        try:
            table_metas = {t["name"]: t for t in db_meta["tables"]}
        except (KeyError, TypeError) as exc:
            raise DataError(f"{source}: malformed metadata: {exc}") from exc
        for table_name in TABLE_SCHEMAS:
            if table_name not in table_metas:
                raise DataError(
                    f"{source}: database {name!r} misses table {table_name!r}"
                )
            table_meta = table_metas[table_name]
            try:
                row_counts[table_name] = int(table_meta["n_rows"])
            except (KeyError, TypeError, ValueError) as exc:
                raise DataError(
                    f"{source}: malformed metadata: {exc}"
                ) from exc
            loaders[table_name] = _binary_table_loader(
                table_name, table_meta, body
            )
        vantages[name] = vantage_data
        databases[name] = LazyColumnarDatabase(name, loaders, row_counts)
    _BIN_DECODES.inc()
    return ColumnarRepository(vantages=vantages, databases=databases)


def load_columnar_binary(path) -> ColumnarRepository:
    """Read and decode ``columnar.bin`` from ``path``."""
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise DataError(f"cannot read {path}: {exc}") from exc
    return decode_columnar_binary(data, source=str(path))
