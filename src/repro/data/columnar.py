"""Struct-of-arrays encodings of the measurement tables.

The paper promised public access to its measurement data (§5.5); the
CampaignStore already persists campaigns as row-oriented JSON.  This
module adds the columnar layer on top: every table of a
:class:`~repro.monitor.database.MeasurementDatabase` — DNS observations,
page checks, downloads, AS paths, faults, plus the per-round DNS
counters — as typed columns, with dictionary encoding for the low-
cardinality values (address family, fault kind, AS path) and lazily
built per-``(site_id, family, round)`` sorted indices for point lookups.

Bit-identity contract: the columnar form is defined as a *transposition*
of :meth:`MeasurementDatabase.to_dict`'s wire rows, and decoding rebuilds
the database through :meth:`MeasurementDatabase.from_dict`, so a
round trip (rows → columns → rows) reproduces the original database —
and therefore :meth:`CentralRepository.content_digest` — bit for bit.

``columnar.json`` (written by the campaign store next to
``repository.json``) carries one :class:`ColumnarRepository` payload and
is loadable without unpickling the world or importing the monitor.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from ..errors import DataError
from ..monitor.aggregate import CentralRepository
from ..monitor.database import FAULT_KINDS, MeasurementDatabase
from ..monitor.vantage import VantagePoint
from ..net.addresses import AddressFamily
from ..obs import metrics

#: columnar file-format version; bumped on incompatible layout changes.
COLUMNAR_FORMAT = 1

#: fixed dictionary for family columns (codes are list positions).
FAMILY_DICTIONARY = (AddressFamily.IPV4.value, AddressFamily.IPV6.value)

#: plain column dtypes a payload may declare.
DTYPES = ("i64", "f64", "bool", "str")

#: conversion effectiveness counters (serve's LRU and the store read these).
_ENCODES = metrics.counter("data.columnar.encodes")
_DECODES = metrics.counter("data.columnar.decodes")


@dataclass
class Column:
    """One plainly-stored typed column."""

    name: str
    dtype: str
    values: list

    def __post_init__(self) -> None:
        if self.dtype not in DTYPES:
            raise DataError(f"unknown column dtype {self.dtype!r}")

    def __len__(self) -> int:
        return len(self.values)

    def get(self, row: int):
        return self.values[row]

    def raw(self, row: int):
        """The sortable storage value (identical to :meth:`get` here)."""
        return self.values[row]

    def to_payload(self) -> dict:
        return {"dtype": self.dtype, "values": list(self.values)}


@dataclass
class DictColumn:
    """A dictionary-encoded column: per-row codes into a value list.

    Used for the low-cardinality columns — address family, fault kind —
    and for AS paths, where a campaign observes few distinct paths but
    records one per (site, family, round).
    """

    name: str
    codes: list[int]
    dictionary: list

    def __post_init__(self) -> None:
        n = len(self.dictionary)
        for code in self.codes:
            if not isinstance(code, int) or not 0 <= code < n:
                raise DataError(
                    f"column {self.name!r}: code {code!r} outside "
                    f"dictionary of {n} entries"
                )

    def __len__(self) -> int:
        return len(self.codes)

    def get(self, row: int):
        return self.dictionary[self.codes[row]]

    def raw(self, row: int) -> int:
        return self.codes[row]

    def encode(self, value) -> int | None:
        """The code for ``value``, or None when it never occurs."""
        try:
            return self.dictionary.index(value)
        except ValueError:
            return None

    def to_payload(self) -> dict:
        return {
            "dtype": "dict",
            "codes": list(self.codes),
            "dictionary": list(self.dictionary),
        }


def _column_from_payload(name: str, payload: dict) -> "Column | DictColumn":
    try:
        dtype = payload["dtype"]
        if dtype == "dict":
            return DictColumn(
                name=name,
                codes=list(payload["codes"]),
                dictionary=list(payload["dictionary"]),
            )
        return Column(name=name, dtype=dtype, values=list(payload["values"]))
    except (KeyError, TypeError) as exc:
        raise DataError(f"malformed column payload for {name!r}: {exc}") from exc


class SortedIndex:
    """Row ids sorted by a key-column tuple, with equal-range lookup.

    The sort is stable, so within one full key the original row order —
    the monitor's monotone round order — is preserved, and an equal-range
    probe on a key *prefix* (``site_id`` alone, or ``site_id, family``)
    returns rows in ascending row id.
    """

    def __init__(self, table: "ColumnarTable", keys: tuple[str, ...]) -> None:
        self.keys = keys
        columns = [table.column(key) for key in keys]

        def key_of(row: int) -> tuple:
            return tuple(column.raw(row) for column in columns)

        self.order = sorted(range(table.n_rows), key=key_of)
        self._tuples = [key_of(row) for row in self.order]

    def equal_range(self, prefix: tuple) -> list[int]:
        """Row ids whose key starts with ``prefix``, ascending."""
        k = len(prefix)
        lo = bisect_left(self._tuples, prefix, key=lambda t: t[:k])
        hi = bisect_right(self._tuples, prefix, key=lambda t: t[:k])
        return sorted(self.order[lo:hi])


#: table name -> (column name, dtype or "dict") in wire-row order.
TABLE_SCHEMAS: dict[str, tuple[tuple[str, str], ...]] = {
    "dns": (
        ("site_id", "i64"), ("name", "str"), ("round", "i64"),
        ("has_v4", "bool"), ("has_v6", "bool"), ("listed", "bool"),
    ),
    "dns_counts": (
        ("round", "i64"), ("queried", "i64"),
        ("with_a", "i64"), ("with_aaaa", "i64"),
    ),
    "page_checks": (
        ("site_id", "i64"), ("round", "i64"), ("v4_bytes", "i64"),
        ("v6_bytes", "i64"), ("identical", "bool"),
    ),
    "downloads": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("n_samples", "i64"), ("mean_speed", "f64"), ("ci_half_width", "f64"),
        ("converged", "bool"), ("page_bytes", "i64"), ("timestamp", "f64"),
    ),
    "paths": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("dest_asn", "i64"), ("as_path", "dict"),
    ),
    "faults": (
        ("site_id", "i64"), ("family", "dict"), ("round", "i64"),
        ("kind", "dict"),
    ),
}

#: the key columns each table's sorted index covers (prefix-probe order:
#: equality pushdown needs site_id first, then family).
TABLE_INDEX_KEYS: dict[str, tuple[str, ...]] = {
    "dns": ("site_id", "round"),
    "dns_counts": ("round",),
    "page_checks": ("site_id", "round"),
    "downloads": ("site_id", "family", "round"),
    "paths": ("site_id", "family", "round"),
    "faults": ("site_id", "family", "round"),
}

#: columns with a *fixed* dictionary (shared vocabulary, stable codes).
_FIXED_DICTIONARIES = {
    "family": list(FAMILY_DICTIONARY),
    "kind": list(FAULT_KINDS),
}


class ColumnarTable:
    """One table as named columns plus lazily built sorted indices."""

    def __init__(
        self, name: str, columns: dict[str, "Column | DictColumn"]
    ) -> None:
        self.name = name
        self.columns = columns
        lengths = {len(column) for column in columns.values()}
        if len(lengths) > 1:
            raise DataError(
                f"table {name!r}: ragged columns (lengths {sorted(lengths)})"
            )
        self.n_rows = lengths.pop() if lengths else 0
        self._indices: dict[tuple[str, ...], SortedIndex] = {}

    def column(self, name: str) -> "Column | DictColumn":
        if name not in self.columns:
            raise DataError(
                f"table {self.name!r} has no column {name!r} "
                f"(columns: {', '.join(self.columns)})"
            )
        return self.columns[name]

    @property
    def index_keys(self) -> tuple[str, ...]:
        return TABLE_INDEX_KEYS[self.name]

    def index(self, keys: tuple[str, ...] | None = None) -> SortedIndex:
        keys = keys or self.index_keys
        if keys not in self._indices:
            self._indices[keys] = SortedIndex(self, keys)
        return self._indices[keys]

    def rows(self) -> list[list]:
        """Wire rows (the ``to_dict`` layout) rebuilt from the columns."""
        columns = [self.columns[name] for name, _ in TABLE_SCHEMAS[self.name]]
        return [
            [column.get(row) for column in columns]
            for row in range(self.n_rows)
        ]

    def to_payload(self) -> dict:
        return {
            "n_rows": self.n_rows,
            "columns": {
                name: column.to_payload() for name, column in self.columns.items()
            },
        }

    @classmethod
    def from_payload(cls, name: str, payload: dict) -> "ColumnarTable":
        if name not in TABLE_SCHEMAS:
            raise DataError(f"unknown columnar table {name!r}")
        try:
            columns_payload = payload["columns"]
            declared = payload["n_rows"]
        except (KeyError, TypeError) as exc:
            raise DataError(f"malformed table payload for {name!r}") from exc
        columns: dict[str, Column | DictColumn] = {}
        for column_name, dtype in TABLE_SCHEMAS[name]:
            if column_name not in columns_payload:
                raise DataError(f"table {name!r} misses column {column_name!r}")
            column = _column_from_payload(
                column_name, columns_payload[column_name]
            )
            expected = "dict" if dtype == "dict" else dtype
            actual = "dict" if isinstance(column, DictColumn) else column.dtype
            if actual != expected:
                raise DataError(
                    f"table {name!r} column {column_name!r}: dtype "
                    f"{actual!r}, schema requires {expected!r}"
                )
            columns[column_name] = column
        table = cls(name, columns)
        if table.n_rows != declared:
            raise DataError(
                f"table {name!r}: declared {declared} rows, "
                f"columns hold {table.n_rows}"
            )
        return table

    @classmethod
    def from_rows(cls, name: str, rows: list) -> "ColumnarTable":
        """Transpose wire rows into columns (dictionary-encoding as set
        by the schema; AS-path dictionaries are first-appearance order)."""
        schema = TABLE_SCHEMAS[name]
        columns: dict[str, Column | DictColumn] = {}
        for position, (column_name, dtype) in enumerate(schema):
            values = [row[position] for row in rows]
            if dtype != "dict":
                columns[column_name] = Column(column_name, dtype, values)
                continue
            if column_name in _FIXED_DICTIONARIES:
                dictionary = list(_FIXED_DICTIONARIES[column_name])
                positions = {value: i for i, value in enumerate(dictionary)}
            else:
                dictionary, positions = [], {}
            codes = []
            for value in values:
                key = tuple(value) if isinstance(value, list) else value
                if key not in positions:
                    positions[key] = len(dictionary)
                    dictionary.append(value)
                codes.append(positions[key])
            columns[column_name] = DictColumn(column_name, codes, dictionary)
        return cls(name, columns)


class ColumnarDatabase:
    """Every table of one vantage point's database, in columnar form."""

    def __init__(
        self, vantage_name: str, tables: dict[str, ColumnarTable]
    ) -> None:
        self.vantage_name = vantage_name
        self.tables = tables

    def table(self, name: str) -> ColumnarTable:
        if name not in self.tables:
            raise DataError(
                f"unknown table {name!r} (tables: {', '.join(self.tables)})"
            )
        return self.tables[name]

    @property
    def table_names(self) -> list[str]:
        return list(self.tables)

    def row_counts(self) -> dict[str, int]:
        return {name: table.n_rows for name, table in self.tables.items()}

    @classmethod
    def from_database(cls, db: MeasurementDatabase) -> "ColumnarDatabase":
        """Encode a database by transposing its wire-form rows."""
        _ENCODES.inc()
        data = db.to_dict()
        tables = {
            name: ColumnarTable.from_rows(name, data.get(name, []))
            for name in TABLE_SCHEMAS
        }
        return cls(vantage_name=data["vantage_name"], tables=tables)

    def to_database(self) -> MeasurementDatabase:
        """Decode back to row objects through the wire-format loader, so
        the monotone-round invariants are re-validated and the rebuilt
        database is bit-identical to the encoded one."""
        from ..monitor.database import SERIAL_FORMAT

        _DECODES.inc()
        data = {
            "format": SERIAL_FORMAT,
            "vantage_name": self.vantage_name,
            "dns": self.tables["dns"].rows(),
            "dns_counts": self.tables["dns_counts"].rows(),
            "page_checks": self.tables["page_checks"].rows(),
            "downloads": self.tables["downloads"].rows(),
            "paths": self.tables["paths"].rows(),
        }
        faults = self.tables["faults"].rows()
        if faults:
            data["faults"] = faults
        return MeasurementDatabase.from_dict(data)

    def to_payload(self) -> dict:
        return {
            "vantage_name": self.vantage_name,
            "tables": {
                name: table.to_payload() for name, table in self.tables.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarDatabase":
        try:
            vantage_name = payload["vantage_name"]
            tables_payload = payload["tables"]
        except (KeyError, TypeError) as exc:
            raise DataError("malformed columnar database payload") from exc
        tables = {}
        for name in TABLE_SCHEMAS:
            if name not in tables_payload:
                raise DataError(f"columnar payload misses table {name!r}")
            tables[name] = ColumnarTable.from_payload(name, tables_payload[name])
        return cls(vantage_name=vantage_name, tables=tables)


@dataclass
class ColumnarRepository:
    """A whole campaign — vantage roster plus columnar databases.

    This is the ``columnar.json`` payload the campaign store writes next
    to ``repository.json``; :meth:`to_repository` materialises the
    row-object :class:`CentralRepository` when an analysis needs it.
    """

    vantages: dict[str, dict] = field(default_factory=dict)
    databases: dict[str, ColumnarDatabase] = field(default_factory=dict)

    @classmethod
    def from_repository(cls, repository: CentralRepository) -> "ColumnarRepository":
        vantages, databases = {}, {}
        for vantage, db in repository.items():
            vantages[vantage.name] = vantage.to_dict()
            databases[vantage.name] = ColumnarDatabase.from_database(db)
        return cls(vantages=vantages, databases=databases)

    def to_repository(self) -> CentralRepository:
        repository = CentralRepository()
        for name, vantage_data in self.vantages.items():
            repository.add(
                VantagePoint.from_dict(vantage_data),
                self.databases[name].to_database(),
            )
        return repository

    def to_payload(self) -> dict:
        return {
            "format": COLUMNAR_FORMAT,
            "vantages": list(self.vantages.values()),
            "databases": {
                name: cdb.to_payload() for name, cdb in self.databases.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ColumnarRepository":
        fmt = payload.get("format") if isinstance(payload, dict) else None
        if fmt != COLUMNAR_FORMAT:
            raise DataError(
                f"unsupported columnar format {fmt!r} "
                f"(expected {COLUMNAR_FORMAT})"
            )
        try:
            vantage_rows = payload["vantages"]
            database_payloads = payload["databases"]
        except KeyError as exc:
            raise DataError("malformed columnar repository payload") from exc
        vantages, databases = {}, {}
        for vantage_data in vantage_rows:
            name = vantage_data.get("name")
            if name not in database_payloads:
                raise DataError(f"columnar payload misses database {name!r}")
            vantages[name] = vantage_data
            databases[name] = ColumnarDatabase.from_payload(
                database_payloads[name]
            )
        return cls(vantages=vantages, databases=databases)


def columnar_view(db: MeasurementDatabase) -> ColumnarDatabase:
    """The cached columnar view of a database (the query core's input).

    Memoized on the database instance; any table write invalidates, so a
    view taken after the campaign completes is encoded exactly once and
    shared by every analysis pass.
    """
    view = db._columnar_cache
    if view is None:
        view = ColumnarDatabase.from_database(db)
        db._columnar_cache = view
    return view
