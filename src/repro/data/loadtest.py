"""``repro loadtest`` — seeded, Zipf-skewed replay against a live server.

The ROADMAP's north star claims the serving layer can face "heavy
traffic"; this module is the measurement that backs (or falsifies) the
claim, the same way the source paper grounds every adoption statement
in a measured distribution.  It has two halves:

* **Query-mix generation** (:func:`generate_mix`): a deterministic
  universe of request templates is derived from one stored campaign
  (per-vantage classifications, table pages, group-aggregates, and
  per-site point queries), and a request sequence is drawn over it with
  a Zipf-skewed rank distribution.  Rank counts are *quota-based* —
  ``count(rank r) ∝ 1/(r+1)^s`` rounded down, remainders to the lowest
  ranks — and the sequence order is a named-RNG-stream shuffle, so the
  mix is bit-reproducible for a (seed, campaign) pair **and**
  rank-frequency monotonicity is a structural guarantee, not a
  statistical hope.  ``Mix.digest`` seals the whole sequence; the
  ``BENCH_serve.json`` baseline comparison checks it exactly.

* **The replay harness** (:func:`run_loadtest`): N client threads
  replay the mix against a live server (optionally paced to a target
  QPS), measure per-request latency client-side, scrape ``/metrics``
  before and after to compute the response-cache hit fraction, and
  byte-verify a deterministic sample of responses against the same
  payloads computed directly from the store with no server in the loop.
  The result is a ``repro.perf``-style report whose structural gates
  (zero 5xx, zero transport errors, byte parity, cache-hit floor) are
  deterministic; latency and throughput ride along for the humans.

Every client uses one connection per request (``Connection: close``),
so a fixed worker pool is shared fairly across more clients than
workers — no client can pin a worker between requests.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from ..errors import ConfigError, DataError
from ..obs import get_logger
from ..rng import RngStreams
from .columnar import TABLE_SCHEMAS
from .query import Query
from .serve import ServeApp, ServeConfig, canonical_json

_LOG = get_logger("data.loadtest")

#: report schema identifier for ``BENCH_serve.json``.
SERVE_SCHEMA = "repro.perf/serve-1"

#: default on-disk location of the checked-in serving baseline.
DEFAULT_SERVE_REPORT = "BENCH_serve.json"

#: the named RNG stream every mix draw comes from.
MIX_STREAM = "loadtest.mix"

#: default Zipf skew exponent (s=1.1: a heavy head, a long tail).
DEFAULT_ZIPF_S = 1.1

#: per-site point-query templates drawn into the universe.
MAX_SITE_TEMPLATES = 24

#: default parity sampling stride (every k-th request is byte-verified).
DEFAULT_PARITY_EVERY = 10


# ---------------------------------------------------------------------------
# query-mix generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlannedRequest:
    """One concrete request of the mix (wire-ready, order matters)."""

    kind: str
    method: str
    path: str
    params: tuple[tuple[str, str], ...] = ()
    body: bytes | None = None
    #: the Zipf rank of the template this request instantiates.
    rank: int = 0

    def url(self, base: str) -> str:
        query = "&".join(f"{k}={v}" for k, v in self.params)
        return f"{base}{self.path}" + (f"?{query}" if query else "")

    def to_payload(self) -> dict:
        return {
            "kind": self.kind,
            "method": self.method,
            "path": self.path,
            "params": [list(pair) for pair in self.params],
            "body": (self.body or b"").decode("utf-8") if self.body else None,
            "rank": self.rank,
        }


@dataclass
class Mix:
    """A complete, sealed request sequence."""

    requests: list[PlannedRequest]
    seed: int
    zipf_s: float
    campaign_digest: str
    n_templates: int
    digest: str = ""
    kinds: dict[str, int] = field(default_factory=dict)
    rank_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.digest:
            body = canonical_json(
                {
                    "campaign": self.campaign_digest,
                    "seed": self.seed,
                    "zipf_s": self.zipf_s,
                    "requests": [r.to_payload() for r in self.requests],
                }
            )
            self.digest = hashlib.sha256(body).hexdigest()
        if not self.kinds:
            for request in self.requests:
                self.kinds[request.kind] = self.kinds.get(request.kind, 0) + 1


def zipf_weights(n: int, s: float) -> list[float]:
    """Normalised Zipf weights for ranks ``0..n-1`` (strictly decreasing)."""
    if n <= 0:
        raise DataError(f"need at least one rank, got {n}")
    if s <= 0:
        raise DataError(f"zipf exponent must be positive, got {s}")
    raw = [(rank + 1) ** -s for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


def zipf_rank_counts(n_requests: int, n_ranks: int, s: float) -> list[int]:
    """Requests per rank: quota-rounded Zipf, remainder to the head.

    ``counts[r] = floor(n_requests * w_r)`` with the leftover requests
    granted one each to ranks ``0, 1, 2, ...`` — both steps preserve
    ``counts[r] >= counts[r+1]``, so the rank-frequency curve of every
    generated mix is monotonically non-increasing *by construction*.
    """
    weights = zipf_weights(n_ranks, s)
    counts = [int(n_requests * w) for w in weights]
    remainder = n_requests - sum(counts)
    for rank in range(remainder):
        counts[rank % n_ranks] += 1
    return counts


def _query_body(payload: dict) -> bytes:
    """Canonical bytes for a POST /query body (validated up front)."""
    Query.from_dict(payload)  # raises DataError on an invalid template
    return canonical_json(payload)


def build_templates(
    campaign_digest: str,
    vantages: list[str],
    site_ids: list[int],
) -> list[PlannedRequest]:
    """The deterministic template universe for one campaign.

    Ordering is the Zipf ranking: group-aggregates and classifications
    first (the analytical hot set), then table pages, then the long tail
    of per-site point queries.  Every query template is validated
    against ``TABLE_SCHEMAS`` via :class:`~repro.data.query.Query`
    before it enters the universe.
    """
    if not vantages:
        raise DataError("cannot build a query mix without vantages")
    base = f"/campaigns/{campaign_digest}"
    templates: list[PlannedRequest] = []
    for vantage in sorted(vantages):
        templates.append(
            PlannedRequest(
                kind="query",
                method="POST",
                path=f"{base}/query",
                body=_query_body(
                    {
                        "vantage": vantage,
                        "table": "downloads",
                        "where": [
                            {"column": "converged", "op": "eq", "value": True}
                        ],
                        "group_by": ["family"],
                        "aggregates": [
                            {"op": "count", "alias": "n"},
                            {
                                "op": "mean",
                                "column": "mean_speed",
                                "alias": "speed",
                            },
                        ],
                    }
                ),
            )
        )
        templates.append(
            PlannedRequest(
                kind="classify",
                method="GET",
                path=f"{base}/analysis/classify",
                params=(("vantage", vantage),),
            )
        )
        templates.append(
            PlannedRequest(
                kind="query",
                method="POST",
                path=f"{base}/query",
                body=_query_body(
                    {
                        "vantage": vantage,
                        "table": "paths",
                        "group_by": ["family", "dest_asn"],
                        "aggregates": [{"op": "count", "alias": "routes"}],
                    }
                ),
            )
        )
    templates.append(
        PlannedRequest(kind="detail", method="GET", path=base)
    )
    for vantage in sorted(vantages):
        for table in TABLE_SCHEMAS:
            templates.append(
                PlannedRequest(
                    kind="table_page",
                    method="GET",
                    path=f"{base}/tables/{table}",
                    params=(
                        ("vantage", vantage),
                        ("offset", "0"),
                        ("limit", "200"),
                    ),
                )
            )
    # the long tail: per-site point queries over the first vantage.
    vantage = sorted(vantages)[0]
    for site_id in site_ids[:MAX_SITE_TEMPLATES]:
        templates.append(
            PlannedRequest(
                kind="query",
                method="POST",
                path=f"{base}/query",
                body=_query_body(
                    {
                        "vantage": vantage,
                        "table": "downloads",
                        "where": [
                            {"column": "site_id", "op": "eq", "value": site_id}
                        ],
                        "select": [
                            "family",
                            "round",
                            "mean_speed",
                            "converged",
                        ],
                    }
                ),
            )
        )
    return templates


def generate_mix(
    campaign_digest: str,
    vantages: list[str],
    site_ids: list[int],
    n_requests: int,
    seed: int,
    zipf_s: float = DEFAULT_ZIPF_S,
) -> Mix:
    """The sealed request sequence for one (campaign, seed) pair.

    Same inputs ⇒ byte-identical sequence (and therefore the same
    ``Mix.digest``): template construction is pure, rank quotas are
    arithmetic, and the only randomness is one ``random.shuffle`` from
    the ``loadtest.mix`` named stream.
    """
    if n_requests <= 0:
        raise DataError(f"n_requests must be positive, got {n_requests}")
    templates = build_templates(campaign_digest, vantages, site_ids)
    counts = zipf_rank_counts(n_requests, len(templates), zipf_s)
    sequence: list[PlannedRequest] = []
    for rank, (template, count) in enumerate(zip(templates, counts)):
        ranked = PlannedRequest(
            kind=template.kind,
            method=template.method,
            path=template.path,
            params=template.params,
            body=template.body,
            rank=rank,
        )
        sequence.extend([ranked] * count)
    RngStreams(seed).stream(MIX_STREAM).shuffle(sequence)
    return Mix(
        requests=sequence,
        seed=seed,
        zipf_s=zipf_s,
        campaign_digest=campaign_digest,
        n_templates=len(templates),
        rank_counts=counts,
    )


# ---------------------------------------------------------------------------
# the replay harness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadtestOptions:
    """Client-side knobs for one replay."""

    clients: int = 8
    #: total request rate to pace to; None replays as fast as possible.
    target_qps: float | None = None
    #: byte-verify every k-th request of the sequence (0 disables).
    parity_every: int = DEFAULT_PARITY_EVERY
    #: per-request socket timeout, seconds.
    timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ConfigError(f"clients must be positive, got {self.clients}")
        if self.target_qps is not None and self.target_qps <= 0:
            raise ConfigError(
                f"target_qps must be positive, got {self.target_qps}"
            )
        if self.parity_every < 0:
            raise ConfigError(
                f"parity_every must be >= 0, got {self.parity_every}"
            )


@dataclass
class _Outcome:
    """One request's observed result."""

    index: int
    status: int
    latency_ms: float
    body: bytes | None = None
    transport_error: str | None = None


def _percentile(ordered: list[float], p: float) -> float:
    """Linear-interpolation percentile over pre-sorted values."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def _fetch(base_url: str, request: PlannedRequest, timeout: float):
    """One request over a fresh connection; returns (status, bytes)."""
    req = urllib.request.Request(
        request.url(base_url),
        data=request.body,
        method=request.method,
        headers={"Content-Type": "application/json"}
        if request.body
        else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def scrape_metrics(base_url: str, timeout: float = 10.0) -> dict:
    """The live server's ``/metrics`` registry snapshot."""
    with urllib.request.urlopen(
        f"{base_url}/metrics", timeout=timeout
    ) as response:
        return json.loads(response.read())["metrics"]


def _counter_value(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name)
    return float(entry.get("value", 0.0)) if entry else 0.0


def _histogram_delta(before: dict, after: dict, name: str) -> dict:
    """Observation count/time accrued between two ``/metrics`` snapshots.

    Histogram snapshots expose lifetime aggregates; ``count`` and ``sum``
    are monotone, so their deltas isolate this replay.  ``max`` cannot be
    windowed, so the lifetime maximum is reported as-is.
    """
    was = before.get(name) or {}
    now = after.get(name) or {}
    count = int(now.get("count", 0)) - int(was.get("count", 0))
    total = float(now.get("sum", 0.0)) - float(was.get("sum", 0.0))
    return {
        "count": count,
        "total_ms": total,
        "mean_ms": total / count if count else 0.0,
        "lifetime_max_ms": float(now.get("max", 0.0)),
    }


def _drive(
    base_url: str, mix: Mix, options: LoadtestOptions
) -> tuple[list[_Outcome], float]:
    """Replay the mix across client threads; returns outcomes + wall."""
    keep_body = {
        index
        for index in range(len(mix.requests))
        if options.parity_every and index % options.parity_every == 0
    }
    outcomes: list[_Outcome | None] = [None] * len(mix.requests)
    interval = (
        1.0 / options.target_qps if options.target_qps is not None else 0.0
    )
    start = time.perf_counter()

    def client(worker: int) -> None:
        for index in range(worker, len(mix.requests), options.clients):
            request = mix.requests[index]
            if interval:
                due = start + index * interval
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            t0 = time.perf_counter()
            try:
                status, data = _fetch(base_url, request, options.timeout)
            except Exception as exc:  # connection-level failure
                outcomes[index] = _Outcome(
                    index=index,
                    status=0,
                    latency_ms=(time.perf_counter() - t0) * 1000.0,
                    transport_error=f"{type(exc).__name__}: {exc}",
                )
                continue
            outcomes[index] = _Outcome(
                index=index,
                status=status,
                latency_ms=(time.perf_counter() - t0) * 1000.0,
                body=data if index in keep_body else None,
            )

    threads = [
        threading.Thread(target=client, args=(worker,), daemon=True)
        for worker in range(options.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    assert all(outcome is not None for outcome in outcomes)
    return outcomes, wall  # type: ignore[return-value]


def direct_response(store, request: PlannedRequest) -> bytes:
    """The canonical bytes the server *should* serve — no server, no
    caches: a fresh single-use :class:`ServeApp` over the same store."""
    app = ServeApp(
        store,
        ServeConfig(
            cache_root=str(store.root),
            response_cache_entries=0,
            workers=0,
        ),
    )
    status, payload = app.handle(
        request.method, request.path, dict(request.params), request.body
    )
    if status != 200:
        raise DataError(
            f"direct computation of {request.path} failed with {status}: "
            f"{payload}"
        )
    return canonical_json(payload)


def run_loadtest(
    base_url: str,
    mix: Mix,
    options: LoadtestOptions,
    store=None,
    meta: dict | None = None,
) -> dict:
    """Replay ``mix`` against a live server and build the serve report.

    ``store`` enables the byte-parity pass: every sampled response is
    compared against :func:`direct_response` over the same campaign
    store.  ``/metrics`` is scraped before and after the drive, so the
    cache block reflects exactly the requests this replay issued.
    """
    base_url = base_url.rstrip("/")
    before = scrape_metrics(base_url, timeout=options.timeout)
    outcomes, wall = _drive(base_url, mix, options)
    after = scrape_metrics(base_url, timeout=options.timeout)

    latencies = sorted(
        outcome.latency_ms
        for outcome in outcomes
        if outcome.transport_error is None
    )
    n_5xx = sum(1 for o in outcomes if o.status >= 500)
    n_4xx = sum(1 for o in outcomes if 400 <= o.status < 500)
    n_transport = sum(1 for o in outcomes if o.transport_error is not None)
    n_ok = sum(1 for o in outcomes if o.status == 200)

    sampled = verified = mismatched = 0
    if store is not None and options.parity_every:
        direct_cache: dict[tuple, bytes] = {}
        for outcome in outcomes:
            if outcome.body is None or outcome.status != 200:
                continue
            sampled += 1
            request = mix.requests[outcome.index]
            key = (request.method, request.path, request.params, request.body)
            expected = direct_cache.get(key)
            if expected is None:
                expected = direct_response(store, request)
                direct_cache[key] = expected
            if outcome.body == expected:
                verified += 1
            else:
                mismatched += 1
                _LOG.warning(
                    "served bytes diverge from direct computation",
                    extra={"path": request.path, "index": outcome.index},
                )

    hits = _counter_value(after, "data.serve.cache.hits") - _counter_value(
        before, "data.serve.cache.hits"
    )
    misses = _counter_value(after, "data.serve.cache.misses") - _counter_value(
        before, "data.serve.cache.misses"
    )
    evictions = _counter_value(
        after, "data.serve.cache.evictions"
    ) - _counter_value(before, "data.serve.cache.evictions")
    lookups = hits + misses

    report = {
        "bench": "serve",
        "schema": SERVE_SCHEMA,
        "meta": {
            "seed": mix.seed,
            "zipf_s": mix.zipf_s,
            "n_requests": len(mix.requests),
            "clients": options.clients,
            "target_qps": options.target_qps,
            "parity_every": options.parity_every,
            **(meta or {}),
        },
        "mix": {
            "digest": mix.digest,
            "campaign_digest": mix.campaign_digest,
            "n_templates": mix.n_templates,
            "kinds": {kind: mix.kinds[kind] for kind in sorted(mix.kinds)},
        },
        "latency_ms": {
            "p50": _percentile(latencies, 50.0),
            "p95": _percentile(latencies, 95.0),
            "p99": _percentile(latencies, 99.0),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "max": latencies[-1] if latencies else 0.0,
        },
        "throughput_rps": n_ok / wall if wall > 0 else 0.0,
        "wall_seconds": wall,
        "errors": {
            "n_5xx": n_5xx,
            "n_4xx": n_4xx,
            "n_transport": n_transport,
        },
        "parity": {
            "sampled": sampled,
            "verified": verified,
            "mismatched": mismatched,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_fraction": hits / lookups if lookups else 0.0,
        },
        # Informational only: cold campaign loads (store -> memory) that
        # this replay triggered.  Never compared against baselines —
        # wall-clock is machine-dependent.
        "cold_load": _histogram_delta(
            before, after, "data.serve.campaign_load_ms"
        ),
    }
    return report


# ---------------------------------------------------------------------------
# report I/O + rendering (BENCH_serve.json)
# ---------------------------------------------------------------------------


def write_serve_report(report: dict, path) -> None:
    import pathlib

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )


def read_serve_report(path) -> dict:
    import pathlib

    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def render_serve_report(report: dict) -> str:
    """Terminal summary: the latency table the humans read first."""
    meta = report["meta"]
    latency = report["latency_ms"]
    errors = report["errors"]
    parity = report["parity"]
    cache = report["cache"]
    qps = meta.get("target_qps")
    lines = [
        f"loadtest: {meta['n_requests']} requests, {meta['clients']} "
        f"client(s), "
        + (f"paced to {qps:g} rps" if qps else "unpaced")
        + f", zipf s={meta['zipf_s']:g}, seed {meta['seed']}",
        f"mix: {report['mix']['n_templates']} templates, "
        f"digest {report['mix']['digest'][:16]}…",
        f"latency ms: p50 {latency['p50']:.2f}  p95 {latency['p95']:.2f}  "
        f"p99 {latency['p99']:.2f}  mean {latency['mean']:.2f}  "
        f"max {latency['max']:.2f}",
        f"throughput: {report['throughput_rps']:.1f} rps over "
        f"{report['wall_seconds']:.2f}s",
        f"errors: 5xx={errors['n_5xx']} 4xx={errors['n_4xx']} "
        f"transport={errors['n_transport']}",
        f"parity: {parity['verified']}/{parity['sampled']} sampled "
        f"responses byte-identical, {parity['mismatched']} mismatched",
        f"cache: {cache['hits']:g} hits / {cache['misses']:g} misses "
        f"(hit fraction {cache['hit_fraction']:.3f}, "
        f"evictions {cache['evictions']:g})",
    ]
    cold = report.get("cold_load")
    if cold is not None:
        lines.append(
            f"cold loads: {cold['count']} campaign load(s), "
            f"mean {cold['mean_ms']:.2f} ms "
            f"(informational; lifetime max {cold['lifetime_max_ms']:.2f} ms)"
        )
    return "\n".join(lines)
