"""The measurement data subsystem: columnar store, query core, serving.

The paper's §5.5 promises public access to the measurement data; this
package is the reproduction's delivery of that promise at system scale.
Three layers:

* :mod:`repro.data.columnar` — struct-of-arrays encodings of every
  measurement table with dictionary-encoded AS paths and sorted indices;
  the ``columnar.json`` campaign-store artifact (bit-identical round
  trips with the row-object database).
* :mod:`repro.data.query` — filter / project / group-aggregate
  primitives with predicate pushdown; the analysis layer's row queries
  run on these, and so do the ad-hoc queries served over HTTP.
* :mod:`repro.data.serve` — the stdlib-only ``repro serve`` JSON API
  over the campaign store (imported lazily by the CLI; not re-exported
  here to keep ``repro.data`` importable from the engine's store).
"""

from .columnar import (
    COLUMNAR_FORMAT,
    Column,
    ColumnarDatabase,
    ColumnarRepository,
    ColumnarTable,
    DictColumn,
    SortedIndex,
    columnar_view,
)
from .query import (
    Aggregate,
    Filter,
    Query,
    QueryResult,
    run_query,
    scan,
)

__all__ = [
    "COLUMNAR_FORMAT",
    "Aggregate",
    "Column",
    "ColumnarDatabase",
    "ColumnarRepository",
    "ColumnarTable",
    "DictColumn",
    "Filter",
    "Query",
    "QueryResult",
    "SortedIndex",
    "columnar_view",
    "run_query",
    "scan",
]
