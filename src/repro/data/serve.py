"""``repro serve`` — a stdlib-only campaign serving API.

The paper's §5.5: "the currently limited public access to its data ...
would obviously be required to allow independent validation of the
findings."  This module puts the campaign store on the network: a JSON
HTTP API over ``.repro-cache/campaigns/`` with an LRU of loaded columnar
campaigns, per-request spans/metrics, and bounded request handling.

Endpoints::

    GET  /healthz                                  liveness + LRU occupancy
    GET  /metrics                                  repro.obs counters/histograms
    GET  /observers                                observer registry listing
    GET  /campaigns                                store listing (meta only)
    GET  /campaigns/<digest>                       vantages + table row counts
    GET  /campaigns/<digest>/tables/<name>         one table page, columnar
         ?vantage=NAME&offset=N&limit=N
    POST /campaigns/<digest>/query                 repro.data.query over HTTP
         {"vantage": ..., "table": ..., "where": [...], "group_by": [...],
          "aggregates": [...], "select": [...], "limit": N}
    GET  /campaigns/<digest>/analysis/classify     Fig-4 site classification
         ?vantage=NAME
    GET  /campaigns/<digest>/observers             observer panel for one entry
    GET  /campaigns/<digest>/observers/<name>      one ObserverReport payload

Every response body is canonical JSON (sorted keys, no whitespace), so
a served result can be byte-diffed against the same payload computed
directly from the row objects — the CI serve-smoke job does exactly
that.  Errors are structured (``{"error": {"code", "message"}}``) with
the appropriate 4xx status; a traceback never crosses the socket.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlparse

from ..analysis.classify import classify_sites
from ..engine.store import DEFAULT_CACHE_ROOT, CampaignStore
from ..errors import ConfigError, DataError
from ..monitor.database import MeasurementDatabase
from ..obs import get_logger, metrics, span
from ..observers import all_observers, get_observer, observer_names, run_observer
from .columnar import ColumnarDatabase, ColumnarRepository
from .query import MAX_QUERY_ROWS, Query, run_query

_LOG = get_logger("data.serve")

#: request accounting (the serve-smoke job and tests read these).
_REQUESTS = metrics.counter("data.serve.requests")
_ERRORS = metrics.counter("data.serve.errors")
_CACHE_HITS = metrics.counter("data.serve.cache_hits")
_CACHE_MISSES = metrics.counter("data.serve.cache_misses")
_LATENCY = metrics.histogram("data.serve.latency_ms")


#: environment override for the serving LRU capacity (``repro serve --lru``
#: wins over it; the dataclass default below is the last resort).
LRU_ENV_VAR = "REPRO_SERVE_LRU"
DEFAULT_LRU_CAMPAIGNS = 4


def default_lru_campaigns() -> int:
    """The LRU capacity from ``REPRO_SERVE_LRU``, validated."""
    raw = os.environ.get(LRU_ENV_VAR)
    if raw is None:
        return DEFAULT_LRU_CAMPAIGNS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{LRU_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    return value


@dataclass(frozen=True)
class ServeConfig:
    """Bounds and knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8765
    cache_root: str = DEFAULT_CACHE_ROOT
    #: per-request row ceiling (requests asking for more get a 413).
    max_rows: int = 10_000
    #: loaded columnar campaigns kept in memory (``--lru`` / REPRO_SERVE_LRU).
    lru_campaigns: int = field(default_factory=default_lru_campaigns)
    #: request body ceiling in bytes.
    max_body_bytes: int = 1_000_000
    #: socket timeout per request, seconds.
    request_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.max_rows <= 0 or self.max_rows > MAX_QUERY_ROWS:
            raise DataError(
                f"max_rows must be in 1..{MAX_QUERY_ROWS}, got {self.max_rows}"
            )
        if not isinstance(self.lru_campaigns, int) or self.lru_campaigns <= 0:
            raise ConfigError(
                f"lru_campaigns must be a positive integer, "
                f"got {self.lru_campaigns!r}"
            )


class HttpError(DataError):
    """An error with a status code and a machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _bad_request(message: str) -> HttpError:
    return HttpError(400, "bad_request", message)


def _not_found(message: str) -> HttpError:
    return HttpError(404, "not_found", message)


@dataclass
class LoadedCampaign:
    """One store entry resident in the serving LRU."""

    digest: str
    meta: dict
    vantages: dict[str, dict]
    columnar: dict[str, ColumnarDatabase]
    #: row-object databases, materialised per vantage on first use.
    _databases: dict[str, MeasurementDatabase] = field(default_factory=dict)

    def columnar_for(self, vantage: str | None) -> ColumnarDatabase:
        if vantage is None:
            raise _bad_request("a 'vantage' parameter is required")
        if vantage not in self.columnar:
            raise _not_found(
                f"unknown vantage {vantage!r} "
                f"(vantages: {', '.join(sorted(self.columnar))})"
            )
        return self.columnar[vantage]

    def database_for(self, vantage: str | None) -> MeasurementDatabase:
        cdb = self.columnar_for(vantage)
        if vantage not in self._databases:
            self._databases[vantage] = cdb.to_database()
        return self._databases[vantage]


class CampaignCache:
    """A small LRU of loaded columnar campaigns keyed by digest."""

    def __init__(self, store: CampaignStore, capacity: int) -> None:
        self.store = store
        self.capacity = capacity
        self._entries: OrderedDict[str, LoadedCampaign] = OrderedDict()

    def get(self, digest: str) -> LoadedCampaign:
        if digest in self._entries:
            self._entries.move_to_end(digest)
            _CACHE_HITS.inc()
            return self._entries[digest]
        _CACHE_MISSES.inc()
        with span("serve.load_campaign", digest=digest[:12]):
            loaded = self.store.load_columnar_entry(digest)
        if loaded is None:
            raise _not_found(f"unknown campaign digest {digest!r}")
        meta, columnar = loaded
        campaign = LoadedCampaign(
            digest=digest,
            meta=meta,
            vantages=dict(columnar.vantages),
            columnar=dict(columnar.databases),
        )
        self._entries[digest] = campaign
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            _LOG.debug("evicted campaign from LRU", extra={"digest": evicted[:12]})
        return campaign

    @property
    def occupancy(self) -> int:
        return len(self._entries)


def canonical_json(payload: dict) -> bytes:
    """The byte-stable response encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def classification_payload(db: MeasurementDatabase) -> dict:
    """Fig-4 site classification of one vantage, as a JSON-ready dict.

    Computed through ``analysis.classify`` (which itself runs on the
    query core) over the dual-stack population; the CI serve-smoke job
    byte-compares this payload computed from the columnar store against
    the same payload computed from the row-object repository.
    """
    classifications = classify_sites(db, db.dual_stack_sites())
    return {
        "vantage": db.vantage_name,
        "n_sites": len(classifications),
        "sites": [
            {
                "site_id": site_id,
                "category": c.category.value,
                "dest_v4": c.dest_v4,
                "dest_v6": c.dest_v6,
                "path_v4": list(c.path_v4),
                "path_v6": list(c.path_v6),
            }
            for site_id, c in sorted(classifications.items())
        ],
    }


class ServeApp:
    """The socket-free request core (handlers and tests call this)."""

    def __init__(self, store: CampaignStore, config: ServeConfig) -> None:
        self.config = config
        self.cache = CampaignCache(store, config.lru_campaigns)
        self.store = store

    # -- routing -------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes | None = None,
    ) -> tuple[int, dict]:
        """Dispatch one request; returns ``(status, payload)``."""
        try:
            return 200, self._route(method, path, params, body)
        except HttpError as exc:
            _ERRORS.inc()
            return exc.status, {
                "error": {"code": exc.code, "message": str(exc)}
            }
        except DataError as exc:
            _ERRORS.inc()
            return 400, {"error": {"code": "bad_request", "message": str(exc)}}
        except Exception as exc:  # never let a traceback cross the socket
            _ERRORS.inc()
            _LOG.warning(
                "internal error serving request",
                extra={"path": path, "error": str(exc)},
            )
            return 500, {
                "error": {"code": "internal", "message": "internal server error"}
            }

    def _route(
        self, method: str, path: str, params: dict[str, str], body: bytes | None
    ) -> dict:
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            self._require(method, "GET")
            return {
                "status": "ok",
                "lru": {
                    "occupancy": self.cache.occupancy,
                    "capacity": self.cache.capacity,
                },
            }
        if parts == ["metrics"]:
            self._require(method, "GET")
            return self._metrics()
        if parts == ["observers"]:
            self._require(method, "GET")
            return self._list_observers()
        if parts == ["campaigns"]:
            self._require(method, "GET")
            return self._list_campaigns()
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign = self.cache.get(parts[1])
            if len(parts) == 2:
                self._require(method, "GET")
                return self._campaign_detail(campaign)
            if len(parts) == 4 and parts[2] == "tables":
                self._require(method, "GET")
                return self._table_page(campaign, parts[3], params)
            if len(parts) == 3 and parts[2] == "query":
                self._require(method, "POST")
                return self._query(campaign, body)
            if len(parts) == 4 and parts[2] == "analysis":
                self._require(method, "GET")
                return self._analysis(campaign, parts[3], params)
            if len(parts) == 3 and parts[2] == "observers":
                self._require(method, "GET")
                return self._campaign_observers(campaign)
            if len(parts) == 4 and parts[2] == "observers":
                self._require(method, "GET")
                return self._observer_report(campaign, parts[3])
        raise _not_found(f"no such resource: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405, "method_not_allowed", f"use {expected} for this resource"
            )

    # -- endpoints -----------------------------------------------------------

    @staticmethod
    def _metrics() -> dict:
        """The process's ``repro.obs`` registry, canonical-JSON ready.

        Counters, gauges, and histograms (with p50/p90/p99) — the live
        equivalent of the ``BENCH_*.json`` metrics block, for scraping a
        running server (``data.serve.requests`` et al. included).
        """
        return {"metrics": metrics.get_registry().as_dict()}

    @staticmethod
    def _list_observers() -> dict:
        """The observer registry listing (names, versions, tables)."""
        observers = [observer.describe() for observer in all_observers()]
        return {"observers": observers, "n_observers": len(observers)}

    def _campaign_observers(self, campaign: LoadedCampaign) -> dict:
        """The observer panel's availability for one campaign entry."""
        persisted = set(self.store.list_observer_reports(campaign.digest))
        return {
            "digest": campaign.digest,
            "observers": [
                {
                    "name": observer.name,
                    "version": observer.version,
                    "persisted": observer.name in persisted,
                }
                for observer in all_observers()
            ],
        }

    def _observer_report(self, campaign: LoadedCampaign, name: str) -> dict:
        """One observer report: persisted artifact bytes when present,
        otherwise recomputed from the loaded columnar data.  Both paths
        serve byte-identical canonical JSON — the report content digest
        guarantees it, and the artifact is re-verified before serving."""
        from ..observers.reports import ObserverReport

        if name not in observer_names():
            raise _not_found(
                f"unknown observer {name!r} "
                f"(observers: {', '.join(observer_names())})"
            )
        raw = self.store.load_observer_report(campaign.digest, name)
        if raw is not None:
            try:
                payload = json.loads(raw.decode("utf-8"))
                ObserverReport.from_payload(payload)  # digest re-check
                return payload
            except (ValueError, DataError) as exc:
                _LOG.warning(
                    "persisted observer report unreadable; recomputing",
                    extra={"observer": name, "error": str(exc)},
                )
        observer = get_observer(name)
        repository = ColumnarRepository(
            vantages=dict(campaign.vantages),
            databases=dict(campaign.columnar),
        )
        with span("serve.observer", observer=name, digest=campaign.digest[:12]):
            report = run_observer(observer, repository, campaign.digest)
        return report.to_payload()

    def _list_campaigns(self) -> dict:
        campaigns = [
            {
                "digest": entry.digest,
                "kind": entry.kind,
                "seed": entry.seed,
                "repository_digest": entry.repository_digest,
            }
            for entry in self.store.entries()
        ]
        return {"campaigns": campaigns, "n_campaigns": len(campaigns)}

    def _campaign_detail(self, campaign: LoadedCampaign) -> dict:
        return {
            "digest": campaign.digest,
            "kind": campaign.meta.get("kind"),
            "seed": campaign.meta.get("seed"),
            "repository_digest": campaign.meta.get("repository_digest"),
            "vantages": {
                name: {
                    "asn": vantage.get("asn"),
                    "location": vantage.get("location"),
                    "tables": campaign.columnar[name].row_counts(),
                }
                for name, vantage in sorted(campaign.vantages.items())
            },
        }

    def _table_page(
        self, campaign: LoadedCampaign, table_name: str, params: dict[str, str]
    ) -> dict:
        cdb = campaign.columnar_for(params.get("vantage"))
        table = cdb.table(table_name)
        offset = self._int_param(params, "offset", 0, minimum=0)
        limit = self._int_param(
            params, "limit", min(self.config.max_rows, 1000), minimum=1
        )
        self._check_limit(limit)
        rows = list(range(table.n_rows))[offset : offset + limit]
        columns = {
            name: [column.get(row) for row in rows]
            for name, column in table.columns.items()
        }
        return {
            "vantage": cdb.vantage_name,
            "table": table_name,
            "total_rows": table.n_rows,
            "offset": offset,
            "n_rows": len(rows),
            "truncated": offset + len(rows) < table.n_rows,
            "columns": columns,
        }

    def _query(self, campaign: LoadedCampaign, body: bytes | None) -> dict:
        if not body:
            raise _bad_request("POST /query requires a JSON body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _bad_request(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _bad_request("query payload must be a JSON object")
        query = Query.from_dict(payload)
        if query.limit is not None:
            self._check_limit(query.limit)
        else:
            query = Query(
                table=query.table,
                where=query.where,
                select=query.select,
                group_by=query.group_by,
                aggregates=query.aggregates,
                limit=self.config.max_rows,
            )
        cdb = campaign.columnar_for(payload.get("vantage"))
        with span("serve.query", table=query.table, vantage=cdb.vantage_name):
            result = run_query(cdb, query)
        response = result.to_payload()
        response["vantage"] = cdb.vantage_name
        response["table"] = query.table
        return response

    def _analysis(
        self, campaign: LoadedCampaign, name: str, params: dict[str, str]
    ) -> dict:
        if name != "classify":
            raise _not_found(f"unknown analysis endpoint {name!r}")
        db = campaign.database_for(params.get("vantage"))
        with span("serve.classify", vantage=db.vantage_name):
            return classification_payload(db)

    # -- parameter plumbing --------------------------------------------------

    def _check_limit(self, limit: int) -> None:
        if limit > self.config.max_rows:
            raise HttpError(
                413,
                "too_large",
                f"limit {limit} exceeds this server's max_rows "
                f"({self.config.max_rows}); page with offset/limit instead",
            )

    @staticmethod
    def _int_param(
        params: dict[str, str], name: str, default: int, minimum: int
    ) -> int:
        raw = params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise _bad_request(f"parameter {name!r} must be an integer") from None
        if value < minimum:
            raise _bad_request(f"parameter {name!r} must be >= {minimum}")
        return value


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter around :class:`ServeApp.handle`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    app: ServeApp  # set by make_server

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        _REQUESTS.inc()
        parsed = urlparse(self.path)
        params = dict(parse_qsl(parsed.query))
        body: bytes | None = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > self.app.config.max_body_bytes:
                self._respond(
                    413,
                    {
                        "error": {
                            "code": "too_large",
                            "message": (
                                f"request body of {length} bytes exceeds the "
                                f"{self.app.config.max_body_bytes}-byte cap"
                            ),
                        }
                    },
                )
                return
            body = self.rfile.read(length) if length else b""
        started = time.perf_counter()
        with span("serve.request", method=method, path=parsed.path):
            status, payload = self.app.handle(method, parsed.path, params, body)
        _LATENCY.observe((time.perf_counter() - started) * 1000.0)
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict) -> None:
        data = canonical_json(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:  # route to repro.obs
        _LOG.debug("http " + fmt % args)


def make_server(
    config: ServeConfig, store: CampaignStore | None = None
) -> ThreadingHTTPServer:
    """Build a ready-to-run threading HTTP server over the store."""
    store = store or CampaignStore(pathlib.Path(config.cache_root))
    app = ServeApp(store, config)
    handler = type("BoundHandler", (_Handler,), {"app": app})
    handler.timeout = config.request_timeout
    server = ThreadingHTTPServer((config.host, config.port), handler)
    server.daemon_threads = True
    return server


def run_server(config: ServeConfig, store: CampaignStore | None = None) -> int:
    """Serve until interrupted (the ``repro serve`` entry point)."""
    server = make_server(config, store)
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store: {config.cache_root})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
    return 0
