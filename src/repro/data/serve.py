"""``repro serve`` — a stdlib-only campaign serving API.

The paper's §5.5: "the currently limited public access to its data ...
would obviously be required to allow independent validation of the
findings."  This module puts the campaign store on the network: a JSON
HTTP API over ``.repro-cache/campaigns/`` with an LRU of loaded columnar
campaigns, per-request spans/metrics, and bounded request handling.

Endpoints::

    GET  /healthz                                  liveness + LRU occupancy
    GET  /metrics                                  repro.obs counters/histograms
    GET  /observers                                observer registry listing
    GET  /campaigns                                store listing (meta only)
    GET  /campaigns/<digest>                       vantages + table row counts
    GET  /campaigns/<digest>/tables/<name>         one table page, columnar
         ?vantage=NAME&offset=N&limit=N
    POST /campaigns/<digest>/query                 repro.data.query over HTTP
         {"vantage": ..., "table": ..., "where": [...], "group_by": [...],
          "aggregates": [...], "select": [...], "limit": N}
    GET  /campaigns/<digest>/analysis/classify     Fig-4 site classification
         ?vantage=NAME
    GET  /campaigns/<digest>/observers             observer panel for one entry
    GET  /campaigns/<digest>/observers/<name>      one ObserverReport payload

Every response body is canonical JSON (sorted keys, no whitespace), so
a served result can be byte-diffed against the same payload computed
directly from the row objects — the CI serve-smoke and loadtest-smoke
jobs do exactly that.  Errors are structured (``{"error": {"code",
"message"}}``) with the appropriate 4xx status; a traceback never
crosses the socket.

Concurrency model (``repro serve --workers N``):

* requests are dispatched to a fixed pool of ``N`` worker threads
  (``--workers 0`` restores the unbounded thread-per-request mode);
* the campaign LRU (:class:`CampaignCache`) is lock-protected, and a
  cold digest is loaded **once** no matter how many requests arrive for
  it concurrently (per-digest single-flight);
* campaign-scoped 200 responses are memoised in a lock-protected
  :class:`ResponseCache` keyed on ``(campaign digest, canonical query
  digest)``.  Responses are canonical JSON, so a hit can be — and in
  ``verify_cache_hits`` mode *is* — byte-verified against a fresh
  computation.  Entries are invalidated when their campaign leaves the
  LRU, so the cache never outlives the data that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import socket
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlparse

from ..analysis.classify import classify_sites
from ..engine.store import DEFAULT_CACHE_ROOT, CampaignStore
from ..errors import ConfigError, DataError
from ..monitor.database import MeasurementDatabase
from ..obs import get_logger, metrics, span
from ..observers import all_observers, get_observer, observer_names, run_observer
from .columnar import ColumnarDatabase, ColumnarRepository
from .query import MAX_QUERY_ROWS, Query, run_query

_LOG = get_logger("data.serve")

#: request accounting (the serve-smoke job and tests read these).
_REQUESTS = metrics.counter("data.serve.requests")
_ERRORS = metrics.counter("data.serve.errors")
_LATENCY = metrics.histogram("data.serve.latency_ms")

#: campaign-LRU accounting (one load per cold digest, single-flight).
_CAMPAIGN_HITS = metrics.counter("data.serve.cache_hits")
_CAMPAIGN_MISSES = metrics.counter("data.serve.cache_misses")
_CAMPAIGN_LOADS = metrics.counter("data.serve.campaign_loads")
_CAMPAIGN_EVICTIONS = metrics.counter("data.serve.campaign_evictions")
#: cold-load wall clock (informational; the loadtest report exports it).
_CAMPAIGN_LOAD_MS = metrics.histogram("data.serve.campaign_load_ms")

#: response-cache accounting (``/metrics`` exports these; the loadtest
#: harness reads the deltas to compute the cache-hit fraction).
_RESPONSE_HITS = metrics.counter("data.serve.cache.hits")
_RESPONSE_MISSES = metrics.counter("data.serve.cache.misses")
_RESPONSE_EVICTIONS = metrics.counter("data.serve.cache.evictions")
_RESPONSE_INVALIDATIONS = metrics.counter("data.serve.cache.invalidations")
_RESPONSE_VERIFY_FAILURES = metrics.counter("data.serve.cache.verify_failures")

#: worker-pool occupancy (informational; high-water rides on the gauge).
_WORKERS = metrics.gauge("data.serve.workers")
_INFLIGHT = metrics.gauge("data.serve.inflight")


#: environment override for the serving LRU capacity (``repro serve --lru``
#: wins over it; the dataclass default below is the last resort).
LRU_ENV_VAR = "REPRO_SERVE_LRU"
DEFAULT_LRU_CAMPAIGNS = 4

#: default worker-pool width (``--workers``; 0 = thread per request).
DEFAULT_WORKERS = 4

#: default response-cache capacity in entries (``--response-cache``;
#: 0 disables the cache entirely).
DEFAULT_RESPONSE_CACHE_ENTRIES = 256


def default_lru_campaigns() -> int:
    """The LRU capacity from ``REPRO_SERVE_LRU``, validated."""
    raw = os.environ.get(LRU_ENV_VAR)
    if raw is None:
        return DEFAULT_LRU_CAMPAIGNS
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{LRU_ENV_VAR} must be an integer, got {raw!r}"
        ) from None
    return value


@dataclass(frozen=True)
class ServeConfig:
    """Bounds and knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8765
    cache_root: str = DEFAULT_CACHE_ROOT
    #: per-request row ceiling (requests asking for more get a 413).
    max_rows: int = 10_000
    #: loaded columnar campaigns kept in memory (``--lru`` / REPRO_SERVE_LRU).
    lru_campaigns: int = field(default_factory=default_lru_campaigns)
    #: request body ceiling in bytes.
    max_body_bytes: int = 1_000_000
    #: socket timeout per request, seconds.
    request_timeout: float = 30.0
    #: worker threads requests are dispatched across (0 = one thread per
    #: request, the pre-pool behaviour).
    workers: int = DEFAULT_WORKERS
    #: response-cache capacity in entries (0 disables it).
    response_cache_entries: int = DEFAULT_RESPONSE_CACHE_ENTRIES
    #: byte-verify every response-cache hit against a fresh computation
    #: (the soak tests and the loadtest parity gate turn this on).
    verify_cache_hits: bool = False
    #: set SO_REUSEPORT on the listening socket so several ``repro
    #: serve`` processes can share one port (kernel load balancing).
    reuse_port: bool = False

    def __post_init__(self) -> None:
        if self.max_rows <= 0 or self.max_rows > MAX_QUERY_ROWS:
            raise DataError(
                f"max_rows must be in 1..{MAX_QUERY_ROWS}, got {self.max_rows}"
            )
        if not isinstance(self.lru_campaigns, int) or self.lru_campaigns <= 0:
            raise ConfigError(
                f"lru_campaigns must be a positive integer, "
                f"got {self.lru_campaigns!r}"
            )
        if not isinstance(self.workers, int) or self.workers < 0:
            raise ConfigError(
                f"workers must be a non-negative integer, got {self.workers!r}"
            )
        if (
            not isinstance(self.response_cache_entries, int)
            or self.response_cache_entries < 0
        ):
            raise ConfigError(
                f"response_cache_entries must be a non-negative integer, "
                f"got {self.response_cache_entries!r}"
            )


class HttpError(DataError):
    """An error with a status code and a machine-readable code."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


def _bad_request(message: str) -> HttpError:
    return HttpError(400, "bad_request", message)


def _not_found(message: str) -> HttpError:
    return HttpError(404, "not_found", message)


@dataclass
class LoadedCampaign:
    """One store entry resident in the serving LRU."""

    digest: str
    meta: dict
    vantages: dict[str, dict]
    columnar: dict[str, ColumnarDatabase]
    #: row-object databases, materialised per vantage on first use.
    _databases: dict[str, MeasurementDatabase] = field(default_factory=dict)
    #: guards the lazy materialisation under concurrent requests.
    _db_lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def columnar_for(self, vantage: str | None) -> ColumnarDatabase:
        if vantage is None:
            raise _bad_request("a 'vantage' parameter is required")
        if vantage not in self.columnar:
            raise _not_found(
                f"unknown vantage {vantage!r} "
                f"(vantages: {', '.join(sorted(self.columnar))})"
            )
        return self.columnar[vantage]

    def database_for(self, vantage: str | None) -> MeasurementDatabase:
        cdb = self.columnar_for(vantage)
        with self._db_lock:
            if vantage not in self._databases:
                self._databases[vantage] = cdb.to_database()
            return self._databases[vantage]


class _Flight:
    """The single-flight slot one cold digest's loaders share."""

    __slots__ = ("done", "campaign", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.campaign: LoadedCampaign | None = None
        self.error: BaseException | None = None


class CampaignCache:
    """A lock-protected LRU of loaded columnar campaigns keyed by digest.

    ``ThreadingHTTPServer`` (and the worker pool) serve concurrently, so
    every mutation of the underlying ``OrderedDict`` happens under one
    lock.  A cold digest is loaded from the store exactly once no matter
    how many requests ask for it at the same moment: the first request
    becomes the *leader* and loads outside the lock; the rest park on a
    per-digest :class:`_Flight` and reuse the leader's result (or error).
    ``data.serve.campaign_loads`` counts actual store loads — the
    single-flight regression test hammers one cold digest from many
    threads and asserts the counter moved by exactly one.
    """

    def __init__(
        self,
        store: CampaignStore,
        capacity: int,
        on_evict=None,
    ) -> None:
        self.store = store
        self.capacity = capacity
        self.on_evict = on_evict
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, LoadedCampaign] = OrderedDict()
        self._loading: dict[str, _Flight] = {}

    def get(self, digest: str) -> LoadedCampaign:
        with self._lock:
            entry = self._entries.get(digest)
            if entry is not None:
                self._entries.move_to_end(digest)
                _CAMPAIGN_HITS.inc()
                return entry
            _CAMPAIGN_MISSES.inc()
            flight = self._loading.get(digest)
            if flight is None:
                flight = _Flight()
                self._loading[digest] = flight
                leader = True
            else:
                leader = False
        if not leader:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.campaign is not None
            return flight.campaign
        try:
            campaign = self._load(digest)
        except BaseException as exc:
            with self._lock:
                self._loading.pop(digest, None)
            flight.error = exc
            flight.done.set()
            raise
        evicted: list[str] = []
        with self._lock:
            self._entries[digest] = campaign
            self._entries.move_to_end(digest)
            while len(self._entries) > self.capacity:
                victim, _ = self._entries.popitem(last=False)
                evicted.append(victim)
            self._loading.pop(digest, None)
        flight.campaign = campaign
        flight.done.set()
        for victim in evicted:
            _CAMPAIGN_EVICTIONS.inc()
            _LOG.debug("evicted campaign from LRU", extra={"digest": victim[:12]})
            if self.on_evict is not None:
                self.on_evict(victim)
        return campaign

    def _load(self, digest: str) -> LoadedCampaign:
        """One actual store load (the single-flight leader's job)."""
        _CAMPAIGN_LOADS.inc()
        started = time.perf_counter()
        with span("serve.load_campaign", digest=digest[:12]):
            loaded = self.store.load_columnar_entry(digest)
        _CAMPAIGN_LOAD_MS.observe((time.perf_counter() - started) * 1000.0)
        if loaded is None:
            raise _not_found(f"unknown campaign digest {digest!r}")
        meta, columnar = loaded
        return LoadedCampaign(
            digest=digest,
            meta=meta,
            vantages=dict(columnar.vantages),
            columnar=dict(columnar.databases),
        )

    def evict_all(self) -> None:
        """Drop every resident campaign (tests and shutdown paths)."""
        with self._lock:
            evicted = list(self._entries)
            self._entries.clear()
        for victim in evicted:
            _CAMPAIGN_EVICTIONS.inc()
            if self.on_evict is not None:
                self.on_evict(victim)

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._entries)


class ResponseCache:
    """A lock-protected LRU of canonical response bytes.

    Keyed on ``(campaign digest, canonical query digest)``.  Only
    campaign-scoped 200 responses enter; they are pure functions of the
    (content-addressed, immutable) store entry, so a resident value can
    only ever be the exact bytes a fresh computation would produce —
    which ``verify_cache_hits`` checks literally.  When a campaign is
    evicted from the :class:`CampaignCache` every response cached under
    its digest is invalidated, so the response cache never serves data
    whose backing campaign the server no longer holds.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, str], bytes] = OrderedDict()
        self._by_campaign: dict[str, set[str]] = {}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def get(self, digest: str, query_digest: str) -> bytes | None:
        with self._lock:
            data = self._entries.get((digest, query_digest))
            if data is not None:
                self._entries.move_to_end((digest, query_digest))
            return data

    def put(self, digest: str, query_digest: str, data: bytes) -> None:
        if not self.enabled:
            return
        with self._lock:
            key = (digest, query_digest)
            self._entries[key] = data
            self._entries.move_to_end(key)
            self._by_campaign.setdefault(digest, set()).add(query_digest)
            while len(self._entries) > self.capacity:
                (victim_digest, victim_query), _ = self._entries.popitem(
                    last=False
                )
                _RESPONSE_EVICTIONS.inc()
                queries = self._by_campaign.get(victim_digest)
                if queries is not None:
                    queries.discard(victim_query)
                    if not queries:
                        del self._by_campaign[victim_digest]

    def invalidate(self, digest: str) -> int:
        """Drop every entry cached under one campaign digest."""
        with self._lock:
            queries = self._by_campaign.pop(digest, None)
            if not queries:
                return 0
            for query_digest in queries:
                del self._entries[(digest, query_digest)]
            n = len(queries)
        _RESPONSE_EVICTIONS.inc(n)
        _RESPONSE_INVALIDATIONS.inc(n)
        _LOG.debug(
            "invalidated response-cache entries",
            extra={"digest": digest[:12], "n": n},
        )
        return n

    @property
    def occupancy(self) -> int:
        with self._lock:
            return len(self._entries)


def canonical_json(payload: dict) -> bytes:
    """The byte-stable response encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def query_digest(
    method: str, path: str, params: dict[str, str], body: bytes | None
) -> str:
    """The canonical digest of one request's cache-relevant identity.

    Sorted parameters and a canonical-JSON envelope make the digest
    independent of query-string ordering; the raw body bytes ride along
    hex-encoded, so two byte-identical POSTs share an entry while any
    body difference (even whitespace) keys separately — the cache never
    has to guess whether two bodies mean the same query.
    """
    envelope = {
        "method": method,
        "path": path,
        "params": sorted(params.items()),
        "body": (body or b"").hex(),
    }
    return hashlib.sha256(canonical_json(envelope)).hexdigest()


def classification_payload(db: MeasurementDatabase) -> dict:
    """Fig-4 site classification of one vantage, as a JSON-ready dict.

    Computed through ``analysis.classify`` (which itself runs on the
    query core) over the dual-stack population; the CI serve-smoke job
    byte-compares this payload computed from the columnar store against
    the same payload computed from the row-object repository.
    """
    classifications = classify_sites(db, db.dual_stack_sites())
    return {
        "vantage": db.vantage_name,
        "n_sites": len(classifications),
        "sites": [
            {
                "site_id": site_id,
                "category": c.category.value,
                "dest_v4": c.dest_v4,
                "dest_v6": c.dest_v6,
                "path_v4": list(c.path_v4),
                "path_v6": list(c.path_v6),
            }
            for site_id, c in sorted(classifications.items())
        ],
    }


class ServeApp:
    """The socket-free request core (handlers and tests call this)."""

    def __init__(self, store: CampaignStore, config: ServeConfig) -> None:
        self.config = config
        self.response_cache = ResponseCache(config.response_cache_entries)
        self.cache = CampaignCache(
            store, config.lru_campaigns, on_evict=self.response_cache.invalidate
        )
        self.store = store

    # -- routing -------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes | None = None,
    ) -> tuple[int, dict]:
        """Dispatch one request; returns ``(status, payload)``."""
        try:
            return 200, self._route(method, path, params, body)
        except HttpError as exc:
            _ERRORS.inc()
            return exc.status, {
                "error": {"code": exc.code, "message": str(exc)}
            }
        except DataError as exc:
            _ERRORS.inc()
            return 400, {"error": {"code": "bad_request", "message": str(exc)}}
        except Exception as exc:  # never let a traceback cross the socket
            _ERRORS.inc()
            _LOG.warning(
                "internal error serving request",
                extra={"path": path, "error": str(exc)},
            )
            return 500, {
                "error": {"code": "internal", "message": "internal server error"}
            }

    def handle_bytes(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes | None = None,
    ) -> tuple[int, bytes, str]:
        """:meth:`handle` through the response cache.

        Returns ``(status, canonical bytes, cache state)`` where the
        state is ``hit``/``miss`` for cacheable requests and ``bypass``
        for everything else (non-campaign paths, cache disabled).  Only
        200 responses are stored.  In ``verify_cache_hits`` mode every
        hit is recomputed and byte-compared before being served; a
        mismatch is counted, logged, and answered with the fresh bytes.
        """
        key = self._cache_key(method, path, params, body)
        if key is None:
            status, payload = self.handle(method, path, params, body)
            return status, canonical_json(payload), "bypass"
        cached = self.response_cache.get(*key)
        if cached is not None:
            _RESPONSE_HITS.inc()
            if self.config.verify_cache_hits:
                status, payload = self.handle(method, path, params, body)
                fresh = canonical_json(payload)
                if status != 200 or fresh != cached:
                    _RESPONSE_VERIFY_FAILURES.inc()
                    _LOG.warning(
                        "response-cache hit failed byte verification",
                        extra={"path": path},
                    )
                    self.response_cache.invalidate(key[0])
                    return status, fresh, "miss"
            return 200, cached, "hit"
        _RESPONSE_MISSES.inc()
        status, payload = self.handle(method, path, params, body)
        data = canonical_json(payload)
        if status == 200:
            self.response_cache.put(key[0], key[1], data)
        return status, data, "miss"

    def _cache_key(
        self,
        method: str,
        path: str,
        params: dict[str, str],
        body: bytes | None,
    ) -> tuple[str, str] | None:
        """The response-cache key, or None when the request bypasses it.

        Only campaign-scoped resources are cacheable: their payloads are
        pure functions of an immutable, content-addressed store entry.
        ``/healthz``, ``/metrics``, and the store listing change between
        requests and never enter the cache.
        """
        if not self.response_cache.enabled:
            return None
        parts = [part for part in path.split("/") if part]
        if len(parts) < 2 or parts[0] != "campaigns":
            return None
        return parts[1], query_digest(method, path, params, body)

    def _route(
        self, method: str, path: str, params: dict[str, str], body: bytes | None
    ) -> dict:
        parts = [part for part in path.split("/") if part]
        if parts == ["healthz"]:
            self._require(method, "GET")
            return {
                "status": "ok",
                "lru": {
                    "occupancy": self.cache.occupancy,
                    "capacity": self.cache.capacity,
                },
                "response_cache": {
                    "occupancy": self.response_cache.occupancy,
                    "capacity": self.response_cache.capacity,
                },
                "workers": self.config.workers,
            }
        if parts == ["metrics"]:
            self._require(method, "GET")
            return self._metrics()
        if parts == ["observers"]:
            self._require(method, "GET")
            return self._list_observers()
        if parts == ["campaigns"]:
            self._require(method, "GET")
            return self._list_campaigns()
        if len(parts) >= 2 and parts[0] == "campaigns":
            campaign = self.cache.get(parts[1])
            if len(parts) == 2:
                self._require(method, "GET")
                return self._campaign_detail(campaign)
            if len(parts) == 4 and parts[2] == "tables":
                self._require(method, "GET")
                return self._table_page(campaign, parts[3], params)
            if len(parts) == 3 and parts[2] == "query":
                self._require(method, "POST")
                return self._query(campaign, body)
            if len(parts) == 4 and parts[2] == "analysis":
                self._require(method, "GET")
                return self._analysis(campaign, parts[3], params)
            if len(parts) == 3 and parts[2] == "observers":
                self._require(method, "GET")
                return self._campaign_observers(campaign)
            if len(parts) == 4 and parts[2] == "observers":
                self._require(method, "GET")
                return self._observer_report(campaign, parts[3])
        raise _not_found(f"no such resource: {path}")

    @staticmethod
    def _require(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(
                405, "method_not_allowed", f"use {expected} for this resource"
            )

    # -- endpoints -----------------------------------------------------------

    @staticmethod
    def _metrics() -> dict:
        """The process's ``repro.obs`` registry, canonical-JSON ready.

        Counters, gauges, and histograms (with p50/p90/p99) — the live
        equivalent of the ``BENCH_*.json`` metrics block, for scraping a
        running server (``data.serve.requests``, the campaign-LRU
        counters, and the ``data.serve.cache.*`` response-cache
        hit/miss/eviction counters included).
        """
        return {"metrics": metrics.get_registry().as_dict()}

    @staticmethod
    def _list_observers() -> dict:
        """The observer registry listing (names, versions, tables)."""
        observers = [observer.describe() for observer in all_observers()]
        return {"observers": observers, "n_observers": len(observers)}

    def _campaign_observers(self, campaign: LoadedCampaign) -> dict:
        """The observer panel's availability for one campaign entry."""
        persisted = set(self.store.list_observer_reports(campaign.digest))
        return {
            "digest": campaign.digest,
            "observers": [
                {
                    "name": observer.name,
                    "version": observer.version,
                    "persisted": observer.name in persisted,
                }
                for observer in all_observers()
            ],
        }

    def _observer_report(self, campaign: LoadedCampaign, name: str) -> dict:
        """One observer report: persisted artifact bytes when present,
        otherwise recomputed from the loaded columnar data.  Both paths
        serve byte-identical canonical JSON — the report content digest
        guarantees it, and the artifact is re-verified before serving."""
        from ..observers.reports import ObserverReport

        if name not in observer_names():
            raise _not_found(
                f"unknown observer {name!r} "
                f"(observers: {', '.join(observer_names())})"
            )
        raw = self.store.load_observer_report(campaign.digest, name)
        if raw is not None:
            try:
                payload = json.loads(raw.decode("utf-8"))
                ObserverReport.from_payload(payload)  # digest re-check
                return payload
            except (ValueError, DataError) as exc:
                _LOG.warning(
                    "persisted observer report unreadable; recomputing",
                    extra={"observer": name, "error": str(exc)},
                )
        observer = get_observer(name)
        repository = ColumnarRepository(
            vantages=dict(campaign.vantages),
            databases=dict(campaign.columnar),
        )
        with span("serve.observer", observer=name, digest=campaign.digest[:12]):
            report = run_observer(observer, repository, campaign.digest)
        return report.to_payload()

    def _list_campaigns(self) -> dict:
        campaigns = [
            {
                "digest": entry.digest,
                "kind": entry.kind,
                "seed": entry.seed,
                "repository_digest": entry.repository_digest,
            }
            for entry in self.store.entries()
        ]
        return {"campaigns": campaigns, "n_campaigns": len(campaigns)}

    def _campaign_detail(self, campaign: LoadedCampaign) -> dict:
        return {
            "digest": campaign.digest,
            "kind": campaign.meta.get("kind"),
            "seed": campaign.meta.get("seed"),
            "repository_digest": campaign.meta.get("repository_digest"),
            "vantages": {
                name: {
                    "asn": vantage.get("asn"),
                    "location": vantage.get("location"),
                    "tables": campaign.columnar[name].row_counts(),
                }
                for name, vantage in sorted(campaign.vantages.items())
            },
        }

    def _table_page(
        self, campaign: LoadedCampaign, table_name: str, params: dict[str, str]
    ) -> dict:
        cdb = campaign.columnar_for(params.get("vantage"))
        table = cdb.table(table_name)
        offset = self._int_param(params, "offset", 0, minimum=0)
        limit = self._int_param(
            params, "limit", min(self.config.max_rows, 1000), minimum=1
        )
        self._check_limit(limit)
        rows = range(table.n_rows)[offset : offset + limit]
        columns = {
            name: column.take(rows)
            for name, column in table.columns.items()
        }
        return {
            "vantage": cdb.vantage_name,
            "table": table_name,
            "total_rows": table.n_rows,
            "offset": offset,
            "n_rows": len(rows),
            "truncated": offset + len(rows) < table.n_rows,
            "columns": columns,
        }

    def _query(self, campaign: LoadedCampaign, body: bytes | None) -> dict:
        if not body:
            raise _bad_request("POST /query requires a JSON body")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise _bad_request(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _bad_request("query payload must be a JSON object")
        query = Query.from_dict(payload)
        if query.limit is not None:
            self._check_limit(query.limit)
        else:
            query = Query(
                table=query.table,
                where=query.where,
                select=query.select,
                group_by=query.group_by,
                aggregates=query.aggregates,
                limit=self.config.max_rows,
            )
        cdb = campaign.columnar_for(payload.get("vantage"))
        with span("serve.query", table=query.table, vantage=cdb.vantage_name):
            result = run_query(cdb, query)
        response = result.to_payload()
        response["vantage"] = cdb.vantage_name
        response["table"] = query.table
        return response

    def _analysis(
        self, campaign: LoadedCampaign, name: str, params: dict[str, str]
    ) -> dict:
        if name != "classify":
            raise _not_found(f"unknown analysis endpoint {name!r}")
        db = campaign.database_for(params.get("vantage"))
        with span("serve.classify", vantage=db.vantage_name):
            return classification_payload(db)

    # -- parameter plumbing --------------------------------------------------

    def _check_limit(self, limit: int) -> None:
        if limit > self.config.max_rows:
            raise HttpError(
                413,
                "too_large",
                f"limit {limit} exceeds this server's max_rows "
                f"({self.config.max_rows}); page with offset/limit instead",
            )

    @staticmethod
    def _int_param(
        params: dict[str, str], name: str, default: int, minimum: int
    ) -> int:
        raw = params.get(name)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise _bad_request(f"parameter {name!r} must be an integer") from None
        if value < minimum:
            raise _bad_request(f"parameter {name!r} must be >= {minimum}")
        return value


class _Handler(BaseHTTPRequestHandler):
    """Thin socket adapter around :class:`ServeApp.handle_bytes`."""

    server_version = "repro-serve/2"
    protocol_version = "HTTP/1.1"
    app: ServeApp  # set by make_server

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        _REQUESTS.inc()
        parsed = urlparse(self.path)
        params = dict(parse_qsl(parsed.query))
        body: bytes | None = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            if length > self.app.config.max_body_bytes:
                self._respond(
                    413,
                    canonical_json(
                        {
                            "error": {
                                "code": "too_large",
                                "message": (
                                    f"request body of {length} bytes exceeds "
                                    f"the {self.app.config.max_body_bytes}-"
                                    "byte cap"
                                ),
                            }
                        }
                    ),
                    "bypass",
                )
                return
            body = self.rfile.read(length) if length else b""
        started = time.perf_counter()
        with span("serve.request", method=method, path=parsed.path):
            status, data, cache_state = self.app.handle_bytes(
                method, parsed.path, params, body
            )
        _LATENCY.observe((time.perf_counter() - started) * 1000.0)
        self._respond(status, data, cache_state)

    def _respond(self, status: int, data: bytes, cache_state: str) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.send_header("X-Repro-Response-Cache", cache_state)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:  # route to repro.obs
        _LOG.debug("http " + fmt % args)


class PooledHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` with a fixed worker pool.

    Instead of spawning an unbounded thread per connection, accepted
    requests are submitted to a ``ThreadPoolExecutor`` of ``workers``
    threads — concurrency is bounded, excess connections queue in the
    executor, and the listen backlog absorbs bursts.  ``workers=0``
    falls back to the stock thread-per-request behaviour.  With
    ``reuse_port`` the listening socket sets ``SO_REUSEPORT`` (where the
    platform offers it), so several server *processes* can share one
    port and let the kernel balance accepts across them.
    """

    def __init__(
        self,
        server_address,
        handler_class,
        workers: int = DEFAULT_WORKERS,
        reuse_port: bool = False,
    ) -> None:
        self._reuse_port = reuse_port
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve"
            )
            if workers > 0
            else None
        )
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        _WORKERS.set(workers)
        super().__init__(server_address, handler_class)

    def server_bind(self) -> None:
        if self._reuse_port:
            if not hasattr(socket, "SO_REUSEPORT"):
                raise ConfigError(
                    "this platform does not support SO_REUSEPORT"
                )
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def process_request(self, request, client_address) -> None:
        if self._pool is None:
            super().process_request(request, client_address)
            return
        self._pool.submit(self._process_in_worker, request, client_address)

    def _process_in_worker(self, request, client_address) -> None:
        with self._inflight_lock:
            self._inflight += 1
            _INFLIGHT.update_max(self._inflight)
        try:
            # ThreadingMixIn's per-thread body: finish_request + cleanup.
            self.process_request_thread(request, client_address)
        finally:
            with self._inflight_lock:
                self._inflight -= 1
                _INFLIGHT.set(self._inflight)

    def server_close(self) -> None:
        super().server_close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)


def make_server(
    config: ServeConfig, store: CampaignStore | None = None
) -> PooledHTTPServer:
    """Build a ready-to-run pooled HTTP server over the store."""
    store = store or CampaignStore(pathlib.Path(config.cache_root))
    app = ServeApp(store, config)
    handler = type("BoundHandler", (_Handler,), {"app": app})
    handler.timeout = config.request_timeout
    server = PooledHTTPServer(
        (config.host, config.port),
        handler,
        workers=config.workers,
        reuse_port=config.reuse_port,
    )
    server.daemon_threads = True
    return server


def run_server(config: ServeConfig, store: CampaignStore | None = None) -> int:
    """Serve until interrupted (the ``repro serve`` entry point)."""
    server = make_server(config, store)
    host, port = server.server_address[:2]
    workers = f"{config.workers} worker(s)" if config.workers else "unpooled"
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store: {config.cache_root}, {workers}, "
          f"response cache: {config.response_cache_entries} entries)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    finally:
        server.server_close()
    return 0
