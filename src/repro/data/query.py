"""The composable query core over columnar measurement tables.

One small set of primitives — filter (:func:`scan` with predicate
pushdown into the sorted indices), projection, and group-aggregate
(:func:`run_query`) — backs both the batch analysis passes
(``analysis.classify`` / ``confidence`` / ``hopcount``,
``monitor.aggregate``'s cross-vantage summaries) and the ad-hoc queries
``repro serve`` answers over HTTP.  Work is metered in deterministic
counters (``data.query.scans`` / ``rows_scanned`` / ``index_hits`` /
``groups_emitted``) that the perf-regression gates compare exactly.

Every helper in the "domain helpers" section reproduces a
:class:`~repro.monitor.database.MeasurementDatabase` row-object query
bit for bit: scans return rows in ascending row id, which is the
monitor's insertion (round) order, so list contents, float-summation
order, and tie-breaks are unchanged by the migration.

Execution is kernelized: predicates evaluate column-at-a-time over the
raw typed storage (dictionary predicates evaluate once per distinct
code, not once per row), and projection/grouping bulk-decode via
:meth:`Column.take`.  Setting ``REPRO_QUERY_KERNELS=0`` switches to the
row-at-a-time reference path; both paths produce identical result bytes,
identical ``data.query.*`` counters, and identical structured errors —
the parity suite byte-diffs them across every query shape.
"""

from __future__ import annotations

import operator
import os
from dataclasses import dataclass, field

from ..errors import DataError
from ..net.addresses import AddressFamily
from ..obs import metrics
from .columnar import ColumnarDatabase, ColumnarTable, DictColumn

#: deterministic work counters (snapshot by the ``query`` perf workload).
_SCANS = metrics.counter("data.query.scans")
_ROWS_SCANNED = metrics.counter("data.query.rows_scanned")
_INDEX_HITS = metrics.counter("data.query.index_hits")
_GROUPS_EMITTED = metrics.counter("data.query.groups_emitted")

#: comparison operators a filter may use.
FILTER_OPS = ("eq", "ne", "lt", "le", "gt", "ge", "in")

#: aggregate operators; all but ``count`` require a column.
AGGREGATE_OPS = ("count", "sum", "mean", "min", "max")

#: hard ceiling on rows a single query may return (serve clamps lower).
MAX_QUERY_ROWS = 100_000


@dataclass(frozen=True)
class Filter:
    """One predicate: ``column <op> value``."""

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in FILTER_OPS:
            raise DataError(
                f"unknown filter op {self.op!r} (expected one of {FILTER_OPS})"
            )
        if self.op == "in" and not isinstance(self.value, (list, tuple)):
            raise DataError("filter op 'in' requires a list value")

    def matches(self, value) -> bool:
        try:
            if self.op == "eq":
                return value == self.value
            if self.op == "ne":
                return value != self.value
            if self.op == "lt":
                return value < self.value
            if self.op == "le":
                return value <= self.value
            if self.op == "gt":
                return value > self.value
            if self.op == "ge":
                return value >= self.value
            return value in self.value  # "in"
        except TypeError as exc:
            raise DataError(
                f"filter {self.column} {self.op} {self.value!r}: "
                f"incomparable with column value {value!r}"
            ) from exc


@dataclass(frozen=True)
class Aggregate:
    """One aggregate output: ``alias = op(column)``."""

    op: str
    column: str | None = None
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.op not in AGGREGATE_OPS:
            raise DataError(
                f"unknown aggregate op {self.op!r} "
                f"(expected one of {AGGREGATE_OPS})"
            )
        if self.op != "count" and self.column is None:
            raise DataError(f"aggregate {self.op!r} requires a column")

    @property
    def name(self) -> str:
        if self.alias:
            return self.alias
        return self.op if self.column is None else f"{self.op}_{self.column}"


@dataclass(frozen=True)
class Query:
    """A declarative query: filter, then project or group-aggregate."""

    table: str
    where: tuple[Filter, ...] = ()
    select: tuple[str, ...] = ()
    group_by: tuple[str, ...] = ()
    aggregates: tuple[Aggregate, ...] = ()
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.aggregates and not self.group_by:
            raise DataError("aggregates require group_by columns")
        if self.group_by and self.select:
            raise DataError("select and group_by are mutually exclusive")
        if self.group_by and not self.aggregates:
            raise DataError("group_by requires at least one aggregate")
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit <= 0
        ):
            raise DataError(f"limit must be a positive integer, got {self.limit!r}")

    @classmethod
    def from_dict(cls, payload: dict) -> "Query":
        """Build a validated query from an untrusted JSON payload."""
        if not isinstance(payload, dict):
            raise DataError("query payload must be a JSON object")
        known = {"table", "where", "select", "group_by", "aggregates", "limit"}
        unknown = set(payload) - known - {"vantage"}
        if unknown:
            raise DataError(f"unknown query fields {sorted(unknown)}")
        table = payload.get("table")
        if not isinstance(table, str):
            raise DataError("query requires a 'table' string")
        filters = []
        for entry in _as_list(payload.get("where", []), "where"):
            if not isinstance(entry, dict):
                raise DataError("each 'where' entry must be an object")
            filters.append(
                Filter(
                    column=_as_str(entry.get("column"), "where.column"),
                    op=_as_str(entry.get("op"), "where.op"),
                    value=entry.get("value"),
                )
            )
        aggregates = []
        for entry in _as_list(payload.get("aggregates", []), "aggregates"):
            if not isinstance(entry, dict):
                raise DataError("each 'aggregates' entry must be an object")
            aggregates.append(
                Aggregate(
                    op=_as_str(entry.get("op"), "aggregates.op"),
                    column=entry.get("column"),
                    alias=entry.get("alias"),
                )
            )
        return cls(
            table=table,
            where=tuple(filters),
            select=tuple(_as_list(payload.get("select", []), "select")),
            group_by=tuple(_as_list(payload.get("group_by", []), "group_by")),
            aggregates=tuple(aggregates),
            limit=payload.get("limit"),
        )


def _as_list(value, label: str) -> list:
    if not isinstance(value, (list, tuple)):
        raise DataError(f"query field {label!r} must be a list")
    return list(value)


def _as_str(value, label: str) -> str:
    if not isinstance(value, str):
        raise DataError(f"query field {label!r} must be a string")
    return value


@dataclass
class QueryResult:
    """Columns out, plus the work accounting the perf gates consume."""

    columns: dict[str, list]
    n_rows: int
    truncated: bool = False
    stats: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        return {
            "columns": self.columns,
            "n_rows": self.n_rows,
            "truncated": self.truncated,
            "stats": self.stats,
        }


# -- scanning ----------------------------------------------------------------


#: comparison callables backing the plain-column predicate kernels.
_OPERATORS = {
    "eq": operator.eq,
    "ne": operator.ne,
    "lt": operator.lt,
    "le": operator.le,
    "gt": operator.gt,
    "ge": operator.ge,
}


def kernels_enabled() -> bool:
    """Whole-column kernels run unless ``REPRO_QUERY_KERNELS=0``."""
    return os.environ.get("REPRO_QUERY_KERNELS", "1") != "0"


def _filter_rows_kernel(
    column: "Column | DictColumn", predicate: Filter, rows: list[int]
) -> list[int]:
    """Rows surviving one predicate, evaluated over raw storage.

    Dictionary columns evaluate the predicate once per *distinct code*
    touched (memoised truth table); plain columns compare the backing
    array values directly.  On an incomparable value the structured
    :class:`DataError` of the reference path is reproduced exactly —
    same offending row, same message.
    """
    out: list[int] = []
    append = out.append
    if isinstance(column, DictColumn):
        codes = column.codes
        dictionary = column.dictionary
        truth: dict[int, bool] = {}
        for row in rows:
            code = codes[row]
            verdict = truth.get(code)
            if verdict is None:
                verdict = predicate.matches(dictionary[code])
                truth[code] = verdict
            if verdict:
                append(row)
        return out
    values = column.values
    try:
        if predicate.op == "in":
            choices = predicate.value
            for row in rows:
                if values[row] in choices:
                    append(row)
        else:
            compare = _OPERATORS[predicate.op]
            target = predicate.value
            for row in rows:
                if compare(values[row], target):
                    append(row)
    except TypeError:
        # Re-walk through the reference predicate so the structured
        # error carries the first offending row's decoded value.
        for row in rows:
            predicate.matches(column.get(row))
        raise  # pragma: no cover - matches() always raises first
    return out


def scan(table: ColumnarTable, filters: tuple[Filter, ...] = ()) -> list[int]:
    """Matching row ids in ascending order, index-accelerated.

    Equality predicates on a prefix of the table's index keys are pushed
    into the sorted index (an equal-range probe instead of a full scan);
    the remaining predicates are evaluated per candidate row.
    """
    _SCANS.inc()
    for predicate in filters:
        table.column(predicate.column)  # unknown columns fail loudly
    eq = {
        predicate.column: predicate
        for predicate in filters
        if predicate.op == "eq"
    }
    prefix: list = []
    used: list[Filter] = []
    for key in table.index_keys:
        if key not in eq:
            break
        column = table.column(key)
        if isinstance(column, DictColumn):
            code = column.encode(eq[key].value)
            if code is None:
                return []
            prefix.append(code)
        else:
            prefix.append(eq[key].value)
        used.append(eq[key])

    if prefix:
        _INDEX_HITS.inc()
        candidates = table.index().equal_range(tuple(prefix))
        remaining = tuple(p for p in filters if p not in used)
    else:
        candidates = range(table.n_rows)
        remaining = filters

    _ROWS_SCANNED.inc(len(candidates))
    if not remaining:
        return list(candidates)
    if not kernels_enabled():
        columns = [(table.column(p.column), p) for p in remaining]
        return [
            row
            for row in candidates
            if all(p.matches(column.get(row)) for column, p in columns)
        ]
    rows = candidates if isinstance(candidates, list) else list(candidates)
    for predicate in remaining:
        rows = _filter_rows_kernel(table.column(predicate.column), predicate, rows)
        if not rows:
            break
    return rows


def gather(table: ColumnarTable, column: str, rows: list[int]) -> list:
    """Decoded values of one column for the given rows, in row order."""
    col = table.column(column)
    if kernels_enabled():
        return col.take(rows)
    return [col.get(row) for row in rows]


# -- declarative execution ---------------------------------------------------


def run_query(cdb: ColumnarDatabase, query: Query) -> QueryResult:
    """Execute a :class:`Query` against one columnar database."""
    table = cdb.table(query.table)
    rows = scan(table, query.where)
    stats = {"table_rows": table.n_rows, "rows_matched": len(rows)}

    if query.group_by:
        return _group_aggregate(table, query, rows, stats)

    names = query.select or tuple(table.columns)
    for name in names:
        table.column(name)
    limit = min(query.limit or MAX_QUERY_ROWS, MAX_QUERY_ROWS)
    truncated = len(rows) > limit
    kept = rows[:limit]
    columns = {name: gather(table, name, kept) for name in names}
    return QueryResult(
        columns=columns, n_rows=len(kept), truncated=truncated, stats=stats
    )


def _group_aggregate(
    table: ColumnarTable, query: Query, rows: list[int], stats: dict
) -> QueryResult:
    key_columns = [table.column(name) for name in query.group_by]
    for aggregate in query.aggregates:
        if aggregate.column is not None:
            table.column(aggregate.column)
    groups: dict[tuple, list[int]] = {}
    if kernels_enabled():
        decoded = [column.take(rows) for column in key_columns]
        for row, key in zip(rows, zip(*decoded)):
            groups.setdefault(key, []).append(row)
    else:
        for row in rows:
            key = tuple(column.get(row) for column in key_columns)
            groups.setdefault(key, []).append(row)
    _GROUPS_EMITTED.inc(len(groups))

    limit = min(query.limit or MAX_QUERY_ROWS, MAX_QUERY_ROWS)
    keys = list(groups)
    truncated = len(keys) > limit
    keys = keys[:limit]

    columns: dict[str, list] = {name: [] for name in query.group_by}
    for aggregate in query.aggregates:
        columns[aggregate.name] = []
    for key in keys:
        members = groups[key]
        for name, value in zip(query.group_by, key):
            columns[name].append(value)
        for aggregate in query.aggregates:
            columns[aggregate.name].append(
                _aggregate_value(table, aggregate, members)
            )
    stats["groups_emitted"] = len(groups)
    return QueryResult(
        columns=columns, n_rows=len(keys), truncated=truncated, stats=stats
    )


def _aggregate_value(table: ColumnarTable, aggregate: Aggregate, rows: list[int]):
    if aggregate.op == "count":
        return len(rows)
    values = gather(table, aggregate.column, rows)
    if aggregate.op == "sum":
        return sum(values)
    if aggregate.op == "mean":
        return sum(values) / len(values) if values else None
    if aggregate.op == "min":
        return min(values) if values else None
    return max(values) if values else None  # "max"


# -- domain helpers (the analysis layer's row-object queries) ----------------


def _site_family(site_id: int, family: AddressFamily) -> tuple[Filter, Filter]:
    return (
        Filter("site_id", "eq", site_id),
        Filter("family", "eq", family.value),
    )


def converged_speeds(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> list[float]:
    """Per-round mean speeds in round order (converged rounds only) —
    :meth:`MeasurementDatabase.speeds` on the query core."""
    table = cdb.table("downloads")
    rows = scan(
        table, (*_site_family(site_id, family), Filter("converged", "eq", True))
    )
    return gather(table, "mean_speed", rows)


def download_rounds(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> list[int]:
    """Round indices of the converged downloads, in round order."""
    table = cdb.table("downloads")
    rows = scan(
        table, (*_site_family(site_id, family), Filter("converged", "eq", True))
    )
    return gather(table, "round", rows)


def mean_speed(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> float | None:
    """Mean of the per-round average speeds; None without data.

    Sums in round order, so the float result is bit-identical to
    ``analysis.metrics.site_mean_speed``.
    """
    speeds = converged_speeds(cdb, site_id, family)
    if not speeds:
        return None
    return sum(speeds) / len(speeds)


def dest_asn(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> int | None:
    """Destination AS of the site's address in ``family`` (latest row)."""
    table = cdb.table("paths")
    rows = scan(table, _site_family(site_id, family))
    if not rows:
        return None
    return table.column("dest_asn").get(rows[-1])


def modal_as_path(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> tuple[int, ...] | None:
    """The most frequently observed AS path (ties: latest wins) —
    :meth:`MeasurementDatabase.as_path` over the path dictionary codes."""
    table = cdb.table("paths")
    rows = scan(table, _site_family(site_id, family))
    if not rows:
        return None
    path_column = table.column("as_path")
    codes = [path_column.raw(row) for row in rows]
    counts: dict[int, int] = {}
    for code in codes:
        counts[code] = counts.get(code, 0) + 1
    best = max(counts.values())
    for code in reversed(codes):
        if counts[code] == best:
            return tuple(path_column.dictionary[code])
    return tuple(path_column.dictionary[codes[-1]])  # pragma: no cover


def path_change_rounds(
    cdb: ColumnarDatabase, site_id: int, family: AddressFamily
) -> list[int]:
    """Rounds at which the observed AS path differed from the previous."""
    table = cdb.table("paths")
    rows = scan(table, _site_family(site_id, family))
    path_column = table.column("as_path")
    round_column = table.column("round")
    changes: list[int] = []
    for prev, cur in zip(rows, rows[1:]):
        if path_column.raw(prev) != path_column.raw(cur):
            changes.append(round_column.get(cur))
    return changes


def dual_stack_sites(cdb: ColumnarDatabase) -> list[int]:
    """Sites with converged download data in both families — the Table 2
    population, via one group-aggregate over the downloads table."""
    result = run_query(
        cdb,
        Query(
            table="downloads",
            where=(Filter("converged", "eq", True),),
            group_by=("site_id", "family"),
            aggregates=(Aggregate(op="count", alias="rounds"),),
        ),
    )
    per_family: dict[str, set[int]] = {}
    for site_id, family in zip(
        result.columns["site_id"], result.columns["family"]
    ):
        per_family.setdefault(family, set()).add(site_id)
    v4 = per_family.get(AddressFamily.IPV4.value, set())
    v6 = per_family.get(AddressFamily.IPV6.value, set())
    return sorted(v4 & v6)
