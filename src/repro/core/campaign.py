"""Campaign drivers.

``run_campaign`` runs the weekly monitoring campaign from every vantage
point (each joining at its start round) and aggregates the databases into
a central repository — the paper's data-collection phase end to end.

``run_world_ipv6_day`` reproduces the special World IPv6 Day experiment:
30-minute monitoring rounds for one day, restricted to the sites that
advertised participation in the event.

Both drivers are thin shells over the execution engine: they build one
:class:`~repro.engine.shard.VantageShard` per vantage point, hand the
batch to an :class:`~repro.engine.executor.Executor` (serial in-process
by default, a process pool with ``--backend process``), and merge the
returned shard payloads into a :class:`CampaignResult`.  Per-vantage RNG
streams and private DNS timelines make the merge order-independent, so
every backend yields bit-identical repositories.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ExecutionConfig, ScenarioConfig
from ..engine.executor import make_executor
from ..engine.shard import W6D, WEEKLY, ShardResult, VantageShard
from ..errors import ConfigError
from ..monitor.aggregate import CentralRepository
from ..monitor.database import MeasurementDatabase
from ..monitor.tool import RoundReport
from ..monitor.vantage import VantagePoint
from ..obs import get_logger, metrics, span
from .world import World

_LOG = get_logger("core.campaign")

#: Number of 30-minute rounds in the World IPv6 Day experiment (24h).
W6D_ROUNDS = 48


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    world: World
    repository: CentralRepository
    reports: dict[str, list[RoundReport]] = field(default_factory=dict)

    def total_measurements(self) -> int:
        return sum(len(self.repository.database(v)) for v in self.repository.vantage_names)


def build_campaign_shards(
    world: World,
    n_rounds: int,
    max_sites_per_round: int,
) -> list[VantageShard]:
    """One weekly-campaign shard per vantage point, in world order."""
    return [
        VantageShard(
            config=world.config,
            vantage_name=vantage.name,
            kind=WEEKLY,
            n_rounds=n_rounds,
            rng_stream=f"monitor:{vantage.name}",
            max_sites_per_round=max_sites_per_round,
        )
        for vantage in world.vantages
    ]


def merge_shard_results(
    world: World, results: list[ShardResult]
) -> CampaignResult:
    """Fold executed shards back into one campaign result.

    Shard payloads are plain dicts (they may have crossed a process
    boundary); each is rebuilt here and registered with the central
    repository in shard order.
    """
    repository = CentralRepository()
    reports: dict[str, list[RoundReport]] = {}
    for result in results:
        vantage = VantagePoint.from_dict(result.vantage)
        repository.add(vantage, MeasurementDatabase.from_dict(result.database))
        reports[vantage.name] = [
            RoundReport.from_dict(r) for r in result.reports
        ]
    return CampaignResult(world=world, repository=repository, reports=reports)


def run_campaign(
    world: World,
    n_rounds: int | None = None,
    max_sites_per_round: int | None = None,
    execution: ExecutionConfig | None = None,
) -> CampaignResult:
    """Run the full weekly campaign on ``world``.

    ``n_rounds`` and ``max_sites_per_round`` default to the world's
    campaign config; ``execution`` picks the backend (None reads
    ``REPRO_BACKEND`` / ``REPRO_JOBS``, defaulting to serial).
    """
    config: ScenarioConfig = world.config
    if n_rounds is None:
        n_rounds = config.campaign.n_rounds
    if max_sites_per_round is None:
        max_sites_per_round = config.campaign.max_sites_per_round
    if n_rounds < 1:
        raise ConfigError("need at least one round")

    shards = build_campaign_shards(world, n_rounds, max_sites_per_round)
    executor = make_executor(execution)
    rounds_counter = metrics.counter("campaign.rounds")
    measured_counter = metrics.counter("campaign.sites_measured")
    with span(
        "campaign.run",
        rounds=n_rounds,
        vantages=len(shards),
        backend=executor.name,
    ):
        results = executor.run(shards, world=world)
        with span("campaign.aggregate"):
            merged = merge_shard_results(world, results)
    rounds_counter.inc(n_rounds)
    total_measured = sum(
        report.n_measured
        for rounds in merged.reports.values()
        for report in rounds
    )
    measured_counter.inc(total_measured)
    _LOG.info(
        "campaign complete",
        extra={
            "rounds": n_rounds,
            "vantages": len(shards),
            "backend": executor.name,
            "measured": total_measured,
        },
    )
    return merged


def run_world_ipv6_day(
    world: World,
    vantage_names: tuple[str, ...] = ("Penn", "LU", "UPCB"),
    n_rounds: int = W6D_ROUNDS,
    execution: ExecutionConfig | None = None,
) -> CampaignResult:
    """Run the World IPv6 Day experiment.

    The paper ran 30-minute rounds during the event from all AS_PATH
    vantage points except Comcast ("the data was not available"), against
    the participant roster only.
    """
    if n_rounds < 1:
        raise ConfigError("need at least one W6D round")
    known = {vantage.name for vantage in world.vantages}
    for name in vantage_names:
        if name not in known:
            raise ConfigError(
                f"unknown vantage {name!r} in vantage_names; "
                f"world has {sorted(known)}"
            )

    shards = [
        VantageShard(
            config=world.config,
            vantage_name=vantage.name,
            kind=W6D,
            n_rounds=n_rounds,
            rng_stream=f"w6d:{vantage.name}",
        )
        for vantage in world.vantages
        if vantage.name in vantage_names
    ]
    executor = make_executor(execution)
    with span(
        "campaign.w6d",
        rounds=n_rounds,
        vantages=len(shards),
        backend=executor.name,
    ):
        results = executor.run(shards, world=world)
        merged = merge_shard_results(world, results)
    _LOG.info(
        "w6d campaign complete",
        extra={
            "rounds": n_rounds,
            "vantages": len(shards),
            "backend": executor.name,
        },
    )
    return merged
