"""Campaign drivers.

``run_campaign`` runs the weekly monitoring campaign from every vantage
point (each joining at its start round) and aggregates the databases into
a central repository — the paper's data-collection phase end to end.

``run_world_ipv6_day`` reproduces the special World IPv6 Day experiment:
30-minute monitoring rounds for one day, restricted to the sites that
advertised participation in the event.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ScenarioConfig
from ..dataplane.clock import SimulationClock
from ..errors import ConfigError
from ..monitor.aggregate import CentralRepository
from ..monitor.tool import MonitoringTool, RoundReport, VantageEnvironment
from ..monitor.vantage import VantagePoint
from ..net.addresses import AddressFamily
from ..obs import get_logger, metrics, span
from ..web.http import ContentEndpoint, HttpClient
from ..dns.resolver import Resolver
from .world import World

_LOG = get_logger("core.campaign")

#: Number of 30-minute rounds in the World IPv6 Day experiment (24h).
W6D_ROUNDS = 48


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    world: World
    repository: CentralRepository
    reports: dict[str, list[RoundReport]] = field(default_factory=dict)

    def total_measurements(self) -> int:
        return sum(len(self.repository.database(v)) for v in self.repository.vantage_names)


def run_campaign(
    world: World,
    n_rounds: int | None = None,
    max_sites_per_round: int | None = None,
) -> CampaignResult:
    """Run the full weekly campaign on ``world``.

    ``n_rounds`` and ``max_sites_per_round`` default to the world's
    campaign config.
    """
    config: ScenarioConfig = world.config
    if n_rounds is None:
        n_rounds = config.campaign.n_rounds
    if max_sites_per_round is None:
        max_sites_per_round = config.campaign.max_sites_per_round
    if n_rounds < 1:
        raise ConfigError("need at least one round")

    tools: dict[str, MonitoringTool] = {}
    for vantage in world.vantages:
        tools[vantage.name] = MonitoringTool(
            vantage=vantage,
            env=world.environment_for(vantage),
            config=config.monitor,
            rng=world.monitor_rng(vantage),
            max_sites_per_round=max_sites_per_round,
        )

    reports: dict[str, list[RoundReport]] = {name: [] for name in tools}
    rounds_counter = metrics.counter("campaign.rounds")
    measured_counter = metrics.counter("campaign.sites_measured")
    with span("campaign.run", rounds=n_rounds, vantages=len(tools)):
        for round_idx in range(n_rounds):
            with span("campaign.round", round=round_idx):
                world.advance_to_round(round_idx)
                round_measured = 0
                for name, tool in tools.items():
                    report = tool.run_round(round_idx)
                    reports[name].append(report)
                    round_measured += report.n_measured
            rounds_counter.inc()
            measured_counter.inc(round_measured)
            _LOG.info(
                "round complete",
                extra={
                    "round": round_idx,
                    "n_rounds": n_rounds,
                    "measured": round_measured,
                },
            )

        with span("campaign.aggregate"):
            repository = CentralRepository()
            for vantage in world.vantages:
                repository.add(vantage, tools[vantage.name].database)
    return CampaignResult(world=world, repository=repository, reports=reports)


def _w6d_environment(world: World, vantage: VantagePoint) -> VantageEnvironment:
    """A monitoring environment specialised for World IPv6 Day.

    Differences from the regular campaign: the site list is the
    participant roster, and participants who provisioned their IPv6
    presence well (``w6d_good_v6``) serve IPv6 at parity with IPv4 - the
    path-induced deficit is offset server-side (multi-homed event
    presence), without changing the BGP paths the monitor records.
    """
    participants = world.catalog.w6d_participants()
    names = [site.name for site in participants]
    base_endpoint = world.content_endpoint

    def content_lookup(
        name: str, family: AddressFamily, round_idx: int
    ) -> ContentEndpoint:
        endpoint = base_endpoint(name, family, round_idx)
        site = world.catalog.by_name(name)
        if family is AddressFamily.IPV6 and site.w6d_good_v6:
            v4_path = world.forwarding_path(
                vantage.asn, site.dest_asn(AddressFamily.IPV4),
                AddressFamily.IPV4, alternate=False,
            )
            v6_path = world.forwarding_path(
                vantage.asn, site.dest_asn(AddressFamily.IPV6),
                AddressFamily.IPV6, alternate=False,
            )
            if v4_path is not None and v6_path is not None:
                f_v4 = world.model.path_factor(v4_path)
                f_v6 = world.model.path_factor(v6_path)
                if f_v6 < f_v4:
                    endpoint = ContentEndpoint(
                        site_id=endpoint.site_id,
                        server_asn=endpoint.server_asn,
                        server_speed=endpoint.server_speed * (f_v4 / f_v6),
                        page_bytes=endpoint.page_bytes,
                    )
        return endpoint

    client = HttpClient(
        model=world.model,
        content_lookup=content_lookup,
        path_provider=world._path_provider(vantage.asn),
        owner_lookup=world.owner_of_address,
    )
    w6d_round = world.config.adoption.world_ipv6_day_round
    return VantageEnvironment(
        resolver=Resolver(store=world.zone_snapshot(w6d_round)),
        client=client,
        clock=SimulationClock.world_ipv6_day(),
        site_list=lambda round_idx: list(names),
        external_inputs=lambda round_idx: [],
        site_id_of=lambda name: world.catalog.by_name(name).site_id,
    )


def run_world_ipv6_day(
    world: World,
    vantage_names: tuple[str, ...] = ("Penn", "LU", "UPCB"),
    n_rounds: int = W6D_ROUNDS,
) -> CampaignResult:
    """Run the World IPv6 Day experiment.

    The paper ran 30-minute rounds during the event from all AS_PATH
    vantage points except Comcast ("the data was not available"), against
    the participant roster only.
    """
    if n_rounds < 1:
        raise ConfigError("need at least one W6D round")

    repository = CentralRepository()
    reports: dict[str, list[RoundReport]] = {}
    with span("campaign.w6d", rounds=n_rounds):
        for vantage in world.vantages:
            if vantage.name not in vantage_names:
                continue
            reports[vantage.name] = _run_w6d_vantage(
                world, vantage, n_rounds, repository
            )
    return CampaignResult(world=world, repository=repository, reports=reports)


def _run_w6d_vantage(
    world: World,
    vantage: VantagePoint,
    n_rounds: int,
    repository: CentralRepository,
) -> list[RoundReport]:
    """Run the W6D rounds of one vantage point into ``repository``."""
    active = VantagePoint(
        name=vantage.name,
        location=vantage.location,
        asn=vantage.asn,
        start_round=0,
        as_path_available=vantage.as_path_available,
        white_listed=vantage.white_listed,
        kind=vantage.kind,
        external_inputs=False,
    )
    tool = MonitoringTool(
        vantage=active,
        env=_w6d_environment(world, active),
        config=world.config.monitor,
        rng=world.rngs.stream(f"w6d:{vantage.name}"),
    )
    rounds = []
    with span("campaign.w6d_vantage", vantage=vantage.name):
        for round_idx in range(n_rounds):
            rounds.append(tool.run_round(round_idx))
    repository.add(active, tool.database)
    _LOG.info(
        "w6d vantage complete",
        extra={
            "vantage": vantage.name,
            "rounds": n_rounds,
            "measured": sum(r.n_measured for r in rounds),
        },
    )
    return rounds
